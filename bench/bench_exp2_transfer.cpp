// Reproduces Fig. 7 and Table II (Experiment 2): the Exp. 1 model
// classifies webpages it never saw during training (extreme
// distributional shift), and the number of guesses n needed for ~90%
// accuracy grows sublinearly with the number of classes.
//
// Paper shape: accuracy on unseen classes is almost identical to Exp. 1
// at equal class counts (top-1 ~58% @500, ~50% @1000, top-10 90/80/70%
// @3000/6000/13000), and n/#classes falls from 0.6% to 0.23%.
#include <iostream>

#include "eval/exp_transfer.hpp"
#include "util/bench_report.hpp"

int main() {
  wf::util::BenchReport report("exp2_transfer");
  wf::eval::WikiScenario scenario;
  std::cout << "== Fig. 7: classification of classes never seen in training ==\n";
  const wf::eval::Exp2Result result = wf::eval::run_exp2_transfer(scenario);
  result.accuracy.print();
  std::cout << "\n== Table II: guesses needed for ~90% accuracy (sublinear in classes) ==\n";
  result.table2.print();
  std::cout << "CSVs written to results/exp2_transfer.csv, results/exp2_table2.csv\n";
  report.metric("rows", static_cast<double>(result.accuracy.n_rows()));
  report.metric("rows_per_s",
                static_cast<double>(result.accuracy.n_rows()) / report.seconds());
  report.write(wf::eval::results_dir());
  return 0;
}
