// Thin shim kept for CI and scripts: dispatches through the
// ExperimentRegistry, so this binary and `wf run perf_million` emit
// identical output. The experiment body lives in src/eval/registry.cpp.
#include "eval/registry.hpp"

int main() { return wf::eval::run_legacy("bench_perf_million"); }
