// §VII discussion ablation (beyond the paper's figures): TLS 1.3 record
// padding policies (none / random / pad-to-multiple / fixed-record) and
// trace-level defenses (fixed-length, anonymity-set partitioning) —
// attacker accuracy vs bandwidth overhead — plus the cost/protection
// frontier sweep over anonymity-set sizes and padding parameters.
//
// Expected shape per the paper's discussion: random padding is cheap but
// weak (Pironti et al.), full FL padding is strong but expensive, and
// per-website anonymity sets buy protection proportional to set size at
// much lower cost than site-wide FL.
#include <iostream>

#include "eval/exp_padding.hpp"
#include "util/bench_report.hpp"

int main() {
  wf::util::BenchReport report("defense_ablation");
  wf::eval::WikiScenario scenario;
  std::cout << "== Defense ablation: record policies and trace-level padding ==\n";
  const wf::util::Table table = wf::eval::run_defense_ablation(scenario);
  table.print();
  std::cout << "CSV written to results/defense_ablation.csv\n";

  std::cout << "\n== Cost/protection frontier: set sizes x padding parameters ==\n";
  const wf::util::Table frontier = wf::eval::run_defense_frontier(scenario);
  frontier.print();
  std::cout << "CSV written to results/defense_frontier.csv\n";

  report.metric("rows", static_cast<double>(table.n_rows()));
  report.metric("frontier_rows", static_cast<double>(frontier.n_rows()));
  report.metric("rows_per_s",
                static_cast<double>(table.n_rows() + frontier.n_rows()) / report.seconds());
  report.write(wf::eval::results_dir());
  return 0;
}
