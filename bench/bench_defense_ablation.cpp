// §VII discussion ablation (beyond the paper's figures): TLS 1.3 record
// padding policies (none / random / pad-to-multiple / fixed-record) and
// trace-level defenses (fixed-length, anonymity-set partitioning) —
// attacker accuracy vs bandwidth overhead.
//
// Expected shape per the paper's discussion: random padding is cheap but
// weak (Pironti et al.), full FL padding is strong but expensive, and
// per-website anonymity sets buy protection proportional to set size at
// much lower cost than site-wide FL.
#include <iostream>

#include "eval/exp_padding.hpp"

int main() {
  wf::eval::WikiScenario scenario;
  std::cout << "== Defense ablation: record policies and trace-level padding ==\n";
  const wf::util::Table table = wf::eval::run_defense_ablation(scenario);
  table.print();
  std::cout << "CSV written to results/defense_ablation.csv\n";
  return 0;
}
