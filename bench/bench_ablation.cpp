// Design-choice ablations called out in DESIGN.md (not in the paper's
// figures, but justifying its Table I choices): pair-sampling strategy,
// embedding dimensionality, k of the k-NN classifier, byte-count
// quantization, and per-IP (3-seq) vs directional (2-seq) encoding.
#include <iostream>
#include <string>

#include "core/adaptive.hpp"
#include "core/openworld.hpp"
#include "eval/scenario.hpp"
#include "util/bench_report.hpp"
#include "util/log.hpp"

namespace {

using namespace wf;

struct AblationWorld {
  eval::ScenarioConfig cfg;
  netsim::Website site;
  netsim::ServerFarm farm;
  data::CaptureCorpus corpus;

  explicit AblationWorld(int n_classes, int samples_per_class)
      : cfg(eval::ScenarioConfig::standard()), site([&] {
          netsim::WikiSiteConfig sc;
          sc.n_pages = n_classes;
          sc.seed = 4242;
          return netsim::make_wiki_site(sc);
        }()),
        farm(netsim::ServerFarm::for_wiki()) {
    data::DatasetBuildOptions opt;
    opt.sequence = cfg.seq3;
    opt.browser = cfg.browser;
    opt.samples_per_class = samples_per_class;
    opt.seed = 20240;
    corpus = data::collect_captures(site, farm, {}, opt);
  }
};

struct ArmResult {
  double top1 = 0.0, top5 = 0.0;
  double train_seconds = 0.0;
};

ArmResult run_arm(const AblationWorld& world, const trace::SequenceOptions& seq,
                  core::EmbeddingConfig econfig, data::PairStrategy strategy, int knn_k) {
  const data::Dataset dataset = data::encode_corpus(world.corpus, seq);
  const data::SampleSplit split = data::split_samples(dataset, 20, 5);
  core::AdaptiveFingerprinter attacker(econfig, knn_k, world.cfg.knn_shards);
  util::Stopwatch watch;
  attacker.provision(split.first, strategy);
  ArmResult r;
  r.train_seconds = watch.seconds();
  attacker.initialize(split.first);
  const core::EvaluationResult eval_result = attacker.evaluate(split.second, 10);
  r.top1 = eval_result.curve.top(1);
  r.top5 = eval_result.curve.top(5);
  return r;
}

}  // namespace

int main() {
  wf::util::BenchReport report("ablation");
  const int kClasses = 50;
  const int kSamples = 25;
  wf::util::log_info() << "ablation world: " << kClasses << " classes x " << kSamples
                       << " samples";
  AblationWorld world(kClasses, kSamples);

  wf::core::EmbeddingConfig base;
  base.n_sequences = world.cfg.seq3.n_sequences;
  base.timesteps = world.cfg.seq3.timesteps;
  base.train_iterations = 500;

  wf::util::Table table({"Ablation", "Arm", "Top-1", "Top-5", "train(s)"});
  auto add = [&](const std::string& group, const std::string& arm, const ArmResult& r) {
    table.add_row({group, arm, wf::util::Table::pct(r.top1), wf::util::Table::pct(r.top5),
                   wf::util::Table::num(r.train_seconds, 1)});
  };

  // Baseline arm, shared across groups.
  const ArmResult baseline =
      run_arm(world, world.cfg.seq3, base, wf::data::PairStrategy::kRandom, world.cfg.knn_k);

  // 1. Pair-sampling strategy (§IV-A2 mentions hard negatives).
  add("pair strategy", "random", baseline);
  add("pair strategy", "hard-negative",
      run_arm(world, world.cfg.seq3, base, wf::data::PairStrategy::kHardNegative,
              world.cfg.knn_k));

  // 2. Embedding dimensionality (Table I fixes 32).
  for (const std::size_t dim : {8u, 16u}) {
    wf::core::EmbeddingConfig c = base;
    c.embedding_dim = dim;
    add("embedding dim", std::to_string(dim),
        run_arm(world, world.cfg.seq3, c, wf::data::PairStrategy::kRandom, world.cfg.knn_k));
  }
  add("embedding dim", "32 (paper)", baseline);

  // 3. k of the k-NN classifier (paper: 250 at 90 refs/class).
  for (const int k : {5, 20, 100}) {
    // Same model, different classifier k: retrain is wasteful but keeps
    // the harness simple and arms independent.
    add("knn k", std::to_string(k),
        run_arm(world, world.cfg.seq3, base, wf::data::PairStrategy::kRandom, k));
  }

  // 4. Quantization granularity (§IV-A1 "optionally quantized").
  for (const std::uint32_t quantum : {1u, 4096u}) {
    wf::trace::SequenceOptions seq = world.cfg.seq3;
    seq.quantum = quantum;
    add("quantization", std::to_string(quantum) + " B",
        run_arm(world, seq, base, wf::data::PairStrategy::kRandom, world.cfg.knn_k));
  }
  add("quantization", "512 B (default)", baseline);

  // 5. Per-IP vs directional encoding (the paper's core representational
  // claim: TLS exposes server IPs, so use them).
  {
    wf::core::EmbeddingConfig c = base;
    c.n_sequences = 2;
    add("encoding", "2-seq directional",
        run_arm(world, world.cfg.seq2, c, wf::data::PairStrategy::kRandom, world.cfg.knn_k));
    add("encoding", "3-seq per-IP (paper)", baseline);
  }

  // 6. Training objective: contrastive (paper eq. 1) vs triplet loss
  // (Triplet Fingerprinting's objective, Table III).
  {
    wf::core::EmbeddingConfig c = base;
    c.objective = wf::core::Objective::kTriplet;
    add("objective", "triplet",
        run_arm(world, world.cfg.seq3, c, wf::data::PairStrategy::kRandom, world.cfg.knn_k));
    add("objective", "contrastive (paper)", baseline);
  }

  std::cout << "== Ablations over design choices ==\n";
  table.print();

  // Open-world detection (§VI-C): monitored-set membership before
  // classification. World: first half of the classes monitored, second
  // half unknown to the adversary.
  {
    wf::util::log_info() << "open-world detection";
    const wf::data::Dataset dataset = wf::data::encode_corpus(world.corpus, world.cfg.seq3);
    const wf::data::SampleSplit split = wf::data::split_samples(dataset, 20, 5);
    const int half = kClasses / 2;
    auto in_world_refs = wf::eval::label_range(split.first, 0, half);
    auto in_world_test = wf::eval::label_range(split.second, 0, half);
    auto out_world_test = wf::eval::label_range(split.second, half, kClasses);

    wf::core::AdaptiveFingerprinter attacker(base, world.cfg.knn_k, world.cfg.knn_shards);
    attacker.provision(in_world_refs);
    attacker.initialize(in_world_refs);

    // Embed once: the model does not change across target-TPR settings.
    const wf::nn::Matrix ref_embeddings = attacker.model().embed_dataset(in_world_refs);
    const wf::nn::Matrix in_embeddings = attacker.model().embed_dataset(in_world_test);
    const wf::nn::Matrix out_embeddings = attacker.model().embed_dataset(out_world_test);

    wf::util::Table ow_table({"target TPR", "k-th neighbour", "TPR", "FPR", "precision"});
    for (const double tpr : {0.90, 0.95, 0.99}) {
      wf::core::OpenWorldDetector detector({.neighbour = 3, .target_tpr = tpr});
      // Calibrate on the monitored reference embeddings themselves, so the
      // TPR measured below on the test split stays out of sample.
      detector.calibrate(attacker.references(), ref_embeddings);
      const wf::core::OpenWorldMetrics m =
          detector.evaluate(attacker.references(), in_embeddings, out_embeddings);
      ow_table.add_row({wf::util::Table::pct(tpr, 0), "3",
                        wf::util::Table::pct(m.true_positive_rate),
                        wf::util::Table::pct(m.false_positive_rate),
                        wf::util::Table::pct(m.precision)});
    }
    std::cout << "\n== Open-world detection (monitored-set membership, §VI-C) ==\n";
    ow_table.print();
    ow_table.write_csv(wf::eval::results_dir() + "/openworld.csv");

    // Whole operating curve, not just the calibrated points: per-threshold
    // precision/recall over the same embeddings.
    wf::core::OpenWorldDetector sweep_detector({.neighbour = 3, .target_tpr = 0.95});
    const std::vector<wf::core::PrPoint> curve = sweep_detector.precision_recall_sweep(
        attacker.references(), in_embeddings, out_embeddings, 24);
    wf::util::Table pr_table({"threshold", "recall", "FPR", "precision"});
    for (const wf::core::PrPoint& p : curve)
      pr_table.add_row({wf::util::Table::num(p.threshold, 4), wf::util::Table::pct(p.recall),
                        wf::util::Table::pct(p.false_positive_rate),
                        wf::util::Table::pct(p.precision)});
    std::cout << "\n== Open-world precision/recall sweep ==\n";
    pr_table.print();
    pr_table.write_csv(wf::eval::results_dir() + "/openworld_pr.csv");
    report.metric("openworld_pr_points", static_cast<double>(pr_table.n_rows()));
  }
  table.write_csv(wf::eval::results_dir() + "/ablation.csv");
  std::cout << "CSV written to results/ablation.csv\n";
  report.metric("rows", static_cast<double>(table.n_rows()));
  report.metric("rows_per_s", static_cast<double>(table.n_rows()) / report.seconds());
  report.write(wf::eval::results_dir());
  return 0;
}
