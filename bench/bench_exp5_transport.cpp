// Experiment 5 (beyond the paper): packet-level transport fidelity. An
// attacker provisioned on clean packet-level traffic is evaluated against
// captures at growing loss rates, for every TLS version x HTTP version,
// with a record-level baseline row per TLS block.
//
// Expected shape: the packet-level view (more, smaller, noisier wire
// units) costs the attacker some accuracy vs the idealized record stream;
// HTTP/2 multiplexing interleaves responses and costs more than HTTP/1.1;
// accuracy degrades further as loss shuffles retransmitted segments.
#include <iostream>

#include "eval/exp_transport.hpp"
#include "util/bench_report.hpp"

int main() {
  wf::util::BenchReport report("exp5_transport");
  wf::eval::WikiScenario scenario;
  report.param("classes", static_cast<double>(scenario.config().transport_classes));
  std::cout << "== Exp. 5: accuracy under the packet-level transport "
               "(loss x HTTP version x TLS version) ==\n";
  const wf::util::Table table = wf::eval::run_exp5_transport(scenario);
  table.print();
  std::cout << "CSV written to results/exp5_transport.csv\n";
  report.metric("rows", static_cast<double>(table.n_rows()));
  report.metric("rows_per_s", static_cast<double>(table.n_rows()) / report.seconds());
  report.write(wf::eval::results_dir());
  return 0;
}
