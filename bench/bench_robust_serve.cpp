// Thin shim kept for CI and scripts: dispatches through the
// ExperimentRegistry, so this binary and `wf run robust_serve` emit
// identical output. The experiment body lives in src/eval/registry.cpp.
#include "eval/registry.hpp"

int main() { return wf::eval::run_legacy("bench_robust_serve"); }
