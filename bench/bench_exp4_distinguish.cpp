// Reproduces Figs. 9/10/11 (Experiment 4): per-class distinguishability.
// Cumulative distribution of the mean number of guesses needed per
// class — known classes, unknown classes, and FL-padded traces.
//
// Paper shape: known vs unknown distributions look alike; a large
// fraction of classes needs <2 guesses while a small tail (~3%) stays
// hard; FL padding pushes the whole distribution right (the <=10-guess
// fraction under padding is below the <=1-guess fraction without).
#include <iostream>

#include "eval/exp_distinguish.hpp"
#include "util/bench_report.hpp"

int main() {
  wf::util::BenchReport report("exp4_distinguish");
  wf::eval::WikiScenario scenario;
  const wf::eval::Exp4Result result = wf::eval::run_exp4_distinguish(scenario);
  std::cout << "== Fig. 9: mean guesses per class, known classes (CDF) ==\n";
  result.known.print();
  std::cout << "\n== Fig. 10: mean guesses per class, unknown classes (CDF) ==\n";
  result.unknown.print();
  std::cout << "\n== Fig. 11: mean guesses per class under FL padding (CDF) ==\n";
  result.padded.print();
  std::cout << "CSVs written to results/exp4_*.csv\n";
  const double rows = static_cast<double>(result.known.n_rows() + result.unknown.n_rows() +
                                          result.padded.n_rows());
  report.metric("rows", rows);
  report.metric("rows_per_s", rows / report.seconds());
  report.write(wf::eval::results_dir());
  return 0;
}
