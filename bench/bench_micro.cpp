// Component micro-benchmarks (google-benchmark): simulator throughput,
// Fig. 4 encoding, embedding forward pass, contrastive training step,
// k-NN query (scalar and batched), random-forest prediction, FL padding
// and the parallel crawler.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>

#include "baselines/features.hpp"
#include "baselines/random_forest.hpp"
#include "core/adaptive.hpp"
#include "data/pairs.hpp"
#include "eval/scenario.hpp"
#include "nn/simd.hpp"
#include "trace/defense.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace wf;

const netsim::Website& wiki_site() {
  static const netsim::Website site = [] {
    netsim::WikiSiteConfig c;
    c.n_pages = 32;
    c.seed = 7;
    return netsim::make_wiki_site(c);
  }();
  return site;
}

const netsim::ServerFarm& wiki_farm() {
  static const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();
  return farm;
}

const data::Dataset& micro_dataset() {
  static const data::Dataset dataset = [] {
    data::DatasetBuildOptions opt;
    opt.samples_per_class = 12;
    opt.seed = 99;
    return data::build_dataset(wiki_site(), wiki_farm(), {}, opt);
  }();
  return dataset;
}

core::EmbeddingModel& micro_model() {
  static core::EmbeddingModel model = [] {
    core::EmbeddingConfig c;
    c.train_iterations = 60;  // just enough to initialize sensible weights
    core::EmbeddingModel m(c);
    data::PairGenerator pairs(micro_dataset(), data::PairStrategy::kRandom, 3);
    m.train(pairs);
    return m;
  }();
  return model;
}

void BM_LoadPage(benchmark::State& state) {
  util::Rng rng(1);
  const netsim::BrowserConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(netsim::load_page(wiki_site(), wiki_farm(), 3, cfg, rng));
  }
}
BENCHMARK(BM_LoadPage);

void BM_EncodeCapture(benchmark::State& state) {
  util::Rng rng(2);
  const netsim::BrowserConfig cfg;
  const netsim::PacketCapture capture = netsim::load_page(wiki_site(), wiki_farm(), 3, cfg, rng);
  const trace::SequenceOptions opt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::encode_capture(capture, opt));
  }
}
BENCHMARK(BM_EncodeCapture);

void BM_KfpFeatures(benchmark::State& state) {
  util::Rng rng(3);
  const netsim::BrowserConfig cfg;
  const netsim::PacketCapture capture = netsim::load_page(wiki_site(), wiki_farm(), 3, cfg, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::extract_kfp_features(capture));
  }
}
BENCHMARK(BM_KfpFeatures);

void BM_EmbedBatch(benchmark::State& state) {
  core::EmbeddingModel& model = micro_model();
  const nn::Matrix batch = micro_dataset().to_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.embed(batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.rows()));
}
BENCHMARK(BM_EmbedBatch);

void BM_ContrastiveTrainStep(benchmark::State& state) {
  core::EmbeddingConfig c;
  c.train_iterations = 1;
  data::PairGenerator pairs(micro_dataset(), data::PairStrategy::kRandom, 5);
  for (auto _ : state) {
    // Fresh model per iteration (outside the timed region) so every timed
    // step runs from identical weights and optimizer state.
    state.PauseTiming();
    core::EmbeddingModel model(c);
    state.ResumeTiming();
    model.train(pairs);  // exactly one optimizer step per call
  }
}
BENCHMARK(BM_ContrastiveTrainStep);

void BM_KnnQuery(benchmark::State& state) {
  core::EmbeddingModel& model = micro_model();
  core::ReferenceSet refs(model.config().embedding_dim);
  refs.add_all(model.embed_dataset(micro_dataset()), micro_dataset().labels_of());
  const core::KnnClassifier knn(50);
  const nn::Matrix q = model.embed_dataset(micro_dataset());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.rank(refs, q.row_span(i % q.rows())));
    ++i;
  }
}
BENCHMARK(BM_KnnQuery);

std::vector<float> random_unit_row(util::Rng& rng, std::size_t dim) {
  std::vector<float> v(dim);
  double norm = 0.0;
  for (float& x : v) {
    x = static_cast<float>(rng.normal());
    norm += static_cast<double>(x) * x;
  }
  norm = std::sqrt(norm);
  for (float& x : v) x = static_cast<float>(x / norm);
  return v;
}

nn::Matrix random_unit_queries(std::size_t rows, std::size_t dim, util::Rng& rng) {
  nn::Matrix queries(rows, dim);
  for (std::size_t q = 0; q < rows; ++q) queries.set_row(q, random_unit_row(rng, dim));
  return queries;
}

// Synthetic unit-sphere reference set (plain or sharded): the k-NN scaling
// benchmarks need reference counts far beyond what the micro crawl produces.
template <typename Store>
Store synthetic_refs_into(Store refs, std::size_t n, std::size_t dim, util::Rng& rng) {
  for (std::size_t i = 0; i < n; ++i)
    refs.add(random_unit_row(rng, dim), static_cast<int>(i % 100));
  return refs;
}

core::ReferenceSet synthetic_refs(std::size_t n, std::size_t dim, util::Rng& rng) {
  return synthetic_refs_into(core::ReferenceSet(dim), n, dim, rng);
}

// Batched k-NN ranking at 1k/10k references (the ‖a‖²+‖b‖²−2a·b GEMM path).
void BM_KnnQueryBatch(benchmark::State& state) {
  util::Rng rng(17);
  const std::size_t dim = 32;
  const core::ReferenceSet refs =
      synthetic_refs(static_cast<std::size_t>(state.range(0)), dim, rng);
  const core::KnnClassifier knn(50);
  const nn::Matrix queries = random_unit_queries(256, dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.rank_batch(refs, queries));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.rows()));
}
BENCHMARK(BM_KnnQueryBatch)->Arg(1000)->Arg(10000);

// Batched dataset embedding at 1k/10k samples (one GEMM per layer).
void BM_EmbedDatasetBatch(benchmark::State& state) {
  core::EmbeddingModel& model = micro_model();
  util::Rng rng(19);
  nn::Matrix batch(static_cast<std::size_t>(state.range(0)), model.config().input_dim());
  for (std::size_t i = 0; i < batch.rows(); ++i)
    for (std::size_t j = 0; j < batch.cols(); ++j)
      batch(i, j) = static_cast<float>(rng.uniform(0.0, 2.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.embed(batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.rows()));
}
BENCHMARK(BM_EmbedDatasetBatch)->Arg(1000)->Arg(10000);

// Same synthetic rows, partitioned round-robin into `shards` shards.
core::ShardedReferenceSet synthetic_sharded_refs(std::size_t n, std::size_t dim,
                                                 std::size_t shards, util::Rng& rng) {
  return synthetic_refs_into(core::ShardedReferenceSet(dim, shards), n, dim, rng);
}

// Sharded batched k-NN at 100k references (the §IV scaling step past one
// pool): per-shard GEMM tiles + candidate heaps merged into the global
// ranking. Per-shard work is an even split of the unsharded scan, so
// throughput scales near-linearly with shard count once shards land on
// their own cores; on a single core it measures the merge overhead.
void BM_KnnQueryBatchSharded(benchmark::State& state) {
  util::Rng rng(17);
  const std::size_t dim = 32;
  const core::ShardedReferenceSet refs = synthetic_sharded_refs(
      static_cast<std::size_t>(state.range(0)), dim, static_cast<std::size_t>(state.range(1)),
      rng);
  const core::KnnClassifier knn(50);
  const nn::Matrix queries = random_unit_queries(256, dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.rank_batch(refs, queries));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.rows()));
}
BENCHMARK(BM_KnnQueryBatchSharded)
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({100000, 8});

// Scalar sharded k-NN query at 100k references: one query fanned out as
// per-shard scans over the pool — the latency-bound path a live deployment
// runs per observed trace.
void BM_KnnQueryScalarSharded(benchmark::State& state) {
  util::Rng rng(17);
  const std::size_t dim = 32;
  const core::ShardedReferenceSet refs = synthetic_sharded_refs(
      static_cast<std::size_t>(state.range(0)), dim, static_cast<std::size_t>(state.range(1)),
      rng);
  const core::KnnClassifier knn(50);
  const std::vector<float> query = random_unit_row(rng, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.rank(refs, query));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KnnQueryScalarSharded)
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({100000, 8});

// The hot dot-product kernel under each SIMD mode the machine supports
// (wf::nn runtime dispatch): identical eight-lane operation order, so the
// modes differ in speed only — the throughput ratio here is the entire
// WF_SIMD win. Skipped (not failed) for modes this CPU cannot run.
void BM_SimdDot(benchmark::State& state) {
  const auto mode = static_cast<nn::SimdMode>(state.range(0));
  if (!nn::simd_supported(mode)) {
    state.SkipWithError("SIMD mode not supported on this CPU");
    return;
  }
  const std::size_t dim = static_cast<std::size_t>(state.range(1));
  util::Rng rng(23);
  const std::vector<float> a = random_unit_row(rng, dim);
  const std::vector<float> b = random_unit_row(rng, dim);
  const nn::detail::DotFn kernel = nn::detail::dot_kernel(mode);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel(a.data(), b.data(), dim));
  }
  state.SetLabel(nn::simd_mode_name(mode));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim));
}
BENCHMARK(BM_SimdDot)
    ->Args({static_cast<int>(nn::SimdMode::kScalar), 64})
    ->Args({static_cast<int>(nn::SimdMode::kScalar), 512})
    ->Args({static_cast<int>(nn::SimdMode::kAvx2), 64})
    ->Args({static_cast<int>(nn::SimdMode::kAvx2), 512})
    ->Args({static_cast<int>(nn::SimdMode::kNeon), 64})
    ->Args({static_cast<int>(nn::SimdMode::kNeon), 512});

// The batched k-NN scan under each supported SIMD mode: the GEMM tile is
// where the kernel above actually spends its cycles in production.
void BM_KnnQueryBatchSimd(benchmark::State& state) {
  const auto mode = static_cast<nn::SimdMode>(state.range(0));
  if (!nn::simd_supported(mode)) {
    state.SkipWithError("SIMD mode not supported on this CPU");
    return;
  }
  const nn::SimdMode previous = nn::simd_mode();
  nn::set_simd_mode(mode);
  util::Rng rng(17);
  const std::size_t dim = 32;
  const core::ReferenceSet refs = synthetic_refs(10000, dim, rng);
  const core::KnnClassifier knn(50);
  const nn::Matrix queries = random_unit_queries(256, dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.rank_batch(refs, queries));
  }
  state.SetLabel(nn::simd_mode_name(mode));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(queries.rows()));
  nn::set_simd_mode(previous);
}
BENCHMARK(BM_KnnQueryBatchSimd)
    ->Arg(static_cast<int>(nn::SimdMode::kScalar))
    ->Arg(static_cast<int>(nn::SimdMode::kAvx2))
    ->Arg(static_cast<int>(nn::SimdMode::kNeon));

// Crawling with an explicit pool of 1 vs N threads (identical corpora).
void BM_CollectCaptures(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  data::DatasetBuildOptions opt;
  opt.samples_per_class = 12;
  opt.seed = 99;
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::collect_captures(wiki_site(), wiki_farm(), {}, opt, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wiki_site().pages.size()) *
                          opt.samples_per_class);
}
BENCHMARK(BM_CollectCaptures)
    ->Arg(1)
    ->Arg(static_cast<int>(util::ThreadPool::default_thread_count()));

void BM_ForestPredict(benchmark::State& state) {
  static const auto fixture = [] {
    data::DatasetBuildOptions opt;
    opt.samples_per_class = 12;
    opt.seed = 99;
    const data::CaptureCorpus corpus = data::collect_captures(wiki_site(), wiki_farm(), {}, opt);
    auto dataset = std::make_shared<data::Dataset>(baselines::kfp_feature_dim());
    for (std::size_t i = 0; i < corpus.captures.size(); ++i)
      dataset->add({baselines::extract_kfp_features(corpus.captures[i]), corpus.labels[i]});
    auto forest = std::make_shared<baselines::RandomForest>(baselines::ForestConfig{});
    forest->fit(*dataset);
    return std::make_pair(forest, dataset);
  }();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.first->rank((*fixture.second)[i % fixture.second->size()].features));
    ++i;
  }
}
BENCHMARK(BM_ForestPredict);

void BM_FixedLengthPadding(benchmark::State& state) {
  util::Rng rng(6);
  const netsim::BrowserConfig cfg;
  std::vector<netsim::PacketCapture> corpus;
  for (int i = 0; i < 8; ++i)
    corpus.push_back(netsim::load_page(wiki_site(), wiki_farm(), i, cfg, rng));
  const trace::FixedLengthDefense defense = trace::FixedLengthDefense::fit(corpus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(defense.apply(corpus[0], rng));
  }
}
BENCHMARK(BM_FixedLengthPadding);

}  // namespace

BENCHMARK_MAIN();
