// Reproduces Fig. 8 (Experiment 3): a two-sequence model trained on the
// Wikipedia-like site (TLS 1.2) fingerprints the Github-like site
// (TLS 1.3, different theme, variable server count).
//
// Paper shape: the model performs considerably better on its home
// site/protocol but retains a fair fraction of its accuracy on Github —
// some leakage characteristics persist across site, encoding and
// protocol version; theme change hurts the most.
#include <iostream>

#include "eval/exp_crosssite.hpp"
#include "util/bench_report.hpp"

int main() {
  wf::util::BenchReport report("exp3_crosssite");
  wf::eval::WikiScenario scenario;
  std::cout << "== Fig. 8: cross-site / cross-version transfer (2-sequence model) ==\n";
  const wf::util::Table table = wf::eval::run_exp3_crosssite(scenario);
  table.print();
  std::cout << "CSV written to results/exp3_crosssite.csv\n";
  report.metric("rows", static_cast<double>(table.n_rows()));
  report.metric("rows_per_s", static_cast<double>(table.n_rows()) / report.seconds());
  report.write(wf::eval::results_dir());
  return 0;
}
