// Reproduces Figs. 12/13 (§VII): fixed-length padding against the
// adaptive adversary, on classes seen (Fig. 12) and not seen (Fig. 13)
// during training.
//
// Paper shape: FL padding significantly decreases accuracy in both
// settings but does not erase it completely; the residual comes from
// interleaving/order features the total-length padding cannot hide.
#include <iostream>

#include "eval/exp_padding.hpp"
#include "util/bench_report.hpp"

int main() {
  wf::util::BenchReport report("padding");
  wf::eval::WikiScenario scenario;
  std::cout << "== Figs. 12/13: fixed-length padding vs the adaptive adversary ==\n";
  const wf::util::Table table = wf::eval::run_padding_experiment(scenario);
  table.print();
  std::cout << "CSV written to results/padding_fl.csv\n";
  report.metric("rows", static_cast<double>(table.n_rows()));
  report.metric("rows_per_s", static_cast<double>(table.n_rows()) / report.seconds());
  report.write(wf::eval::results_dir());
  return 0;
}
