// Reproduces Table III (§VIII): operational costs of fingerprinting
// systems. Prints the published literature table, then measured
// train/update/test wall-clock for the systems reimplemented here.
//
// Paper shape: embedding-based systems update without retraining (cheap
// adaptation), CNN classifiers must retrain on every target-set change,
// forest/feature systems sit in between.
#include <iostream>

#include "eval/exp_costs.hpp"
#include "util/bench_report.hpp"

int main() {
  wf::util::BenchReport report("costs");
  wf::eval::WikiScenario scenario;
  const wf::eval::CostResult result = wf::eval::run_cost_experiment(scenario);
  std::cout << "== Table III (as published) ==\n";
  result.literature.print();
  std::cout << "\n== Table III (measured on this reproduction) ==\n";
  result.measured.print();
  std::cout << "CSVs written to results/table3_*.csv\n";
  report.metric("rows", static_cast<double>(result.measured.n_rows()));
  report.metric("rows_per_s",
                static_cast<double>(result.measured.n_rows()) / report.seconds());
  report.write(wf::eval::results_dir());
  return 0;
}
