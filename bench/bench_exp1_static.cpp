// Reproduces Fig. 6 (Experiment 1): top-n accuracy of the adaptive
// fingerprinting adversary on known classes, for growing class counts,
// over TLS 1.2 — plus the TLS 1.3 version-shift series.
//
// Paper shape to check against (at 10x our default class counts):
//   500 classes:  top-1 ~58%, top-3 >90%, top-10 ~100%
//   1000 classes: top-1 ~50%, top-10 >90%
//   3000/6000:    top-1 ~35%, top-10/top-20 >90%
//   TLS 1.3 (500, version shift): top-3 drops ~95% -> ~70%
#include <iostream>

#include "core/embedding_config.hpp"
#include "eval/exp_static.hpp"
#include "util/bench_report.hpp"

int main() {
  wf::util::BenchReport report("exp1_static");
  wf::eval::WikiScenario scenario;
  std::cout << "== Table I: embedding network hyperparameters ==\n";
  wf::core::hyperparameter_table(scenario.config().embedding3).print();

  std::cout << "\n== Fig. 6: static webpage classification (Experiment 1) ==\n"
            << "(class counts are paper/10 by default; see EXPERIMENTS.md)\n";
  const wf::util::Table table = wf::eval::run_exp1_static(scenario);
  table.print();
  std::cout << "CSV written to results/exp1_static.csv\n";
  report.metric("rows", static_cast<double>(table.n_rows()));
  report.metric("rows_per_s", static_cast<double>(table.n_rows()) / report.seconds());
  report.write(wf::eval::results_dir());
  return 0;
}
