// Clean counterpart to socket_no_deadline.cpp: all I/O goes through the
// Deadline-aware Socket wrapper, so a hung peer surfaces as TimeoutError
// instead of a wedged thread. An intentionally-dropped best-effort failure
// carries its explanation in the catch block.
// wf-lint-path: src/serve/framed_reader.cpp
#include <cstddef>
#include <string>

#include "serve/net.hpp"

std::string read_reply(wf::serve::Socket& socket, std::size_t n, int timeout_ms) {
  std::string buffer(n, '\0');
  const wf::serve::Deadline deadline = wf::serve::Deadline::after_ms(timeout_ms);
  if (!socket.recv_exact(buffer.data(), n, deadline)) buffer.clear();
  try {
    socket.send_all("ACK", 3, deadline);
  } catch (const wf::io::IoError&) {
    // Best effort: the peer already has its data; a lost ACK costs nothing.
  }
  return buffer;
}
