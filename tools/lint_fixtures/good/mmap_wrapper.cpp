// Clean: this file declares itself as src/io/mmap.cpp, the one blessed home
// of raw memory-mapping calls — the io::MappedFile RAII wrapper that the
// mmap-discipline rule points everyone else at. Identical calls anywhere
// else in the tree are findings (see bad/raw_mmap.cpp).
// wf-lint-path: src/io/mmap.cpp
#include <cstddef>
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

struct MappedFile {
  void* base = nullptr;
  std::size_t bytes = 0;

  bool open(const char* path, std::size_t n) {
    const int fd = ::open(path, O_RDONLY);
    if (fd < 0) return false;
    base = ::mmap(nullptr, n, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      base = nullptr;
      return false;
    }
    bytes = n;
    return true;
  }

  ~MappedFile() {
    if (base != nullptr) ::munmap(base, bytes);
  }
};
