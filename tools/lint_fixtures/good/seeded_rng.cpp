// Clean counterpart to raw_random.cpp: every draw flows through a seeded
// util::Rng, forked per stream, so any run is exactly reproducible.
// wf-lint-path: src/core/sampler.cpp
#include "util/rng.hpp"

int pick_reference(wf::util::Rng& rng, int n) {
  wf::util::Rng stream = rng.fork(7);
  return static_cast<int>(stream.index(static_cast<std::size_t>(n)));
}
