// Clean counterpart to raw_steady_clock.cpp: timing through util::Stopwatch,
// one of the three blessed steady_clock homes (with serve::Deadline and the
// wf::obs span tracer), keeps the clock discipline auditable.
// wf-lint-path: src/eval/stopwatch_timer.cpp
#include "util/stopwatch.hpp"

double measure_once() {
  wf::util::Stopwatch watch;
  return watch.millis();
}
