// Clean counterpart to unbounded_retry.cpp: the loop runs on a Backoff over
// the shared RetryPolicy — bounded attempts, exponential delays, seeded
// jitter — and rethrows once the policy gives up.
// wf-lint-path: src/serve/paced_client.cpp
#include "serve/retry.hpp"

bool try_once();

void send_until_accepted(const wf::serve::RetryPolicy& policy) {
  wf::serve::Backoff backoff(policy);
  while (!try_once()) {
    if (!backoff.retry()) throw std::runtime_error("gave up after bounded retries");
  }
}
