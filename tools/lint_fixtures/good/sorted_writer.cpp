// Clean counterpart to unordered_writer.cpp: the unordered_map is drained
// into a vector and sorted before anything reaches the writer, so the CSV
// row order is a function of the data alone.
// wf-lint-path: src/io/class_report.cpp
#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

struct Table {
  void add_row(std::string label, int count);
  void write_csv(const std::string& path) const;
};

void dump_counts(const std::unordered_map<std::string, int>& counts, Table& table) {
  std::vector<std::pair<std::string, int>> rows(counts.begin(), counts.end());
  std::sort(rows.begin(), rows.end());
  for (const auto& [label, count] : rows) table.add_row(label, count);
  table.write_csv("results/class_counts.csv");
}
