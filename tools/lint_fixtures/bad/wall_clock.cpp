// Seeded violation: wall-clock reads. Seeding from time() makes every run
// unique, and system_clock timestamps in results make CSV diffs (the
// determinism check CI relies on) fail spuriously.
// wf-lint-path: src/eval/report.cpp
// wf-lint-expect: wall-clock
#include <chrono>
#include <ctime>

long run_stamp() {
  const long seed = static_cast<long>(std::time(nullptr));
  const auto now = std::chrono::system_clock::now();
  return seed + std::chrono::duration_cast<std::chrono::seconds>(now.time_since_epoch()).count();
}
