// Seeded violation: a raw blocking ::recv outside src/serve/net.cpp. With no
// Deadline in sight, a hung peer wedges this thread forever — the exact
// failure mode the PR 7 timeout work eliminated.
// wf-lint-path: src/serve/raw_reader.cpp
// wf-lint-expect: socket-deadline
#include <cstddef>
#include <sys/socket.h>

std::size_t read_reply(int fd, char* buffer, std::size_t n) {
  const auto got = ::recv(fd, buffer, n, 0);
  return got > 0 ? static_cast<std::size_t>(got) : 0;
}
