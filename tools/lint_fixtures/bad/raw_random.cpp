// Seeded violation: randomness outside util::Rng. Every draw here is either
// non-reproducible across platforms (mt19937 streams differ from our
// splitmix64) or globally stateful (rand), so two runs of the "same" seed
// diverge — exactly what the determinism guarantee forbids.
// wf-lint-path: src/core/sampler.cpp
// wf-lint-expect: raw-random
#include <cstdlib>
#include <random>

int pick_reference(int n) {
  std::mt19937 gen(std::random_device{}());
  std::uniform_int_distribution<int> dist(0, n - 1);
  if (n < 2) return std::rand() % n;
  return dist(gen);
}
