// Seeded violation: a raw assert guarding a hot-path invariant. It vanishes
// under NDEBUG (Release builds run unguarded) and aborts without naming the
// failed values; WF_CHECK/WF_DCHECK from util/check.hpp do neither.
// wf-lint-path: src/nn/kernel.cpp
// wf-lint-expect: assert-macro
#include <cassert>
#include <cstddef>

float dot(const float* a, const float* b, std::size_t n) {
  assert(a != nullptr && b != nullptr);
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}
