// Seeded violation: iterating an unordered_map straight into a CSV writer.
// The iteration order is unspecified and differs across libstdc++ versions
// and hash seeds, so the "same" run emits differently-ordered rows — the
// bit-identical-output guarantee dies here.
// wf-lint-path: src/io/class_report.cpp
// wf-lint-expect: unordered-iteration
#include <string>
#include <unordered_map>

struct Table {
  void add_row(std::string label, int count);
  void write_csv(const std::string& path) const;
};

void dump_counts(const std::unordered_map<std::string, int>& counts, Table& table) {
  for (const auto& [label, count] : counts) table.add_row(label, count);
  table.write_csv("results/class_counts.csv");
}
