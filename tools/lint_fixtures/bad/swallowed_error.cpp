// Seeded violation: the ignored-write bug class. write_csv throws when the
// result table cannot be fully written; an empty catch turns that into a
// run that exits 0 with a missing CSV (the pre-PR-6 Table::write_csv bug,
// rebuilt by hand).
// wf-lint-path: src/eval/exp_quiet.cpp
#include <exception>
#include <string>

struct Table {
  void write_csv(const std::string& path) const;
};

// wf-lint-expect: swallowed-error
void save_results(const Table& table) {
  try {
    table.write_csv("results/exp_quiet.csv");
  } catch (const std::exception&) {
  }
}
