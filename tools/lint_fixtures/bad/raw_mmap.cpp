// Seeded violation: ad-hoc memory mapping. A raw mmap/munmap pair scattered
// through a loader leaks the mapping on every early return and error path,
// and hand-rolled msync/madvise calls hide the lifetime from review; all
// mapping flows through the io::MappedFile RAII wrapper (src/io/mmap.cpp).
// wf-lint-path: src/index/loader.cpp
// wf-lint-expect: mmap-discipline
#include <cstddef>
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

const float* map_embeddings(const char* path, std::size_t bytes) {
  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) return nullptr;
  void* base = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) return nullptr;
  ::madvise(base, bytes, MADV_WILLNEED);
  return static_cast<const float*>(base);  // leaked: nobody munmap()s this
}

void unmap_embeddings(void* base, std::size_t bytes) { ::munmap(base, bytes); }
