// Seeded violation: ad-hoc monotonic-clock timing. Raw steady_clock reads
// scattered through the pipeline make latency accounting unauditable and
// invite accidental switches to non-monotonic sources; all timing flows
// through util::Stopwatch, serve::Deadline or wf::obs spans.
// wf-lint-path: src/eval/ad_hoc_timer.cpp
// wf-lint-expect: clock-discipline
#include <chrono>

double measure_once() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}
