// Seeded violation: banned libc calls. sprintf/strcpy overflow silently,
// and atoi's silent-zero failure mode is how WF_THREADS=4x once parsed as
// accepting garbage (fixed in PR 6 by Env::parse_count).
// wf-lint-path: src/util/format.cpp
// wf-lint-expect: unsafe-libc
#include <cstdio>
#include <cstdlib>
#include <cstring>

int parse_port(const char* text, char* out) {
  char scratch[16];
  std::sprintf(scratch, "port=%s", text);
  strcpy(out, scratch);
  return atoi(text);
}
