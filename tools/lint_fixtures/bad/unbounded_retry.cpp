// Seeded violation: an ad-hoc retry spin. Fixed 50 ms pacing with no attempt
// bound is the pattern RetryPolicy replaced: it never gives up, and a fleet
// of these thunders in lockstep because nothing jitters the schedule.
// wf-lint-path: src/serve/naive_client.cpp
// wf-lint-expect: retry-policy
#include <chrono>
#include <thread>

bool try_once();

void send_until_accepted() {
  while (!try_once()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}
