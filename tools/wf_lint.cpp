// wf-lint: the project invariant linter.
//
// The reproduction's headline guarantee — bit-identical rankings at any
// thread/shard count and under injected faults — rests on a handful of
// code-level invariants that ordinary compilers and sanitizers do not
// enforce:
//
//   raw-random          all randomness flows through seeded util::Rng
//   wall-clock          no wall-clock reads (system_clock, time(), ...)
//   unordered-iteration no unordered-container iteration in output paths
//                       (serialization, CSV, wire frames)
//   socket-deadline     raw blocking socket calls live only in
//                       src/serve/net.cpp, behind Deadline-aware wrappers
//   mmap-discipline     raw memory-mapping calls (mmap, munmap, msync, ...)
//                       live only in src/io/mmap.cpp, behind io::MappedFile
//   retry-policy        every sleep-paced loop runs on serve::Backoff /
//                       RetryPolicy, never an ad-hoc spin
//   clock-discipline    monotonic-clock reads live only in util::Stopwatch,
//                       serve::Deadline (serve/net) and wf::obs
//   swallowed-error     no empty catch block without an explanatory comment
//                       (the "ignored write_csv/save failure" bug class)
//   unsafe-libc         banned unsafe/locale-dependent libc calls
//   assert-macro        WF_CHECK/WF_DCHECK (util/check.hpp), not raw assert
//
// The checker is deliberately token/regex-based: it strips comments and
// string literals, then pattern-matches the remaining code. That keeps it
// dependency-free and fast enough to run on every build, at the cost of
// needing occasional inline suppressions:
//
//   some_call();  // wf-lint: allow(rule-id) why this is fine
//
// (same line or the line directly above). `--self-test <fixtures-dir>`
// checks the linter against a corpus of seeded violations: every file under
// <dir>/bad must trigger exactly the rules named in its `wf-lint-expect:`
// comments, every file under <dir>/good must pass clean. Fixture files opt
// into path-scoped rules with a `wf-lint-path: <virtual/path>` comment.
//
// Exit status: 0 clean, 1 findings (or self-test mismatch), 2 usage error.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string display_path;           // repo-relative (or fixture-declared) path
  std::vector<std::string> raw;       // verbatim lines
  std::vector<std::string> code;      // comments + literals blanked out
  std::set<std::string> file_allows;  // wf-lint: file-allow(rule)
};

struct RuleInfo {
  std::string id;
  std::string what;
};

const std::vector<RuleInfo> kRules = {
    {"raw-random", "randomness outside seeded util::Rng (rand, mt19937, random_device, ...)"},
    {"wall-clock", "wall-clock reads (time(), system_clock, gettimeofday) break determinism"},
    {"unordered-iteration", "unordered-container iteration in a serialization/CSV/wire path"},
    {"socket-deadline", "raw blocking socket call outside the Deadline wrappers in serve/net.cpp"},
    {"mmap-discipline", "raw memory-mapping call outside the io::MappedFile wrapper in io/mmap.cpp"},
    {"retry-policy", "sleep-paced loop without serve::Backoff/RetryPolicy pacing"},
    {"clock-discipline",
     "raw monotonic-clock read outside util::Stopwatch, serve::Deadline and wf::obs"},
    {"swallowed-error", "empty catch block without an explanatory comment"},
    {"unsafe-libc", "banned unsafe libc call (sprintf, strcpy, atoi, strtok, ...)"},
    {"assert-macro", "raw assert(); use WF_CHECK/WF_DCHECK from util/check.hpp"},
};

// ---------------------------------------------------------------------------
// Lexing-lite: blank comments and string/char literals while preserving the
// line structure, so rule regexes never match inside either.

std::vector<std::string> strip_code(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  enum class State { code, block_comment };
  State state = State::code;
  for (const std::string& line : raw) {
    std::string stripped(line.size(), ' ');
    for (std::size_t i = 0; i < line.size();) {
      if (state == State::block_comment) {
        if (line.compare(i, 2, "*/") == 0) {
          state = State::code;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      if (line.compare(i, 2, "//") == 0) break;  // rest of line is comment
      if (line.compare(i, 2, "/*") == 0) {
        state = State::block_comment;
        i += 2;
        continue;
      }
      if (line[i] == '"' || line[i] == '\'') {
        const char quote = line[i];
        // Raw strings: treat R"( ... )" conservatively as ending at the
        // final )" on the same line — good enough for a linter.
        const bool is_raw = quote == '"' && i > 0 && line[i - 1] == 'R';
        stripped[i] = quote;
        ++i;
        while (i < line.size()) {
          if (!is_raw && line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote && (!is_raw || (i > 0 && line[i - 1] == ')'))) {
            stripped[i] = quote;
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      stripped[i] = line[i];
      ++i;
    }
    out.push_back(std::move(stripped));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions and fixture directives (parsed from the RAW text, since they
// live in comments).

std::set<std::string> allows_on_line(const std::string& raw_line) {
  std::set<std::string> allows;
  static const std::regex re(R"(wf-lint:\s*allow\(\s*([a-z\-,\s]+?)\s*\))");
  for (auto it = std::sregex_iterator(raw_line.begin(), raw_line.end(), re);
       it != std::sregex_iterator(); ++it) {
    std::stringstream list((*it)[1].str());
    std::string rule;
    while (std::getline(list, rule, ',')) {
      rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace), rule.end());
      if (!rule.empty()) allows.insert(rule);
    }
  }
  return allows;
}

bool is_suppressed(const SourceFile& f, std::size_t line_index, const std::string& rule) {
  if (f.file_allows.count(rule)) return true;
  const auto check = [&](std::size_t i) {
    if (i >= f.raw.size()) return false;
    return allows_on_line(f.raw[i]).count(rule) > 0;
  };
  return check(line_index) || (line_index > 0 && check(line_index - 1));
}

std::string directive_value(const std::vector<std::string>& raw, const std::string& key) {
  const std::regex re(key + R"(:\s*([^\s]+))");
  for (const std::string& line : raw) {
    std::smatch m;
    if (std::regex_search(line, m, re)) return m[1].str();
  }
  return {};
}

std::set<std::string> expected_rules(const std::vector<std::string>& raw) {
  std::set<std::string> rules;
  static const std::regex re(R"(wf-lint-expect:\s*([a-z\-]+))");
  for (const std::string& line : raw) {
    for (auto it = std::sregex_iterator(line.begin(), line.end(), re);
         it != std::sregex_iterator(); ++it)
      rules.insert((*it)[1].str());
  }
  return rules;
}

// ---------------------------------------------------------------------------
// Path scoping.

bool path_contains(const std::string& path, const std::string& fragment) {
  return path.find(fragment) != std::string::npos;
}

bool starts_with(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool in_library(const std::string& path) {
  return starts_with(path, "src/") || starts_with(path, "include/");
}

// ---------------------------------------------------------------------------
// Rule engine helpers.

void match_lines(const SourceFile& f, const std::regex& re, const std::string& rule,
                 const std::string& message, std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (!std::regex_search(f.code[i], re)) continue;
    if (is_suppressed(f, i, rule)) continue;
    findings.push_back({f.display_path, i + 1, rule, message});
  }
}

// --- raw-random -------------------------------------------------------------

void rule_raw_random(const SourceFile& f, std::vector<Finding>& findings) {
  if (path_contains(f.display_path, "util/rng.hpp")) return;  // the one blessed home
  static const std::regex re(
      R"((^|[^\w])(rand|srand|rand_r|drand48)\s*\(|\brandom_device\b|\bmt19937|\bdefault_random_engine\b|\bminstd_rand)");
  match_lines(f, re, "raw-random",
              "randomness must flow through a seeded util::Rng (fork() a stream)", findings);
}

// --- wall-clock -------------------------------------------------------------

void rule_wall_clock(const SourceFile& f, std::vector<Finding>& findings) {
  static const std::regex re(
      R"((^|[^\w.>])(time|clock)\s*\(|\bsystem_clock\b|\bgettimeofday\s*\(|\blocaltime\b|\bgmtime\b)");
  match_lines(f, re, "wall-clock",
              "wall-clock reads are nondeterministic; use util::Stopwatch (steady_clock) "
              "for timing and util::Rng for seeds",
              findings);
}

// --- unordered-iteration ----------------------------------------------------

bool is_output_path(const SourceFile& f) {
  if (path_contains(f.display_path, "/io/") || path_contains(f.display_path, "serve/frame") ||
      path_contains(f.display_path, "util/table"))
    return true;
  for (const std::string& line : f.code)
    if (line.find("io::Writer") != std::string::npos ||
        line.find("write_csv") != std::string::npos ||
        line.find("add_row") != std::string::npos)
      return true;
  return false;
}

void rule_unordered_iteration(const SourceFile& f, std::vector<Finding>& findings) {
  if (!is_output_path(f)) return;
  // Names declared (or bound) with an unordered container type in this file.
  std::set<std::string> names;
  static const std::regex decl(R"(unordered_(?:map|set)\s*<[^;{]*>\s*[&*]?\s*(\w+)\s*[;={(,)])");
  for (const std::string& line : f.code) {
    for (auto it = std::sregex_iterator(line.begin(), line.end(), decl);
         it != std::sregex_iterator(); ++it)
      names.insert((*it)[1].str());
  }
  if (names.empty()) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& line = f.code[i];
    bool hit = false;
    for (const std::string& name : names) {
      // Range-for over the container, or a classic iterator loop. A bulk
      // copy into a vector/map (the blessed sort-then-write pattern) also
      // calls .begin(), so only `for (...)` lines count as iteration.
      const std::regex range_for(R"(for\s*\([^;)]*:\s*)" + name + R"(\b)");
      const std::regex iter_for(R"(for\s*\([^;]*=\s*)" + name +
                                R"(\s*\.\s*c?begin\s*\()");
      if (std::regex_search(line, range_for) || std::regex_search(line, iter_for)) {
        hit = true;
        break;
      }
    }
    if (!hit || is_suppressed(f, i, "unordered-iteration")) continue;
    findings.push_back({f.display_path, i + 1, "unordered-iteration",
                        "iteration order of unordered containers is unspecified; sort into a "
                        "vector (or use std::map) before writing CSV/wire/serialized output"});
  }
}

// --- socket-deadline --------------------------------------------------------

void rule_socket_deadline(const SourceFile& f, std::vector<Finding>& findings) {
  if (path_contains(f.display_path, "serve/net.cpp")) return;  // the wrapper itself
  static const std::regex re(
      R"(::\s*(recv|recvfrom|recvmsg|send|sendto|sendmsg|accept4?|connect|poll|select|pselect)\s*\()");
  match_lines(f, re, "socket-deadline",
              "blocking socket calls live in src/serve/net.cpp only, behind the "
              "Deadline-aware Socket/Listener wrappers",
              findings);
}

// --- mmap-discipline --------------------------------------------------------

void rule_mmap_discipline(const SourceFile& f, std::vector<Finding>& findings) {
  if (path_contains(f.display_path, "io/mmap.cpp")) return;  // the RAII wrapper itself
  static const std::regex re(R"((^|[^\w])(mmap|mmap64|munmap|msync|madvise|mremap)\s*\()");
  match_lines(f, re, "mmap-discipline",
              "raw memory-mapping calls live in src/io/mmap.cpp only, behind the "
              "io::MappedFile RAII wrapper (unmap-on-destroy, error checking in one place)",
              findings);
}

// --- retry-policy -----------------------------------------------------------

void rule_retry_policy(const SourceFile& f, std::vector<Finding>& findings) {
  if (!in_library(f.display_path)) return;  // tests/benches sleep legitimately
  if (path_contains(f.display_path, "serve/retry.hpp")) return;  // the policy itself
  static const std::regex re(R"(\b(sleep_for|sleep_until|usleep|nanosleep)\s*\()");
  static const std::regex paced(R"(\bBackoff\b|\bRetryPolicy\b|\bbackoff\b)");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (!std::regex_search(f.code[i], re)) continue;
    // A sleep is fine when a Backoff/RetryPolicy computed its delay nearby —
    // the schedule is then bounded, exponential and seeded.
    bool has_pacing = false;
    const std::size_t lo = i >= 12 ? i - 12 : 0;
    for (std::size_t j = lo; j <= i && !has_pacing; ++j)
      has_pacing = std::regex_search(f.code[j], paced);
    if (has_pacing || is_suppressed(f, i, "retry-policy")) continue;
    findings.push_back({f.display_path, i + 1, "retry-policy",
                        "sleep-paced waiting must run on serve::Backoff/RetryPolicy "
                        "(bounded attempts, exponential backoff, seeded jitter)"});
  }
}

// --- clock-discipline -------------------------------------------------------

void rule_clock_discipline(const SourceFile& f, std::vector<Finding>& findings) {
  if (!in_library(f.display_path)) return;  // tests/benches may time directly
  // The blessed homes of monotonic-clock reads: the Stopwatch, the socket
  // Deadline machinery (serve/net) and the obs span tracer. Everyone else
  // measures through those wrappers, so timing code stays auditable in one
  // place and never silently switches clock sources.
  if (path_contains(f.display_path, "util/stopwatch.hpp") ||
      path_contains(f.display_path, "serve/net") || path_contains(f.display_path, "/obs/"))
    return;
  static const std::regex re(R"(\bsteady_clock\b|\bhigh_resolution_clock\b)");
  match_lines(f, re, "clock-discipline",
              "raw monotonic-clock reads belong in util::Stopwatch, serve::Deadline "
              "(serve/net) or wf::obs spans; time through those wrappers",
              findings);
}

// --- swallowed-error --------------------------------------------------------

void rule_swallowed_error(const SourceFile& f, std::vector<Finding>& findings) {
  if (!in_library(f.display_path)) return;
  // Find `catch (...) {` in the code text, then check whether the braces
  // close with nothing but whitespace between them; if so, require a comment
  // inside the block in the RAW text (or a suppression).
  static const std::regex catch_re(R"(catch\s*\(([^)]*)\)\s*\{)");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (auto it = std::sregex_iterator(f.code[i].begin(), f.code[i].end(), catch_re);
         it != std::sregex_iterator(); ++it) {
      const std::size_t open = static_cast<std::size_t>(it->position(0)) + it->length(0) - 1;
      // Walk forward from the opening brace across lines.
      std::size_t line = i, col = open + 1;
      bool empty = true, closed = false, has_comment = false;
      std::size_t close_line = i;
      while (line < f.code.size() && !closed) {
        const std::string& code_line = f.code[line];
        for (; col < code_line.size(); ++col) {
          const char c = code_line[col];
          if (c == '}') {
            closed = true;
            close_line = line;
            break;
          }
          if (!std::isspace(static_cast<unsigned char>(c))) {
            empty = false;
            break;
          }
        }
        if (!closed && !empty) break;
        if (!closed) {
          // Raw-text comment anywhere on an interior line counts as intent.
          if (f.raw[line].find("//") != std::string::npos ||
              f.raw[line].find("/*") != std::string::npos)
            has_comment = true;
          ++line;
          col = 0;
        }
      }
      if (closed && f.raw[close_line].find("//") != std::string::npos) has_comment = true;
      if (f.raw[i].find("//") != std::string::npos) has_comment = true;
      if (!closed || !empty || has_comment) continue;
      if (is_suppressed(f, i, "swallowed-error")) continue;
      findings.push_back({f.display_path, i + 1, "swallowed-error",
                          "empty catch silently swallows the failure (the ignored "
                          "write_csv/save bug class); handle it, rethrow, or leave a comment "
                          "saying why dropping it is correct"});
    }
  }
}

// --- unsafe-libc ------------------------------------------------------------

void rule_unsafe_libc(const SourceFile& f, std::vector<Finding>& findings) {
  static const std::regex re(
      R"((^|[^\w])(sprintf|vsprintf|strcpy|strncpy|strcat|strncat|gets|strtok|tmpnam|mktemp|atoi|atol|atoll|atof|alloca|setjmp|longjmp)\s*\()");
  match_lines(f, re, "unsafe-libc",
              "banned unsafe/locale-dependent libc call; use std::snprintf, std::string, "
              "std::from_chars or util::Env::parse_count instead",
              findings);
}

// --- assert-macro -----------------------------------------------------------

void rule_assert_macro(const SourceFile& f, std::vector<Finding>& findings) {
  if (!in_library(f.display_path)) return;  // the test harness has its own CHECK
  if (path_contains(f.display_path, "util/check.hpp")) return;
  static const std::regex re(R"((^|[^\w_])assert\s*\()");
  match_lines(f, re, "assert-macro",
              "raw assert() vanishes under NDEBUG and aborts without context; use "
              "WF_CHECK (always on) or WF_DCHECK (debug) from util/check.hpp",
              findings);
}

// ---------------------------------------------------------------------------

std::vector<Finding> lint_file(const SourceFile& f) {
  std::vector<Finding> findings;
  rule_raw_random(f, findings);
  rule_wall_clock(f, findings);
  rule_unordered_iteration(f, findings);
  rule_socket_deadline(f, findings);
  rule_mmap_discipline(f, findings);
  rule_retry_policy(f, findings);
  rule_clock_discipline(f, findings);
  rule_swallowed_error(f, findings);
  rule_unsafe_libc(f, findings);
  rule_assert_macro(f, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return findings;
}

SourceFile load_file(const fs::path& path, const std::string& display_path) {
  SourceFile f;
  f.display_path = display_path;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "wf-lint: cannot open " << path << "\n";
    std::exit(2);
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    f.raw.push_back(line);
  }
  f.code = strip_code(f.raw);
  static const std::regex file_allow(R"(wf-lint:\s*file-allow\(\s*([a-z\-]+)\s*\))");
  for (const std::string& raw_line : f.raw) {
    for (auto it = std::sregex_iterator(raw_line.begin(), raw_line.end(), file_allow);
         it != std::sregex_iterator(); ++it)
      f.file_allows.insert((*it)[1].str());
  }
  return f;
}

bool lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" || ext == ".cxx";
}

std::vector<fs::path> collect_tree(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* dir : {"src", "include", "tools", "bench", "examples", "tests"}) {
    const fs::path sub = root / dir;
    if (!fs::exists(sub)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(sub)) {
      if (!entry.is_regular_file() || !lintable_extension(entry.path())) continue;
      const std::string rel = fs::relative(entry.path(), root).generic_string();
      if (rel.find("lint_fixtures") != std::string::npos) continue;  // seeded violations
      if (rel.find("build") == 0) continue;
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void print_findings(const std::vector<Finding>& findings) {
  for (const Finding& f : findings)
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
}

int run_self_test(const fs::path& fixtures) {
  int failures = 0;
  std::size_t n_bad = 0, n_good = 0;

  const fs::path bad = fixtures / "bad";
  if (fs::exists(bad)) {
    for (const auto& entry : fs::directory_iterator(bad)) {
      if (!entry.is_regular_file() || !lintable_extension(entry.path())) continue;
      ++n_bad;
      SourceFile f = load_file(entry.path(), entry.path().filename().string());
      const std::string virtual_path = directive_value(f.raw, "wf-lint-path");
      f.display_path = virtual_path.empty() ? "src/" + f.display_path : virtual_path;
      const std::set<std::string> expected = expected_rules(f.raw);
      if (expected.empty()) {
        std::cerr << "self-test: " << entry.path().filename().string()
                  << " declares no wf-lint-expect rules\n";
        ++failures;
        continue;
      }
      std::set<std::string> got;
      for (const Finding& finding : lint_file(f)) got.insert(finding.rule);
      for (const std::string& rule : expected)
        if (!got.count(rule)) {
          std::cerr << "self-test: " << entry.path().filename().string()
                    << " expected a [" << rule << "] finding but got none\n";
          ++failures;
        }
      for (const std::string& rule : got)
        if (!expected.count(rule)) {
          std::cerr << "self-test: " << entry.path().filename().string()
                    << " triggered unexpected rule [" << rule << "]\n";
          ++failures;
        }
    }
  }

  const fs::path good = fixtures / "good";
  if (fs::exists(good)) {
    for (const auto& entry : fs::directory_iterator(good)) {
      if (!entry.is_regular_file() || !lintable_extension(entry.path())) continue;
      ++n_good;
      SourceFile f = load_file(entry.path(), entry.path().filename().string());
      const std::string virtual_path = directive_value(f.raw, "wf-lint-path");
      f.display_path = virtual_path.empty() ? "src/" + f.display_path : virtual_path;
      const std::vector<Finding> findings = lint_file(f);
      if (!findings.empty()) {
        std::cerr << "self-test: " << entry.path().filename().string()
                  << " should pass clean but got:\n";
        print_findings(findings);
        failures += static_cast<int>(findings.size());
      }
    }
  }

  if (n_bad == 0) {
    std::cerr << "self-test: no bad fixtures found under " << bad << "\n";
    return 2;
  }
  std::cout << "wf-lint self-test: " << n_bad << " bad + " << n_good << " good fixtures, "
            << (failures == 0 ? "all as expected" : std::to_string(failures) + " mismatch(es)")
            << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path self_test;
  std::vector<fs::path> explicit_files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--self-test" && i + 1 < argc) {
      self_test = argv[++i];
    } else if (arg == "--list-rules") {
      for (const RuleInfo& rule : kRules)
        std::cout << rule.id << "\n    " << rule.what << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: wf-lint [--root DIR] [--self-test FIXTURES_DIR] [--list-rules] "
                   "[file...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "wf-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      explicit_files.emplace_back(arg);
    }
  }

  if (!self_test.empty()) return run_self_test(self_test);

  std::vector<fs::path> files =
      explicit_files.empty() ? collect_tree(root) : std::move(explicit_files);
  if (files.empty()) {
    std::cerr << "wf-lint: no source files found under " << root << "\n";
    return 2;
  }

  std::vector<Finding> all;
  for (const fs::path& path : files) {
    std::string display = path.generic_string();
    std::error_code ec;
    const fs::path rel = fs::relative(path, root, ec);
    if (!ec && !rel.empty() && rel.generic_string().rfind("..", 0) != 0)
      display = rel.generic_string();
    const SourceFile f = load_file(path, display);
    const std::vector<Finding> findings = lint_file(f);
    all.insert(all.end(), findings.begin(), findings.end());
  }

  print_findings(all);
  std::cout << "wf-lint: " << files.size() << " files, " << all.size() << " finding"
            << (all.size() == 1 ? "" : "s") << "\n";
  return all.empty() ? 0 : 1;
}
