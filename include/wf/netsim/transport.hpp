#pragma once

#include <cstdint>

namespace wf::util {
class Rng;
}

namespace wf::netsim {

// Application protocol of a page load. kAuto defers to the Website's own
// version (HTTP/1.1 over parallel connections for the wiki-like site,
// HTTP/2 single-connection multiplexing for the github-like one).
enum class HttpVersion : std::uint8_t { kAuto, kHttp1, kHttp2 };

// Packet-level transport model under the TLS record layer. Disabled by
// default: the simulator then emits idealized whole TLS records exactly as
// before this subsystem existed (bit-identical captures). Enabled, every
// TLS record is segmented into <=MSS TCP packets with per-packet IP/TCP
// header overhead, slow-start cwnd pacing, iid loss with RTO-delayed
// retransmission, delayed ACKs on the reverse path, and HTTP/1.1 vs HTTP/2
// fetch scheduling — the observer sees wire packets, not records.
struct TransportConfig {
  bool enabled = false;

  // TCP / IP.
  std::uint32_t mss = 1460;             // TCP payload bytes per segment
  std::uint32_t packet_overhead = 40;   // IPv4 + TCP headers per packet
  std::uint32_t initial_cwnd = 10;      // initial window, segments (RFC 6928)
  std::uint32_t max_cwnd = 64;          // receive-window cap, segments
  double loss_probability = 0.0;        // iid per-segment loss
  double rto_ms = 200.0;                // retransmission timeout
  int ack_every = 2;                    // delayed ACK: one per N data segments

  // HTTP/2 framing (one DATA frame per TLS record when multiplexing).
  std::uint32_t h2_frame_payload = 8192;
  std::uint32_t h2_frame_header = 9;

  HttpVersion http = HttpVersion::kAuto;
};

struct Website;
struct ServerFarm;
struct BrowserConfig;
struct PacketCapture;

// The packet-level page loader (TransportConfig.enabled path). Dispatched
// to by load_page; deterministic in `rng` like the record-level path.
PacketCapture load_page_packets(const Website& site, const ServerFarm& farm, int page_id,
                                const BrowserConfig& config, util::Rng& rng);

}  // namespace wf::netsim
