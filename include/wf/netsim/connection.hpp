#pragma once

#include <cstdint>
#include <vector>

#include "netsim/browser.hpp"
#include "netsim/transport.hpp"
#include "util/rng.hpp"

namespace wf::netsim {

// Sender-side TCP state of one client<->server connection: MSS
// segmentation, slow-start cwnd pacing, iid segment loss with RTO-delayed
// retransmission, and delayed ACKs on the reverse path. Every emitted
// Record is one wire packet (payload + IP/TCP headers); the observer sits
// next to the client, so outgoing packets are stamped at send time and
// incoming ones one propagation delay after the server serialized them.
//
// Simplifications, on purpose: the congestion window only slow-starts (no
// congestion avoidance or loss-triggered window collapse), a lost segment
// is dropped upstream of the observer and its retransmission observed one
// RTO later, and both directions share the window. Each connection is
// deterministic in the caller's Rng.
class TcpConnection {
 public:
  TcpConnection(const TransportConfig& config, const Server& server, int server_index);

  double now() const { return clock_ms_; }
  void wait_until(double t_ms) {
    if (t_ms > clock_ms_) clock_ms_ = t_ms;
  }

  // Request propagation + server think time before a response starts.
  void server_turnaround(util::Rng& rng) {
    clock_ms_ += server_.latency_ms + rng.uniform(0.0, server_.jitter_ms);
  }

  // SYN / SYN-ACK / ACK; advances the clock by roughly one RTT.
  void handshake(util::Rng& rng, std::vector<Record>& out);

  // Segment `record_bytes` of TLS wire data into <=MSS packets in `dir`.
  // The sum of emitted data payloads always equals `record_bytes`,
  // regardless of loss (each segment is observed exactly once — the
  // retransmitted copy replaces the lost original).
  void send_record(Direction dir, std::uint32_t record_bytes, util::Rng& rng,
                   std::vector<Record>& out);

  std::uint64_t data_packets() const { return data_packets_; }

 private:
  void emit_segment(Direction dir, std::uint32_t payload, util::Rng& rng,
                    std::vector<Record>& out);

  TransportConfig config_;
  Server server_;
  int server_index_;
  double ms_per_byte_;

  double clock_ms_ = 0.0;      // sender-side serialization clock
  double round_ack_ms_ = 0.0;  // when the current window's ACKs are back
  std::uint32_t cwnd_;         // segments per round (slow start)
  std::uint32_t segments_in_round_ = 0;
  int since_ack_ = 0;
  std::uint64_t data_packets_ = 0;
};

}  // namespace wf::netsim
