#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/transport.hpp"

namespace wf::netsim {

enum class TlsVersion { kTls12, kTls13 };

// One fetchable object (HTML, CSS, image, API response...).
struct Resource {
  int server = 0;            // index of the serving host (0 = main host)
  std::uint32_t bytes = 0;   // application-payload size
  bool dynamic = false;      // size re-rolled slightly on every load
};

struct Page {
  int id = 0;
  std::vector<Resource> resources;  // leading entries are the shared theme
};

// A simulated website: pages share a theme (same CSS/JS/fonts) but carry
// per-page content, mirroring the Wikipedia/Github sites of the paper.
struct Website {
  std::string name;
  TlsVersion tls = TlsVersion::kTls12;
  // Fetch model under the packet-level transport (ignored when the
  // transport simulator is disabled): HTTP/1.1 parallel connections vs
  // HTTP/2 single-connection multiplexing.
  HttpVersion http = HttpVersion::kHttp1;
  int n_servers = 1;
  // Per page, resources[0] is the HTML document and the next
  // `theme_resources` entries are the shared immutable theme.
  int theme_resources = 0;
  std::vector<Page> pages;
  // Out-links per page: the link graph a browsing journey walks (§V-A).
  std::vector<std::vector<int>> links;
};

// Wikipedia-like site: fixed small server farm (main host + media + CDN),
// article pages dominated by text plus a few images.
struct WikiSiteConfig {
  int n_pages = 20;
  int links_per_page = 8;
  std::uint64_t seed = 1;
  TlsVersion tls = TlsVersion::kTls12;
  HttpVersion http = HttpVersion::kHttp1;
  int n_servers = 3;
  int theme_resources = 5;
  int min_content_resources = 3;
  int max_content_resources = 10;
};
Website make_wiki_site(const WikiSiteConfig& config);

// Github-like site: TLS 1.3, heavier shared theme, variable per-page server
// count (avatars/raw/api hosts) — the transfer target of Experiment 3.
struct GithubSiteConfig {
  int n_pages = 20;
  int links_per_page = 6;
  std::uint64_t seed = 2;
  TlsVersion tls = TlsVersion::kTls13;
  HttpVersion http = HttpVersion::kHttp2;
  int min_servers = 2;
  int max_servers = 5;
  int theme_resources = 8;
  int min_content_resources = 2;
  int max_content_resources = 14;
};
Website make_github_site(const GithubSiteConfig& config);

// Re-roll a `fraction` of every page's content resources (sizes and counts),
// keeping the shared theme: the distributional drift of §IV-C. Deterministic
// in `seed`; cumulative when applied repeatedly.
void apply_content_drift(Website& site, double fraction, std::uint64_t seed);

}  // namespace wf::netsim
