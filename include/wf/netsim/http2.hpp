#pragma once

#include <cstdint>
#include <vector>

namespace wf::netsim {

// One planned TLS record of application data on a connection: which stream
// (resource index on that connection) it carries and its payload bytes
// (before TLS framing).
struct RecordPlan {
  int stream = 0;
  std::uint32_t payload = 0;
  bool last = false;  // final record of its stream
};

// HTTP/1.1 on one connection: responses occupy the connection one at a
// time, each split into records of at most `max_record` bytes — stream i
// finishes entirely before stream i+1 starts.
std::vector<RecordPlan> plan_http1(const std::vector<std::uint32_t>& response_bytes,
                                   std::uint32_t max_record);

// HTTP/2 on one connection: DATA frames of at most `frame_payload` bytes,
// scheduled round-robin across the streams still sending; each frame plus
// its `frame_header` bytes rides in one TLS record. Concurrent responses
// interleave packet-for-packet instead of queueing.
std::vector<RecordPlan> plan_http2(const std::vector<std::uint32_t>& response_bytes,
                                   std::uint32_t frame_payload, std::uint32_t frame_header);

}  // namespace wf::netsim
