#pragma once

#include <cstdint>
#include <vector>

#include "netsim/transport.hpp"
#include "netsim/website.hpp"
#include "util/rng.hpp"

namespace wf::netsim {

// TLS 1.3 record-padding policy (RFC 8446 §5.4 mechanism); ignored over
// TLS 1.2, which has no standard padding.
struct RecordPaddingPolicy {
  enum class Kind { kNone, kRandom, kPadToMultiple, kFixedRecord };
  Kind kind = Kind::kNone;
  std::uint32_t param = 0;  // range / multiple / fixed record payload
};

enum class Direction : std::uint8_t { kOutgoing, kIncoming };

// One TLS record as seen on the wire by a passive observer: timing, size,
// direction and destination IP (the server index) are visible; contents are
// not.
struct Record {
  double time_ms = 0.0;
  Direction direction = Direction::kOutgoing;
  std::uint32_t wire_bytes = 0;
  int server = 0;
};

struct PacketCapture {
  TlsVersion tls = TlsVersion::kTls12;
  std::vector<Record> records;

  std::size_t size() const { return records.size(); }
  std::uint64_t total_bytes() const;
  std::uint64_t bytes(Direction direction) const;
};

// Per-host network characteristics.
struct Server {
  double latency_ms = 20.0;
  double jitter_ms = 4.0;
  double mbps = 80.0;  // downstream throughput
};

struct ServerFarm {
  std::vector<Server> servers;

  static ServerFarm for_wiki();
  static ServerFarm for_github();

  const Server& server(int index) const {
    return servers[static_cast<std::size_t>(index) % servers.size()];
  }
  std::size_t size() const { return servers.size(); }
};

struct BrowserConfig {
  RecordPaddingPolicy record_padding;   // applied only over TLS 1.3
  int parallel_connections = 2;         // concurrent fetches per server
  double size_jitter = 0.04;            // relative payload noise per load
  double extra_resource_prob = 0.2;     // transient extra fetch (ads, API)
  double cache_hit_prob = 0.15;         // shared theme resource served from cache
  std::uint32_t max_record_payload = 16384;
  // Packet-level transport under the record layer; disabled reproduces the
  // idealized record stream bit-identically.
  TransportConfig transport;
};

// Per-record TLS framing overhead on the wire: 5-byte header plus MAC/IV
// (1.2, CBC-era) or AEAD tag + content-type byte (1.3).
std::uint32_t tls_record_overhead(TlsVersion tls);

// Apply the record-padding policy to one application payload (a no-op over
// TLS 1.2, which has no standard padding). Returns the padded length.
std::uint32_t pad_record_payload(std::uint32_t payload, TlsVersion tls,
                                 const RecordPaddingPolicy& policy, util::Rng& rng);

// One wire fetch of a page load, after cache hits, per-load size jitter and
// the transient extra resource are resolved. Shared by the record-level and
// packet-level loaders (identical Rng draw order).
struct ResourceFetch {
  int server = 0;
  std::uint32_t bytes = 0;
};
std::vector<ResourceFetch> resolve_fetches(const Website& site, const ServerFarm& farm,
                                           int page_id, const BrowserConfig& config,
                                           util::Rng& rng);

// Simulate one page load and return the observable trace. With the
// transport simulator disabled (default): handshakes per contacted server,
// then the request/response TLS records of every resource, interleaved
// across servers by their latency/throughput. With it enabled: the same
// fetches through load_page_packets, observed as wire packets.
PacketCapture load_page(const Website& site, const ServerFarm& farm, int page_id,
                        const BrowserConfig& config, util::Rng& rng);

}  // namespace wf::netsim
