#pragma once

// RAII read-only memory mapping. This class (src/io/mmap.cpp) is the one
// sanctioned home of raw mmap/munmap calls in the tree — the wf-lint
// mmap-discipline rule enforces it — so lifetime bugs (double unmap, leaked
// mappings, use-after-close) have exactly one place to hide.

#include <cstddef>
#include <cstdint>
#include <string>

namespace wf::io {

class MappedFile {
 public:
  MappedFile() = default;
  // Maps `path` read-only in whole. Throws IoError (with the path and
  // errno text) when the file cannot be opened, sized or mapped. A
  // zero-length file maps to data() == nullptr with size() == 0.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::uint8_t* data() const { return static_cast<const std::uint8_t*>(addr_); }
  std::size_t size() const { return size_; }
  bool mapped() const { return mapped_; }
  const std::string& path() const { return path_; }

 private:
  void reset() noexcept;

  void* addr_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::string path_;
};

}  // namespace wf::io
