#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <sstream>
#include <string>

#include "core/embedding_config.hpp"
#include "core/sharded_reference_set.hpp"
#include "data/dataset.hpp"
#include "io/binary.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"

namespace wf::core {
class Attacker;
}

namespace wf::io {

// On-disk layout (all integers little-endian):
//
//   File    := "WFIO" | u32 format_version | 4-char kind | Section...
//   Section := 4-char tag | u64 payload_bytes | payload
//
// `kind` names what the file holds ("ATKR" attacker, "DATA" dataset,
// "MODL" embedding model); sections carry the object bodies. Readers pull
// sections by expected tag and parse each payload from its own bounded
// buffer, so truncation and tag mismatches surface as IoError instead of
// misaligned garbage. Files from a newer format version are rejected with
// the version named in the error.
inline constexpr std::uint32_t kFormatVersion = 1;

void write_header(Writer& out, const std::string& kind);
// Returns the file kind; throws IoError on bad magic or unsupported version.
std::string read_header(Reader& in);
// Reads and checks one header, requiring `kind`.
void expect_header(Reader& in, const std::string& kind);

// Write one section: tag + length + the bytes `body` produced.
template <typename Body>
void write_section(Writer& out, const std::string& tag, Body&& body);
// Read one section, requiring `tag`; returns its payload.
std::string read_section(Reader& in, const std::string& tag);
// Parse a section payload with `body(Reader&)`.
template <typename Body>
auto parse_section(Reader& in, const std::string& tag, Body&& body);

// Object codecs (section payload bodies).
void save_matrix(Writer& out, const nn::Matrix& m);
nn::Matrix load_matrix(Reader& in);
// Shape-checked variant: rejects a mismatching stored shape BEFORE
// allocating, so hostile dims cannot force a multi-GiB zero-fill.
nn::Matrix load_matrix(Reader& in, std::size_t rows, std::size_t cols);

// Inference parameters only (sizes + weights + biases); a loaded Mlp
// resumes training with fresh Adam state, but forwards bit-identically.
void save_mlp(Writer& out, const nn::Mlp& mlp);
nn::Mlp load_mlp(Reader& in);

void save_embedding_config(Writer& out, const core::EmbeddingConfig& config);
core::EmbeddingConfig load_embedding_config(Reader& in);

void save_reference_set(Writer& out, const core::ShardedReferenceSet& refs);
core::ShardedReferenceSet load_reference_set(Reader& in);

void save_dataset_body(Writer& out, const data::Dataset& dataset);
data::Dataset load_dataset_body(Reader& in);

// Whole-file corpus helpers ("DATA" kind).
void save_dataset(const std::string& path, const data::Dataset& dataset);
data::Dataset load_dataset(const std::string& path);

// Attacker files ("ATKR" kind): header, a NAME section with the registry
// name, then the attacker's own body sections. load_attacker dispatches on
// the stored name ("adaptive", "forest", "kfp-knn") and rebuilds the
// matching concrete type.
void save_attacker(std::ostream& out, const core::Attacker& attacker);
void save_attacker(const std::string& path, const core::Attacker& attacker);
std::unique_ptr<core::Attacker> load_attacker(std::istream& in);
std::unique_ptr<core::Attacker> load_attacker(const std::string& path);
// Consume the ATKR header + NAME section, leaving `in` at the body — the
// one parse site shared by load_attacker and the typed Attacker::load.
std::string read_attacker_name(Reader& in);

// --- template bodies -------------------------------------------------------

namespace detail {
void write_tagged_payload(Writer& out, const std::string& tag, const std::string& payload);
std::unique_ptr<std::istringstream> payload_stream(std::string payload);
std::string buffer_payload(const std::function<void(Writer&)>& body);
// Throws IoError unless the section payload was read to its end — trailing
// bytes mean corruption or a writer/reader drift the framing must surface.
void require_consumed(std::istream& payload, const std::string& tag);
}  // namespace detail

template <typename Body>
void write_section(Writer& out, const std::string& tag, Body&& body) {
  detail::write_tagged_payload(out, tag,
                               detail::buffer_payload(std::function<void(Writer&)>(body)));
}

template <typename Body>
auto parse_section(Reader& in, const std::string& tag, Body&& body) {
  const auto stream = detail::payload_stream(read_section(in, tag));
  Reader section(*stream);
  auto result = body(section);
  detail::require_consumed(*stream, tag);
  return result;
}

}  // namespace wf::io
