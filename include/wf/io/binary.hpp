#pragma once

#include <cstddef>
#include <cstdint>
#include <iostream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace wf::io {

// Any failure in the serialization layer: short reads, bad magic,
// unsupported versions, inconsistent section contents.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error("wf::io: " + what) {}
};

// Little-endian primitive writer over any std::ostream. Integers are
// emitted byte by byte so the on-disk format is identical on every host;
// floats/doubles are written via their IEEE-754 bit patterns.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void u8(std::uint8_t v) { put(&v, 1); }
  void u32(std::uint32_t v) {
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    put(b, 4);
  }
  void u64(std::uint64_t v) {
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    put(b, 8);
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f32(float v) {
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    u32(bits);
  }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    put(s.data(), s.size());
  }
  void f32_vec(std::span<const float> v) {
    u64(v.size());
    for (const float x : v) f32(x);
  }
  void f64_vec(std::span<const double> v) {
    u64(v.size());
    for (const double x : v) f64(x);
  }
  void i32_vec(std::span<const int> v) {
    u64(v.size());
    for (const int x : v) i32(x);
  }
  void u64_vec(std::span<const std::uint64_t> v) {
    u64(v.size());
    for (const std::uint64_t x : v) u64(x);
  }

  std::ostream& stream() { return out_; }

 private:
  void put(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    if (!out_) throw IoError("write failed");
  }

  std::ostream& out_;
};

// Symmetric reader; every accessor throws IoError on a short read, so a
// truncated or corrupt file surfaces as a clean error instead of garbage.
class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  std::uint8_t u8() {
    std::uint8_t v;
    get(&v, 1);
    return v;
  }
  std::uint32_t u32() {
    std::uint8_t b[4];
    get(b, 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint8_t b[8];
    get(b, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint64_t n = checked_count(u64(), 1);
    std::string s(n, '\0');
    get(s.data(), n);
    return s;
  }
  std::vector<float> f32_vec() {
    const std::uint64_t n = checked_count(u64(), 4);
    std::vector<float> v(n);
    for (auto& x : v) x = f32();
    return v;
  }
  std::vector<double> f64_vec() {
    const std::uint64_t n = checked_count(u64(), 8);
    std::vector<double> v(n);
    for (auto& x : v) x = f64();
    return v;
  }
  std::vector<int> i32_vec() {
    const std::uint64_t n = checked_count(u64(), 4);
    std::vector<int> v(n);
    for (auto& x : v) x = i32();
    return v;
  }
  std::vector<std::uint64_t> u64_vec() {
    const std::uint64_t n = checked_count(u64(), 8);
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = u64();
    return v;
  }

  std::istream& stream() { return in_; }

 private:
  // Reject absurd element counts before allocating: a corrupt length field
  // must raise IoError, not bad_alloc.
  std::uint64_t checked_count(std::uint64_t n, std::uint64_t elem_bytes) {
    constexpr std::uint64_t kMaxBytes = std::uint64_t{1} << 34;  // 16 GiB
    if (n > kMaxBytes / elem_bytes) throw IoError("corrupt length field");
    return n;
  }

  void get(void* data, std::size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (in_.gcount() != static_cast<std::streamsize>(n))
      throw IoError("unexpected end of stream");
  }

  std::istream& in_;
};

}  // namespace wf::io
