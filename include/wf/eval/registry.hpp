#pragma once

#include <string_view>
#include <vector>

#include "eval/scenario.hpp"

namespace wf::eval {

// One experiment of the suite, as driven by `wf run <name>`. `run` prints
// the experiment's tables and mirrors them (plus a bench_<name>.json) under
// results_dir(); experiments that support attacker sweeps pass the factory
// through, the rest (costs runs every attacker, ablation sweeps the
// adaptive attacker's internals) ignore it.
struct Experiment {
  const char* name;           // CLI name, e.g. "exp1"
  const char* legacy_binary;  // pre-CLI binary name, kept as a shim
  const char* description;
  bool accepts_attacker;      // honours `wf run --attacker`
  int (*run)(const AttackerFactory& make_attacker);
};

// All registered experiments, in suite order.
const std::vector<Experiment>& experiments();

// Lookup by CLI name or legacy binary name; nullptr when unknown.
const Experiment* find_experiment(std::string_view name_or_legacy);

// Entry point of the legacy bench_* shims: logs the effective WF_*
// settings once and dispatches into the registry.
int run_legacy(const char* legacy_binary);

}  // namespace wf::eval
