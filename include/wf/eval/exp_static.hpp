#pragma once

#include "eval/scenario.hpp"

namespace wf::eval {

// Experiment 1 (Fig. 6): closed-world top-n accuracy for growing class
// counts over TLS 1.2, plus the TLS 1.3 version-shift series. Writes
// results/exp1_static.csv.
util::Table run_exp1_static(WikiScenario& scenario);

}  // namespace wf::eval
