#pragma once

#include "eval/scenario.hpp"

namespace wf::eval {

// Experiment 1 (Fig. 6): closed-world top-n accuracy for growing class
// counts over TLS 1.2, plus the TLS 1.3 version-shift series. Writes
// exp1_static.csv under results_dir(). An empty factory runs the paper's
// adaptive attacker.
util::Table run_exp1_static(WikiScenario& scenario, const AttackerFactory& make_attacker = {});

}  // namespace wf::eval
