#pragma once

#include "eval/scenario.hpp"

namespace wf::eval {

struct Exp4Result {
  util::Table known;    // Fig. 9:  CDF of mean guesses, classes seen in training
  util::Table unknown;  // Fig. 10: CDF of mean guesses, unseen classes
  util::Table padded;   // Fig. 11: CDF of mean guesses under FL padding
};

// Experiment 4 (Figs. 9-11): per-class distinguishability as the CDF of the
// mean number of guesses needed per class. Writes results/exp4_*.csv.
Exp4Result run_exp4_distinguish(WikiScenario& scenario, const AttackerFactory& make_attacker = {});

}  // namespace wf::eval
