#pragma once

#include "eval/scenario.hpp"

namespace wf::eval {

// Serving-path benchmark (`wf run perf_serve`): trains the adaptive
// attacker once, then measures the resident daemon end to end over
// loopback TCP — throughput (q/s) and request latency (p50/p99 ms) for
// every shard count x request batch size. Shard count 1 is a single
// daemon; >1 runs one backend per shard slice behind a scatter/gather
// coordinator. Writes results/perf_serve.csv.
util::Table run_perf_serve(WikiScenario& scenario);

}  // namespace wf::eval
