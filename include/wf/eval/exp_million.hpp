#pragma once

#include "util/table.hpp"

namespace wf::eval {

// The million-reference regime (wf::index): recall-vs-speedup sweep of the
// IVF-pruned scan over cluster count C x probe count P x SIMD mode, against
// the exact sharded scan as baseline. Uses a synthetic clustered-gaussian
// corpus (seeded, no crawl) so reference counts far beyond the simulator's
// reach are cheap to generate. Writes results/perf_million.csv with the
// pinned header Refs,Clusters,Probes,Simd,QPS,Speedup,Recall10.
util::Table run_million_experiment();

}  // namespace wf::eval
