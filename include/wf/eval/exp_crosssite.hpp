#pragma once

#include "eval/scenario.hpp"

namespace wf::eval {

// Experiment 3 (Fig. 8): a two-sequence model trained on the Wikipedia-like
// site (TLS 1.2) fingerprints the Github-like site (TLS 1.3, different
// theme, variable server count). Writes results/exp3_crosssite.csv.
util::Table run_exp3_crosssite(WikiScenario& scenario, const AttackerFactory& make_attacker = {});

}  // namespace wf::eval
