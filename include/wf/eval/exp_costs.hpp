#pragma once

#include "eval/scenario.hpp"

namespace wf::eval {

struct CostResult {
  util::Table literature;  // Table III as published
  util::Table measured;    // the same operations timed on this reproduction
};

// Table III (§VIII): operational costs of fingerprinting systems. The
// embedding system adapts by reference swap (no retraining); feature/forest
// systems refit; CNN classifiers retrain end to end. Writes
// results/table3_literature.csv and results/table3_measured.csv.
CostResult run_cost_experiment(WikiScenario& scenario);

}  // namespace wf::eval
