#pragma once

#include "eval/scenario.hpp"

namespace wf::eval {

struct AblationResult {
  util::Table design;     // design-choice arms (pairs, dims, k, quantization, encoding, loss)
  util::Table openworld;  // §VI-C calibrated operating points
  util::Table pr_sweep;   // open-world precision/recall sweep
};

// Design-choice ablations justifying the paper's Table I, plus the §VI-C
// open-world detector. The ablation is specific to the adaptive embedding
// attacker (it sweeps that attacker's internals), so it takes no factory.
// Honours WF_SMOKE via util::Env. Writes ablation.csv, openworld.csv and
// openworld_pr.csv under results_dir().
AblationResult run_ablation_experiment();

}  // namespace wf::eval
