#pragma once

#include "eval/scenario.hpp"

namespace wf::eval {

struct Exp2Result {
  util::Table accuracy;  // Fig. 7: top-n on classes never seen in training
  util::Table table2;    // Table II: guesses needed for ~90% accuracy
};

// Experiment 2 (Fig. 7 / Table II): the trained embedding generalizes to
// webpages that did not exist at training time — only the reference set is
// built from them. Writes results/exp2_transfer.csv and exp2_table2.csv.
Exp2Result run_exp2_transfer(WikiScenario& scenario, const AttackerFactory& make_attacker = {});

}  // namespace wf::eval
