#pragma once

#include "eval/scenario.hpp"

namespace wf::eval {

// Figs. 12/13 (§VII): fixed-length padding against the adaptive adversary,
// on classes seen and not seen during training. Writes
// results/padding_fl.csv.
util::Table run_padding_experiment(WikiScenario& scenario);

// §VII discussion ablation: TLS 1.3 record-padding policies and
// trace-level defenses, attacker accuracy vs bandwidth overhead. Writes
// results/defense_ablation.csv.
util::Table run_defense_ablation(WikiScenario& scenario);

}  // namespace wf::eval
