#pragma once

#include "eval/scenario.hpp"

namespace wf::eval {

// Figs. 12/13 (§VII): fixed-length padding against the adaptive adversary,
// on classes seen and not seen during training. Writes
// results/padding_fl.csv.
util::Table run_padding_experiment(WikiScenario& scenario,
                                   const AttackerFactory& make_attacker = {});

// §VII discussion ablation: TLS 1.3 record-padding policies and
// trace-level defenses, attacker accuracy vs bandwidth overhead. Writes
// results/defense_ablation.csv.
util::Table run_defense_ablation(WikiScenario& scenario,
                                 const AttackerFactory& make_attacker = {});

// Cost/protection frontier: sweeps anonymity-set sizes and record-padding
// parameters (ScenarioConfig.frontier_*) against one attacker, so every
// defense family contributes a curve of (bandwidth overhead, residual
// accuracy) points instead of a single operating point. Writes
// results/defense_frontier.csv.
util::Table run_defense_frontier(WikiScenario& scenario,
                                 const AttackerFactory& make_attacker = {});

}  // namespace wf::eval
