#pragma once

#include "eval/scenario.hpp"

namespace wf::eval {

// Chaos benchmark (`wf run robust_serve`): trains the adaptive attacker
// once, serves it from a resident daemon, and drives query traffic through
// a serve::FaultProxy injecting each fault kind at each fault rate. Per
// configuration it reports availability (requests answered within the
// bounded retry budget), the classified error mix, request latency
// (p50/p99 ms) and the number of answered requests whose rankings differ
// from the attacker's in-process answers. Every kind that cuts or stalls
// streams must keep that column at 0 — a fault may cost a request, never
// an answer; only `corrupt` can push it above 0, since a flipped byte
// inside a section payload is indistinguishable from data on the
// checksum-less wire. Writes results/robust_serve.csv.
util::Table run_robust_serve(WikiScenario& scenario);

}  // namespace wf::eval
