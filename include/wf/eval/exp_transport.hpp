#pragma once

#include "eval/scenario.hpp"

namespace wf::eval {

// Experiment 5 (beyond the paper's figures): packet-level transport
// fidelity. For every TLS version x HTTP version, an attacker provisioned
// on clean (loss-free) packet-level traffic is evaluated against fresh
// captures replayed at growing loss rates — the accuracy-degradation sweep
// the record-level simulator cannot express. A record-level
// (transport-disabled) row anchors each TLS block. Writes
// results/exp5_transport.csv.
util::Table run_exp5_transport(WikiScenario& scenario, const AttackerFactory& make_attacker = {});

}  // namespace wf::eval
