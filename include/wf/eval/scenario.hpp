#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptive.hpp"
#include "core/attacker.hpp"
#include "data/splits.hpp"
#include "netsim/browser.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace wf::eval {

// Shared knobs of every experiment binary. Class counts default to the
// paper's divided by 10 (see README); set WF_SMOKE=1 for a seconds-scale
// smoke configuration.
struct ScenarioConfig {
  trace::SequenceOptions seq3;  // per-IP 3-sequence encoding (paper default)
  trace::SequenceOptions seq2;  // directional 2-sequence encoding
  netsim::BrowserConfig browser;
  // Packet-level transport knobs used by the transport experiment (exp5);
  // `enabled`, loss and HTTP version are set per arm by the harness.
  netsim::TransportConfig transport;
  core::EmbeddingConfig embedding3;
  core::EmbeddingConfig embedding2;
  int knn_k = 40;
  // Reference-set shards for the k-NN/open-world query paths; 0 resolves
  // via WF_SHARDS, else one shard per pool thread. Results are identical
  // for any shard count, so this is purely a throughput knob.
  std::size_t knn_shards = 0;
  int samples_per_class = 25;
  int train_samples_per_class = 20;

  std::vector<int> exp1_class_counts = {50, 100, 300, 600};
  int exp1_shift_classes = 50;

  int transfer_train_classes = 50;
  std::vector<int> transfer_new_class_counts = {50, 100, 300};

  int crosssite_classes = 50;
  int distinguish_classes = 50;
  int padding_classes = 40;
  int cost_classes = 40;

  int transport_classes = 25;
  std::vector<double> transport_loss_rates = {0.01, 0.03, 0.08};

  // Defense-frontier sweep (bench_defense_ablation): anonymity-set sizes
  // and record-padding parameters traded against bandwidth overhead.
  std::vector<int> frontier_set_sizes = {2, 4, 8, 12};
  std::vector<std::uint32_t> frontier_pad_multiples = {1024, 4096, 16384};
  std::vector<std::uint32_t> frontier_random_ranges = {128, 512, 2048};

  std::uint64_t site_seed = 4242;
  std::uint64_t crawl_seed = 990001;
  std::uint64_t split_seed = 5;

  static ScenarioConfig standard();
  static ScenarioConfig smoke();
};

// Caches the simulated sites/farms shared by the experiment binaries.
class WikiScenario {
 public:
  WikiScenario();  // standard(), or smoke() when WF_SMOKE is set
  explicit WikiScenario(ScenarioConfig config);

  const ScenarioConfig& config() const { return config_; }

  // Wikipedia-like site with n_pages pages (cached); `tls13` selects the
  // protocol-shifted twin with identical content.
  const netsim::Website& wiki_site(int n_pages, bool tls13 = false);
  // Independent wiki-like site (disjoint content) for transfer experiments.
  const netsim::Website& fresh_site(int n_pages, std::uint64_t salt, bool tls13 = false);
  const netsim::Website& github_site(int n_pages);

  const netsim::ServerFarm& wiki_farm() const { return wiki_farm_; }
  const netsim::ServerFarm& github_farm() const { return github_farm_; }

 private:
  ScenarioConfig config_;
  netsim::ServerFarm wiki_farm_;
  netsim::ServerFarm github_farm_;
  std::map<std::string, netsim::Website> cache_;
};

// Samples whose label falls in [lo, hi).
data::Dataset label_range(const data::Dataset& dataset, int lo, int hi);

// Ensure and return the CSV output directory: WF_RESULTS_DIR / the CLI
// --out override via util::Env, else "results".
std::string results_dir();

// Builds the attacker for one experiment arm. `embedding` is the arm's
// embedding configuration (3-seq or 2-seq encoding); baselines that train
// no embedding ignore it. Every run_exp* harness takes one of these, so an
// attacker-ablation sweep is a one-line factory swap.
using AttackerFactory = std::function<std::unique_ptr<core::Attacker>(
    const core::EmbeddingConfig& embedding, const ScenarioConfig& cfg)>;

// The paper's adaptive embedding attacker (the harness default).
AttackerFactory default_attacker_factory();
// By registry name: "adaptive", "forest", "kfp-knn". Throws
// std::invalid_argument on an unknown name.
AttackerFactory attacker_factory(const std::string& name);
std::vector<std::string> attacker_names();

}  // namespace wf::eval
