#pragma once

#include <cstdint>
#include <vector>

#include "netsim/browser.hpp"

namespace wf::trace {

// Fig.-4-style trace encoding: a capture becomes `n_sequences` fixed-length
// sequences of quantized record sizes.
//
//   2 sequences: outgoing | incoming                       (directional)
//   3 sequences: outgoing | incoming from the main host |
//                incoming from every other host            (per-IP; the
//                paper's key representational choice — TLS exposes IPs)
struct SequenceOptions {
  int n_sequences = 3;
  int timesteps = 64;          // first N records routed to each sequence
  std::uint32_t quantum = 512; // byte-count quantization (§IV-A1)
  // Packet reassembly for packet-level captures (TransportConfig.enabled):
  // runs of consecutive same-direction, same-server packets are merged into
  // one logical record before routing — the view of an observer that
  // reassembles TCP streams instead of counting wire packets. A no-op in
  // spirit for record-level captures (adjacent whole records can still
  // merge), so it defaults to off.
  bool coalesce_packets = false;
  // To the reassembling observer, wire units below this size are transport
  // chrome (pure ACKs, SYNs): dropped, and they do not break a run. Only
  // consulted when coalesce_packets is set.
  std::uint32_t coalesce_min_bytes = 64;

  std::size_t feature_dim() const {
    return static_cast<std::size_t>(n_sequences) * static_cast<std::size_t>(timesteps);
  }
};

// Encode a capture into a flat feature vector of length feature_dim().
// Record sizes are quantized to `quantum` bytes and log-compressed to keep
// features in a stable [0, 1] range.
std::vector<float> encode_capture(const netsim::PacketCapture& capture,
                                  const SequenceOptions& options);

}  // namespace wf::trace
