#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "netsim/browser.hpp"
#include "util/rng.hpp"

namespace wf::trace {

// Trace-level fixed-length padding (§VII): every record is inflated to the
// corpus-wide maximum record size and every trace is extended with dummy
// records until both directions reach the corpus-wide maximum count. After
// padding, all traces have identical per-direction sizes and counts — only
// ordering/interleaving information survives.
class FixedLengthDefense {
 public:
  FixedLengthDefense() = default;

  static FixedLengthDefense fit(const std::vector<netsim::PacketCapture>& corpus);

  netsim::PacketCapture apply(const netsim::PacketCapture& capture, util::Rng& rng) const;

  // Mean relative byte cost of applying the defense to this corpus.
  double bandwidth_overhead(const std::vector<netsim::PacketCapture>& corpus) const;

  std::uint32_t record_bytes() const { return record_bytes_; }
  std::size_t incoming_records() const { return incoming_records_; }
  std::size_t outgoing_records() const { return outgoing_records_; }

 private:
  std::uint32_t record_bytes_ = 0;      // every record padded to this
  std::size_t incoming_records_ = 0;    // per-trace record-count targets
  std::size_t outgoing_records_ = 0;
};

// Per-website anonymity sets (§VII proposal): classes are grouped into sets
// of `set_size` pages with similar volume, and fixed-length padding is
// applied within each set only. Buys protection proportional to the set
// size at a fraction of site-wide FL cost.
class AnonymitySetDefense {
 public:
  AnonymitySetDefense() = default;

  static AnonymitySetDefense fit(const std::vector<netsim::PacketCapture>& captures,
                                 const std::vector<int>& labels, int set_size);

  netsim::PacketCapture apply(const netsim::PacketCapture& capture, int label,
                              util::Rng& rng) const;

  double bandwidth_overhead(const std::vector<netsim::PacketCapture>& captures,
                            const std::vector<int>& labels) const;

  int set_of(int label) const;
  std::size_t n_sets() const { return defenses_.size(); }

 private:
  std::map<int, int> set_of_;               // label -> set index
  std::vector<FixedLengthDefense> defenses_;  // one per set
};

}  // namespace wf::trace
