#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/retry.hpp"
#include "serve/server.hpp"

namespace wf::serve {

struct BackendAddress {
  std::string host;
  std::uint16_t port = 0;
};

// Liveness of one shard backend, as the coordinator sees it. `up` backends
// take queries; a post-retry failure makes a backend `suspect`, a second
// consecutive one `down`. Down backends are skipped by the scatter (queries
// fail fast instead of re-paying the timeout) until the background
// reconnect thread revives them.
enum class BackendHealth { up, suspect, down };
const char* backend_health_name(BackendHealth health);

struct BackendStatus {
  BackendAddress address;
  BackendHealth health = BackendHealth::up;
};

struct CoordinatorConfig {
  // Startup handshake: keep retrying refused connections for up to this
  // long, so a coordinator started back to back with its backends does not
  // race their binds. Background reconnects always use single attempts.
  int connect_retry_ms = 0;
  int connect_timeout_ms = 10000;
  // Per-RPC deadline towards each backend; <= 0 disables.
  int timeout_ms = 30000;
  // Answer from the live slices when some backends are down, flagging the
  // reply degraded (DGRD) with its covered-reference count. Off by default:
  // a query then fails fast with ERRR(retryable, unavailable) instead.
  bool allow_partial = false;
  // Scatter-side schedule: per-backend retries of a failed SCAN RPC.
  RetryPolicy retry{};
  // Background reconnect pacing (max_attempts is ignored there — a down
  // backend is retried for as long as the coordinator lives).
  RetryPolicy reconnect{8, 50, 2000, 0.5, 0x9f5fULL};
};

// The gather half of scatter/gather serving: holds one Client per shard
// backend, fans every query batch out as SCAN frames in parallel, and folds
// the slice scans back together with core::merge_slice_scans — rankings are
// bit-identical to one unsharded daemon answering the same batch whenever
// every slice answered (and merge coverage is full even in --partial mode).
//
// The constructor performs a HELO handshake with every backend and rejects
// inconsistent deployments: all backends must serve the same model (same
// attacker kind, reference count, k and dense class-id table) and their
// slices must cover 0..n-1 exactly once for n backends.
class CoordinatorHandler final : public Handler {
 public:
  CoordinatorHandler(const std::vector<BackendAddress>& backends,
                     const CoordinatorConfig& config);
  explicit CoordinatorHandler(const std::vector<BackendAddress>& backends, int retry_ms = 0);
  ~CoordinatorHandler() override;

  ServerInfo info() const override;
  RankReply rank(const nn::Matrix& queries) override;
  // A coordinator is always a whole-store endpoint; it cannot be stacked as
  // somebody else's shard slice.
  core::SliceScan scan(const nn::Matrix& queries) override;

  // Current per-backend health, in slice order.
  std::vector<BackendStatus> status() const;

 private:
  struct Backend {
    BackendAddress address;
    std::unique_ptr<Client> client;
    BackendHealth health = BackendHealth::up;
    int strikes = 0;  // consecutive post-retry failures
  };

  void mark_success(std::size_t i);
  void mark_failure(std::size_t i);
  void reconnect_loop();
  // Health writes funnel through here (mutex_ held): counts every
  // up/suspect/down transition and refreshes the backends-down gauge.
  void set_health_locked(std::size_t i, BackendHealth health);

  CoordinatorConfig config_;
  ServerInfo info_;      // merged view: slice 0 of 1, whole reference set
  ServerInfo expected_;  // reference copy of backend 0's handshake info

  // health/strikes/client swaps are guarded by mutex_. A backend's Client
  // is used outside the lock, but only ever by one side: the scatter uses
  // backends that are not down, the reconnect thread only touches down
  // ones, and the transition happens under the lock.
  mutable std::mutex mutex_;
  std::vector<Backend> backends_;
  std::condition_variable reconnect_cv_;
  std::thread reconnect_thread_;
  bool stopping_ = false;

  // Cached obs::Registry::global() instruments (stable references).
  obs::Histogram* scatter_ms_;
  obs::Counter* degraded_total_;
  obs::Counter* transitions_total_;
  obs::Counter* reconnects_total_;
  obs::Gauge* backends_down_;
  std::vector<obs::Counter*> backend_transitions_;  // per slice, by index
};

}  // namespace wf::serve
