#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"

namespace wf::serve {

struct BackendAddress {
  std::string host;
  std::uint16_t port = 0;
};

// The gather half of scatter/gather serving: holds one Client per shard
// backend, fans every query batch out as SCAN frames in parallel, and folds
// the slice scans back together with core::merge_slice_scans — rankings are
// bit-identical to one unsharded daemon answering the same batch.
//
// The constructor performs a HELO handshake with every backend and rejects
// inconsistent deployments: all backends must serve the same model (same
// attacker kind, reference count, k and dense class-id table) and their
// slices must cover 0..n-1 exactly once for n backends.
class CoordinatorHandler final : public Handler {
 public:
  explicit CoordinatorHandler(const std::vector<BackendAddress>& backends, int retry_ms = 0);

  ServerInfo info() const override;
  Rankings rank(const nn::Matrix& queries) override;
  // A coordinator is always a whole-store endpoint; it cannot be stacked as
  // somebody else's shard slice.
  core::SliceScan scan(const nn::Matrix& queries) override;

 private:
  std::vector<std::unique_ptr<Client>> clients_;  // sorted by slice index
  ServerInfo info_;  // merged view: slice 0 of 1, whole reference set
};

}  // namespace wf::serve
