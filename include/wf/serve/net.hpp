#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace wf::serve {

// Thin RAII wrapper over one connected TCP socket. All I/O is blocking;
// failures surface as io::IoError so the frame layer above reports them
// the same way as any other truncated stream.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Writes all n bytes; throws io::IoError on a closed or failed socket.
  void send_all(const void* data, std::size_t n);

  // Reads exactly n bytes. Returns false on a clean EOF before the first
  // byte (the peer closed between frames); throws io::IoError on EOF
  // mid-read or a socket error.
  bool recv_exact(void* data, std::size_t n);

  // Wakes any thread blocked in recv_exact/send_all on this socket.
  void shutdown_both();
  void close();

 private:
  // Atomic so a shutdown_both() from the server's stop path can race the
  // connection thread's blocking reads without UB.
  std::atomic<int> fd_{-1};
};

// Connects to host:port; throws io::IoError on failure. `retry_ms` keeps
// retrying a refused connection for up to that long — lets scripts start a
// daemon and a client back to back without racing the bind.
Socket tcp_connect(const std::string& host, std::uint16_t port, int retry_ms = 0);

// Listening TCP socket; port 0 binds an ephemeral port (see port()).
class Listener {
 public:
  Listener(const std::string& host, std::uint16_t port);
  ~Listener() { close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  std::uint16_t port() const { return port_; }

  // Blocks for the next connection; returns an invalid Socket once the
  // listener has been closed.
  Socket accept();
  void close();

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace wf::serve
