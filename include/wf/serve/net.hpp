#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "io/binary.hpp"
#include "serve/retry.hpp"

namespace wf::serve {

// A blocking call that exceeded its Deadline. Subclasses io::IoError so
// existing transport-failure handling keeps working, while retry loops can
// classify timeouts specifically (a hung peer is retryable; a malformed
// frame is not).
class TimeoutError : public io::IoError {
 public:
  explicit TimeoutError(const std::string& what) : io::IoError(what) {}
};

// An absolute point in time a blocking socket call must not outlive. The
// default-constructed Deadline never expires (the pre-PR blocking
// behaviour); after_ms(t) expires t milliseconds from now, and t <= 0 also
// means "never" so a config value of 0 disables the timeout end to end.
// Deadlines are absolute, so one Deadline threaded through a multi-step
// operation (send + recv + parse) bounds the whole operation, not each step.
class Deadline {
 public:
  Deadline() = default;  // never expires

  static Deadline after_ms(long ms) {
    Deadline d;
    if (ms > 0) {
      d.finite_ = true;
      d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    }
    return d;
  }

  // Whichever of the two expires first.
  static Deadline sooner(const Deadline& a, const Deadline& b) {
    if (!a.finite_) return b;
    if (!b.finite_) return a;
    return a.at_ < b.at_ ? a : b;
  }

  bool finite() const { return finite_; }

  bool expired() const {
    return finite_ && std::chrono::steady_clock::now() >= at_;
  }

  // Remaining time as a poll(2) timeout: -1 when infinite, else clamped to
  // [0, INT_MAX] milliseconds.
  int poll_timeout_ms() const;

 private:
  std::chrono::steady_clock::time_point at_{};
  bool finite_ = false;
};

// Thin RAII wrapper over one connected TCP socket. Sockets are non-blocking
// underneath; every I/O call waits in poll(2) up to its Deadline, so a hung
// peer surfaces as a TimeoutError instead of a wedged thread. Failures
// surface as io::IoError so the frame layer above reports them the same way
// as any other truncated stream.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Writes all n bytes; throws io::IoError on a closed or failed socket and
  // TimeoutError when the peer stops draining before the deadline.
  void send_all(const void* data, std::size_t n, const Deadline& deadline = {});

  // Reads exactly n bytes. Returns false on a clean EOF before the first
  // byte (the peer closed between frames); throws io::IoError on EOF
  // mid-read or a socket error, TimeoutError past the deadline.
  bool recv_exact(void* data, std::size_t n, const Deadline& deadline = {});

  // Reads up to max bytes as soon as any arrive; 0 means EOF. Used by the
  // fault proxy, which forwards streams without understanding frames.
  std::size_t recv_some(void* data, std::size_t max, const Deadline& deadline = {});

  // Wakes any thread blocked in recv_exact/send_all on this socket.
  void shutdown_both();
  // Half-closes: wakes readers but lets in-flight replies finish sending
  // (the server's graceful drain), or propagates EOF downstream (the proxy).
  void shutdown_read();
  void shutdown_write();
  void close();

 private:
  // Atomic so a shutdown_both() from the server's stop path can race the
  // connection thread's blocking reads without UB.
  std::atomic<int> fd_{-1};
};

// How tcp_connect paces itself. `retry_ms` keeps retrying transient
// connection failures (refused, reset, timed out) for up to that long — it
// bounds the loop by wall clock while `backoff` paces the attempts
// exponentially with seeded jitter instead of the old fixed 50 ms spin.
// `connect_timeout_ms` bounds each individual connect attempt, so a
// black-holed address cannot wedge the caller.
struct ConnectOptions {
  int retry_ms = 0;
  int connect_timeout_ms = 10000;
  RetryPolicy backoff{};
};

// Connects to host:port; throws io::IoError (naming the attempt count) on
// failure. The two-argument form performs exactly one bounded attempt.
Socket tcp_connect(const std::string& host, std::uint16_t port, const ConnectOptions& options);
Socket tcp_connect(const std::string& host, std::uint16_t port, int retry_ms = 0);

// Listening TCP socket; port 0 binds an ephemeral port (see port()).
class Listener {
 public:
  Listener(const std::string& host, std::uint16_t port);
  ~Listener() { close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  std::uint16_t port() const { return port_; }

  // Blocks for the next connection up to `deadline` (TimeoutError past it);
  // returns an invalid Socket once the listener has been closed.
  Socket accept(const Deadline& deadline = {});
  void close();

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace wf::serve
