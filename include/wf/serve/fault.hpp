#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/coordinator.hpp"
#include "serve/net.hpp"
#include "util/rng.hpp"

namespace wf::serve {

// What the proxy does to a forwarded chunk it selects for a fault.
enum class FaultKind {
  none,       // forward everything untouched (the control arm)
  drop,       // swallow the chunk: the stream desyncs or truncates
  delay,      // forward after delay_ms: latency spike, no corruption
  truncate,   // forward half the chunk, then cut both directions
  corrupt,    // flip bytes, then forward: framed garbage
  blackhole,  // forward nothing ever again on this direction: a hang
};
const char* fault_kind_name(FaultKind kind);
// Parses the names above; throws std::invalid_argument on anything else.
FaultKind parse_fault_kind(const std::string& name);

// A seeded fault schedule: each forwarded chunk triggers `kind` with
// probability `rate`, decided by util::Rng streams forked per connection
// and direction — the same (plan, connection order) replays the same
// faults, which is what makes chaos runs debuggable.
struct FaultPlan {
  FaultKind kind = FaultKind::none;
  double rate = 0.0;
  int delay_ms = 100;
  std::uint64_t seed = 1;
};

struct FaultProxyStats {
  std::uint64_t connections = 0;
  std::uint64_t chunks = 0;  // chunks read off either side
  std::uint64_t faults = 0;  // chunks a fault was applied to
};

// A TCP proxy that sits between a serve client and its server and injects
// faults per a seeded schedule. It forwards opaque byte chunks — it does
// not understand frames — so its faults land at arbitrary byte positions,
// exactly like a misbehaving network.
class FaultProxy {
 public:
  // Listens on host:listen_port (0: ephemeral); each accepted connection
  // dials `upstream` and pumps bytes both ways until either side closes.
  FaultProxy(const std::string& host, std::uint16_t listen_port,
             const BackendAddress& upstream, const FaultPlan& plan);
  ~FaultProxy();
  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  // Blocks until stop() is called (the `wf proxy` CLI foreground mode).
  void wait();
  // Idempotent: closes the listener and every proxied connection, joins all
  // pump threads.
  void stop();

  FaultProxyStats stats() const;

 private:
  struct Connection {
    Socket client;
    Socket upstream;
  };

  void accept_loop();
  void pump(Connection& connection, bool downstream, util::Rng rng);

  BackendAddress upstream_;
  FaultPlan plan_;
  Listener listener_;
  std::thread accept_thread_;

  std::mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<std::thread> pump_threads_;
  std::condition_variable stopped_cv_;
  bool stopped_ = false;

  std::atomic<std::uint64_t> n_connections_{0};
  std::atomic<std::uint64_t> n_chunks_{0};
  std::atomic<std::uint64_t> n_faults_{0};
};

}  // namespace wf::serve
