#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/attacker.hpp"
#include "serve/frame.hpp"
#include "serve/net.hpp"
#include "serve/queue.hpp"

namespace wf::core {
class AdaptiveFingerprinter;
}

namespace wf::serve {

// A rank answer plus its coverage marker. meta.degraded is only ever true
// for a coordinator answering from a subset of its backends in --partial
// mode; full-coverage replies omit the marker on the wire entirely.
struct RankReply {
  Rankings rankings;
  ReplyMeta meta;
};

// What a Server serves. One implementation answers from a loaded model
// (LocalHandler), the other scatters to remote shard backends and gathers
// (CoordinatorHandler in coordinator.hpp). rank/scan are called from the
// single worker thread only, so implementations need no locking of their
// own.
class Handler {
 public:
  virtual ~Handler() = default;
  virtual ServerInfo info() const = 0;
  // Full rankings for every row of `queries` (batch-composition
  // independent: the same query in any batch yields bit-identical output).
  virtual RankReply rank(const nn::Matrix& queries) = 0;
  // Scatter half for coordinator backends; throws std::runtime_error when
  // the handler cannot slice-scan (baseline attackers, coordinators).
  virtual core::SliceScan scan(const nn::Matrix& queries) = 0;
};

// Serves one loaded core::Attacker. For SCAN frames the attacker must be
// the adaptive fingerprinter (the only one with a sharded reference set);
// slice_index/slice_count select which shard slice this node scans.
class LocalHandler final : public Handler {
 public:
  explicit LocalHandler(std::unique_ptr<core::Attacker> attacker, std::size_t slice_index = 0,
                        std::size_t slice_count = 1);

  ServerInfo info() const override;
  RankReply rank(const nn::Matrix& queries) override;
  core::SliceScan scan(const nn::Matrix& queries) override;

 private:
  std::unique_ptr<core::Attacker> attacker_;
  const core::AdaptiveFingerprinter* adaptive_ = nullptr;  // null for baselines
  std::size_t slice_index_;
  std::size_t slice_count_;
};

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;            // 0: ephemeral, read back via Server::port()
  std::size_t queue_capacity = 64;   // pending requests before backpressure
  std::size_t max_batch = 1024;      // max queries per model call when coalescing
  // Bound on one request: finish receiving a started frame, compute and
  // send the reply. A breach answers ERRR(retryable, timeout). <= 0: never.
  int request_timeout_ms = 30000;
  // How long a connection may sit idle between frames before the server
  // closes it quietly (no unsolicited frame — that would desync the
  // strictly request/reply stream). <= 0: keep idle connections forever.
  int idle_timeout_ms = 0;
  // > 0: a background thread logs one requests/queries/queue-depth line
  // every interval (the CLI's --stats-interval-ms). <= 0: no periodic line.
  int stats_interval_ms = 0;
};

struct ServerStats {
  std::uint64_t requests = 0;   // QRYB/SCAN frames accepted into the queue
  std::uint64_t queries = 0;    // total query rows answered
  std::uint64_t batches = 0;    // model calls (coalescing makes this <= requests)
  std::uint64_t rejected = 0;   // backpressure rejections (queue full)
  std::uint64_t timeouts = 0;   // requests answered ERRR(timeout)
};

// The resident daemon: an accept loop, one thread per connection parsing
// frames, a bounded ring queue, and a single worker thread that drains the
// queue in waves and answers through per-request promises. STOP frames (or
// stop()) shut the whole thing down cleanly.
class Server {
 public:
  Server(std::shared_ptr<Handler> handler, ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds and spawns the accept + worker threads; throws io::IoError when
  // the port cannot be bound.
  void start();
  std::uint16_t port() const;

  // Blocks until a STOP frame arrives or stop() is called elsewhere.
  void wait();
  // Idempotent: closes the listener, drains the queue, joins every thread.
  void stop();

  ServerStats stats() const;

 private:
  struct Request {
    nn::Matrix queries;
    bool scan = false;
    std::promise<std::string> reply;  // encoded reply frame bytes
  };

  void accept_loop();
  void serve_connection(std::size_t slot);
  void worker_loop();
  void process_wave(std::vector<Request> wave);
  void request_stop();
  void stats_loop();
  // Encodes an ERRR reply AND counts it (serve.errors_total + per-class),
  // so every error path — connection parse, queue, worker — is metered.
  std::string error_frame(bool retryable, const std::string& message,
                          ErrorClass klass = ErrorClass::unknown);
  // The serve.handle_ms.<kind> histogram for a request kind; null for
  // kinds without one (STOP, unknown).
  obs::Histogram* handle_histogram(const std::string& kind) const;

  std::shared_ptr<Handler> handler_;
  ServerConfig config_;
  std::unique_ptr<Listener> listener_;
  RingQueue<Request> queue_;
  std::thread accept_thread_;
  std::thread worker_thread_;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Socket>> connections_;
  std::vector<std::thread> connection_threads_;

  std::mutex stop_mutex_;
  std::condition_variable stop_requested_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;

  std::thread stats_thread_;

  // Cached obs::Registry::global() instruments (references are stable for
  // the registry's lifetime), so the hot paths never lock the registry map.
  obs::Counter* requests_total_;
  obs::Counter* queries_total_;
  obs::Counter* batches_total_;
  obs::Counter* rejected_total_;
  obs::Counter* timeouts_total_;
  obs::Counter* errors_total_;
  obs::Counter* errors_by_class_[6];
  obs::Gauge* queue_depth_;
  obs::Histogram* wave_batch_;
  obs::Histogram* handle_helo_;
  obs::Histogram* handle_qryb_;
  obs::Histogram* handle_scan_;
  obs::Histogram* handle_stat_;
};

}  // namespace wf::serve
