#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "serve/frame.hpp"
#include "serve/net.hpp"
#include "serve/retry.hpp"

namespace wf::serve {

// An ERRR reply surfaced as an exception. retryable() mirrors the frame's
// flag: true means transient (backpressure, timeout, backends down) —
// resend the same request after a pause; false means the request itself is
// bad and retrying cannot help. klass() says which failure it was.
class ServeError : public std::runtime_error {
 public:
  ServeError(bool retryable, const std::string& message,
             ErrorClass klass = ErrorClass::unknown)
      : std::runtime_error(message), retryable_(retryable), klass_(klass) {}
  bool retryable() const { return retryable_; }
  ErrorClass klass() const { return klass_; }

 private:
  bool retryable_;
  ErrorClass klass_;
};

// How a Client connects, waits and retries.
struct ClientConfig {
  // Keeps retrying a refused initial connection for up to this long, so a
  // client started back to back with the daemon does not race the bind.
  // Reconnects after a broken RPC always use a single bounded attempt.
  int connect_retry_ms = 0;
  // Bound on each individual connect attempt.
  int connect_timeout_ms = 10000;
  // Per-RPC deadline (send + recv of one roundtrip); <= 0 disables.
  int timeout_ms = 30000;
  // Schedule for query_until_accepted's bounded resend loop.
  RetryPolicy retry{};
};

// One blocking connection to a wf serve daemon: each call sends one request
// frame and decodes its single reply. Transport failures and malformed
// replies raise io::IoError (TimeoutError past the RPC deadline); ERRR
// replies raise ServeError. After a transport failure the connection is
// dropped; the next call reconnects transparently.
class Client {
 public:
  Client(const std::string& host, std::uint16_t port, const ClientConfig& config);
  Client(const std::string& host, std::uint16_t port, int retry_ms = 0);

  ServerInfo hello();
  // `meta`, when non-null, receives the reply's degradation marker (only
  // ever degraded for coordinator replies in --partial mode).
  Rankings query(const nn::Matrix& features, ReplyMeta* meta = nullptr);
  core::SliceScan scan(const nn::Matrix& features);
  // As query(), but re-sends after retryable failures (backpressure ERRRs,
  // timeouts, broken connections) on the config's bounded backoff schedule;
  // rethrows the last failure once attempts are exhausted.
  Rankings query_until_accepted(const nn::Matrix& features, ReplyMeta* meta = nullptr);
  // Live metrics snapshot (STAT -> METR). `spans`, when non-null, receives
  // the server's recent span records (empty unless it runs with WF_OBS).
  obs::Snapshot stats(std::vector<obs::SpanRecord>* spans = nullptr);
  // Asks the daemon to shut down (it answers BYEE first).
  void stop_server();

 private:
  void ensure_connected();
  ParsedFrame roundtrip(const std::string& frame_bytes, const std::string& expected_kind);

  std::string host_;
  std::uint16_t port_;
  ClientConfig config_;
  Socket socket_;
};

}  // namespace wf::serve
