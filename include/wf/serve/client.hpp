#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "serve/frame.hpp"
#include "serve/net.hpp"

namespace wf::serve {

// An ERRR reply surfaced as an exception. retryable() mirrors the frame's
// flag: true means transient backpressure (the daemon's queue was full) —
// resend the same request after a pause; false means the request itself is
// bad and retrying cannot help.
class ServeError : public std::runtime_error {
 public:
  ServeError(bool retryable, const std::string& message)
      : std::runtime_error(message), retryable_(retryable) {}
  bool retryable() const { return retryable_; }

 private:
  bool retryable_;
};

// One blocking connection to a wf serve daemon: each call sends one request
// frame and decodes its single reply. Transport failures and malformed
// replies raise io::IoError; ERRR replies raise ServeError.
class Client {
 public:
  // `retry_ms` keeps retrying a refused connection for up to that long, so
  // a client started back to back with the daemon does not race the bind.
  Client(const std::string& host, std::uint16_t port, int retry_ms = 0);

  ServerInfo hello();
  Rankings query(const nn::Matrix& features);
  core::SliceScan scan(const nn::Matrix& features);
  // As query(), but re-sends after a backpressure ERRR until accepted.
  Rankings query_until_accepted(const nn::Matrix& features);
  // Asks the daemon to shut down (it answers BYEE first).
  void stop_server();

 private:
  ParsedFrame roundtrip(const std::string& frame_bytes, const std::string& expected_kind);

  Socket socket_;
};

}  // namespace wf::serve
