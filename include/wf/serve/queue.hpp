#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace wf::serve {

// Bounded MPSC ring buffer between the connection threads and the model
// worker (tor's mqueue idiom): a fixed circular slot array under one mutex.
// Producers never block on the model — a full ring fails the push
// immediately, which the server turns into a retryable backpressure error.
// The single consumer drains every queued item in one wave, so requests
// arriving while a batch is in flight coalesce into the next
// fingerprint_batch call instead of paying one model dispatch each.
//
// Happens-before contract (verified under ThreadSanitizer by
// test_ring_chaos):
//
//   * Every state transition — offer, pop_wave, close — happens under the
//     one mutex, so for any two operations one strictly happens-before the
//     other; there are no lock-free fast paths to reason about.
//   * An accepted offer() happens-before the pop_wave() that returns the
//     item: the producer's writes to T (made before offering) are visible
//     to the consumer. Items are delivered exactly once, in ring order.
//   * close() happens-before every subsequent offer() observing `closed`
//     and before the empty pop_wave() that tells the consumer to exit.
//     Items accepted before the close stay poppable — close() never loses
//     an accepted item, so a producer seeing `accepted` may rely on its
//     request being answered even when the close races the offer.
//   * The condition variable is only an optimization over this ordering: a
//     consumer woken spuriously re-reads count_/closed_ under the mutex, so
//     missed-wakeup bugs cannot reorder the contract, only delay it.
template <typename T>
class RingQueue {
 public:
  explicit RingQueue(std::size_t capacity) : slots_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity() const { return slots_.size(); }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

  // Why a push was refused: `full` is transient backpressure (resend after
  // a pause), `closed` means the server is draining (resend elsewhere).
  enum class PushOutcome { accepted, full, closed };

  PushOutcome offer(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushOutcome::closed;
      if (count_ == slots_.size()) return PushOutcome::full;
      slots_[(head_ + count_) % slots_.size()] = std::move(item);
      ++count_;
    }
    ready_.notify_one();
    return PushOutcome::accepted;
  }

  // False when the ring is full or the queue was closed.
  bool push(T item) { return offer(std::move(item)) == PushOutcome::accepted; }

  // Blocks until at least one item is queued (or the queue is closed), then
  // pops up to max_items in arrival order. An empty result means closed AND
  // drained — the consumer's signal to exit.
  std::vector<T> pop_wave(std::size_t max_items) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return count_ > 0 || closed_; });
    WF_DCHECK(count_ <= slots_.size(), "RingQueue: count exceeds capacity");
    std::vector<T> wave;
    const std::size_t n = std::min(count_, max_items == 0 ? count_ : max_items);
    wave.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      wave.push_back(std::move(slots_[head_]));
      head_ = (head_ + 1) % slots_.size();
      --count_;
    }
    return wave;
  }

  // Fails future pushes and wakes the consumer; queued items stay poppable.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace wf::serve
