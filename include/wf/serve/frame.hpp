#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/knn.hpp"
#include "io/serialize.hpp"
#include "nn/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/net.hpp"

namespace wf::serve {

// The serve wire protocol: length-prefixed frames whose payload is a
// standard wf::io file (magic + format version + 4-char kind + tagged
// sections) — the exact on-disk model format, reused on the socket.
//
//   frame   := u64 payload_bytes (little-endian) | payload
//   payload := "WFIO" | u32 version | kind | Section...
//
// Request kinds:  HELO (no body), QRYB {FEAT}, SCAN {FEAT}, STAT (no body),
//                 STOP (no body)
// Reply kinds:    SNFO {INFO}, RNKB {RANK [DGRD]}, SLCE {PART}, BYEE
//                 (no body), ERRR {EMSG}, METR {SNAP [SPNS]}
//
// Every request gets exactly one reply. Malformed, truncated or oversized
// frames raise io::IoError — never a crash; a server answers them with an
// ERRR frame where the stream still permits one.
//
// Wire evolution: new fields ride either as trailing bytes inside an
// existing section (EMSG error class, PART rows-scanned) or as an optional
// trailing section (RNKB's DGRD degradation marker, present only on
// degraded replies). Readers treat absent extensions as their defaults, so
// a v1 peer's frames still parse — and a full-coverage RNKB reply is
// byte-identical to v1, so pre-extension clients keep parsing every
// non-degraded reply.
inline constexpr std::uint32_t kServeWireVersion = 2;

inline constexpr char kFrameHello[] = "HELO";
inline constexpr char kFrameQuery[] = "QRYB";
inline constexpr char kFrameScan[] = "SCAN";
inline constexpr char kFrameStat[] = "STAT";
inline constexpr char kFrameStop[] = "STOP";
inline constexpr char kFrameMetrics[] = "METR";
inline constexpr char kFrameInfo[] = "SNFO";
inline constexpr char kFrameRankings[] = "RNKB";
inline constexpr char kFrameSlice[] = "SLCE";
inline constexpr char kFrameBye[] = "BYEE";
inline constexpr char kFrameError[] = "ERRR";

// Hard cap on one frame's payload: query batches and full rankings are
// bounded, and a corrupt length field must fail before any allocation.
inline constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 30;  // 1 GiB

using Rankings = std::vector<std::vector<core::RankedLabel>>;

// What a server reports about itself in a SNFO reply. `classes` are the
// sorted page labels the model targets (any attacker); `id_to_label` is the
// dense class-id table and is only non-empty for attackers that support
// slice scans — it is what the coordinator's merge needs.
struct ServerInfo {
  std::string attacker;
  std::uint64_t n_references = 0;  // total rows of the full reference set
  std::uint64_t slice_index = 0;   // which shard slice this node scans
  std::uint64_t slice_count = 1;
  std::int32_t knn_k = 0;          // 0 when the attacker has no k-NN stage
  std::vector<int> classes;
  std::vector<int> id_to_label;
};

// How a request failed, beyond retryable/not: retry loops branch on
// `retryable`, operators and experiment CSVs read the class.
enum class ErrorClass : std::uint8_t {
  unknown = 0,      // pre-extension peers, or unclassified server faults
  protocol = 1,     // malformed/unsupported frame: retrying cannot help
  backpressure = 2, // queue full: resend after a pause
  timeout = 3,      // a deadline expired mid-request
  unavailable = 4,  // backends down / results unobtainable right now
  shutdown = 5,     // request arrived while the server was draining
};
const char* error_class_name(ErrorClass klass);

struct ErrorReply {
  bool retryable = false;  // true: transient, resend later (possibly elsewhere)
  std::string message;
  ErrorClass klass = ErrorClass::unknown;
};

// Degradation marker of a RNKB reply: appended as a DGRD section only when
// the coordinator answered from a strict subset of the reference set (the
// --partial mode), so full-coverage replies stay byte-identical to wire v1.
struct ReplyMeta {
  bool degraded = false;
  std::uint64_t covered_references = 0;  // reference rows the answer scanned
  std::uint64_t total_references = 0;    // rows a full answer would scan
};

// A received frame, parsed down to its kind with the Reader positioned at
// the first section.
struct ParsedFrame {
  std::string kind;
  std::unique_ptr<std::istringstream> stream;
  std::unique_ptr<io::Reader> reader;
};

// Encode one frame (length prefix included): `body` writes the payload's
// sections. Pass {} for body-less kinds (HELO/STOP/BYEE).
std::string encode_frame(const std::string& kind,
                         const std::function<void(io::Writer&)>& body = {});

// Validate the length-prefix-stripped payload bytes of one frame: checks
// magic and version and reads the kind. Throws io::IoError on garbage.
ParsedFrame parse_frame(std::string payload);

// Socket transport. recv_frame returns nullopt on a clean peer close at a
// frame boundary; throws io::IoError on truncation or an oversized length,
// TimeoutError past the deadline.
void send_frame(Socket& socket, const std::string& frame_bytes, const Deadline& deadline = {});
std::optional<ParsedFrame> recv_frame(Socket& socket, const Deadline& deadline = {});

// Phase-split receive, for servers that bound the idle wait (for a frame to
// begin) and the mid-frame wait (for a started frame to finish) separately:
// an idle timeout closes the connection quietly, a mid-frame one is
// answered with ERRR(timeout). recv_frame_length returns nullopt on a clean
// close, the validated payload length otherwise.
std::optional<std::uint64_t> recv_frame_length(Socket& socket, const Deadline& deadline = {});
ParsedFrame recv_frame_payload(Socket& socket, std::uint64_t length,
                               const Deadline& deadline = {});

// Section codecs (each writes/parses exactly one tagged section).
void write_features(io::Writer& out, const nn::Matrix& features);
nn::Matrix read_features(io::Reader& in);

void write_rankings(io::Writer& out, const Rankings& rankings);
Rankings read_rankings(io::Reader& in);

void write_slice_scan(io::Writer& out, const core::SliceScan& scan);
core::SliceScan read_slice_scan(io::Reader& in);

void write_info(io::Writer& out, const ServerInfo& info);
ServerInfo read_info(io::Reader& in);

void write_error(io::Writer& out, const ErrorReply& error);
ErrorReply read_error(io::Reader& in);

void write_reply_meta(io::Writer& out, const ReplyMeta& meta);
// Reads the trailing DGRD section if the payload carries one (after the
// main section was consumed); otherwise returns a non-degraded default.
ReplyMeta read_trailing_meta(ParsedFrame& frame);

// METR reply body: a full metrics snapshot (SNAP section, entries in the
// registry's sorted order), optionally followed by a SPNS section carrying
// recent span records — written only when spans exist, so span-free
// snapshots stay byte-identical for peers that predate tracing.
void write_snapshot(io::Writer& out, const obs::Snapshot& snapshot);
obs::Snapshot read_snapshot(io::Reader& in);

void write_spans(io::Writer& out, const std::vector<obs::SpanRecord>& spans);
// Reads the trailing SPNS section if present; empty vector otherwise.
std::vector<obs::SpanRecord> read_trailing_spans(ParsedFrame& frame);

}  // namespace wf::serve
