#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace wf::serve {

// Bounded retry with exponential backoff and deterministic seeded jitter —
// the single policy object shared by every retry loop in the serving layer
// (client resends after backpressure, coordinator scatter retries,
// tcp_connect's refused-connection loop, background backend reconnects).
// Jitter flows through util::Rng, so two processes given the same seed and
// stream retry on identical schedules and a fleet given distinct streams
// never thunders in lockstep.
struct RetryPolicy {
  int max_attempts = 8;        // total tries before giving up (>= 1)
  int initial_backoff_ms = 2;  // delay after the first failure
  int max_backoff_ms = 250;    // exponential growth cap
  double jitter = 0.5;         // delay drawn from [d*(1-j), d*(1+j)]
  std::uint64_t seed = 0x9f5eULL;

  // Backoff before retry number `failures` (1-based count of failed tries):
  // min(max, initial * 2^(failures-1)), jittered. Pure given the rng state.
  int delay_ms(int failures, util::Rng& rng) const {
    const int base = std::max(initial_backoff_ms, 1);
    int delay = base;
    for (int i = 1; i < failures && delay < max_backoff_ms; ++i) delay *= 2;
    delay = std::min(delay, std::max(max_backoff_ms, base));
    const double j = std::clamp(jitter, 0.0, 1.0);
    const double scaled = delay * rng.uniform(1.0 - j, 1.0 + j);
    return std::max(1, static_cast<int>(scaled));
  }
};

// Per-call-site retry state. Usage:
//
//   Backoff backoff(policy, stream);
//   while (true) {
//     try { return op(); }
//     catch (const Retryable& e) { if (!backoff.retry()) throw; }
//   }
//
// retry() counts the failure; while attempts remain it sleeps the jittered
// exponential delay and returns true, otherwise it returns false without
// sleeping (the caller rethrows). next_delay_ms() exposes the raw schedule
// for loops that bound themselves by wall clock instead of attempt count
// (tcp_connect's retry window).
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy, std::uint64_t stream = 0)
      : policy_(policy), rng_(util::Rng(policy.seed).fork(stream)) {}

  int failures() const { return failures_; }

  // Records a failure and returns the next delay without sleeping or
  // gating on max_attempts.
  int next_delay_ms() {
    // Every backoff step in the process, whatever the call site (client
    // resends, scatter retries, reconnects), lands in one counter.
    static obs::Counter& backoffs_total = obs::Registry::global().counter("retry.backoffs_total");
    backoffs_total.inc();
    return policy_.delay_ms(++failures_, rng_);
  }

  bool retry() {
    const int delay = next_delay_ms();
    if (failures_ >= std::max(policy_.max_attempts, 1)) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    return true;
  }

 private:
  RetryPolicy policy_;
  util::Rng rng_;
  int failures_ = 0;
};

}  // namespace wf::serve
