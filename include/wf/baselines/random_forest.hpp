#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/knn.hpp"
#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace wf::io {
class Writer;
class Reader;
}  // namespace wf::io

namespace wf::baselines {

struct ForestConfig {
  int n_trees = 60;
  int max_depth = 12;
  int min_samples_leaf = 2;
  int n_feature_candidates = 0;  // 0 => sqrt(feature_dim)
  std::uint64_t seed = 7;
};

// Plain bootstrap-aggregated CART forest over summary features: the
// train-heavy baseline of Table III (every target-set change forces a
// refit, unlike the embedding system's reference swap).
class RandomForest {
 public:
  explicit RandomForest(const ForestConfig& config) : config_(config) {}

  void fit(const data::Dataset& dataset);

  // Classes ranked by tree votes (best first).
  std::vector<core::RankedLabel> rank(std::span<const float> features) const;
  int predict(std::span<const float> features) const;

  std::size_t n_trees() const { return trees_.size(); }

  const ForestConfig& config() const { return config_; }

  // Serialize/restore the fitted trees (wf::io section payloads; the
  // config travels separately with the owning attacker).
  void save_trees(io::Writer& out) const;
  void load_trees(io::Reader& in);
  // Largest feature index referenced by any node; -1 for leaf-only trees.
  int max_feature_index() const;

 private:
  struct Node {
    int feature = -1;       // -1 => leaf
    float threshold = 0.0f;
    int left = -1, right = -1;
    int label = -1;         // leaf majority class
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  int grow(Tree& tree, const data::Dataset& dataset, std::vector<std::size_t>& indices,
           std::size_t begin, std::size_t end, int depth, util::Rng& rng);

  ForestConfig config_;
  std::vector<Tree> trees_;
};

}  // namespace wf::baselines
