#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "baselines/random_forest.hpp"
#include "core/attacker.hpp"
#include "core/knn.hpp"
#include "core/sharded_reference_set.hpp"
#include "data/dataset.hpp"

namespace wf::baselines {

// Table-III forest baseline behind the Attacker interface. The forest
// cannot separate its model from its target set, so re-targeting and
// per-class adaptation are full refits over a retained training corpus —
// exactly the cost structure the paper contrasts with reference swapping.
class ForestAttacker final : public core::Attacker {
 public:
  explicit ForestAttacker(const ForestConfig& config = {})
      : config_(config), forest_(config) {}

  std::string name() const override { return "forest"; }
  core::TrainStats train(const data::Dataset& train) override;
  void set_references(const data::Dataset& references) override;
  std::vector<std::vector<core::RankedLabel>> fingerprint_batch(
      const data::Dataset& traces) const override;
  // Scalar path: one tree descent per trace, no pool dispatch.
  std::vector<core::RankedLabel> fingerprint(std::span<const float> features) const override {
    return forest_.rank(features);
  }
  void adapt(int label, const data::Dataset& fresh) override;
  std::vector<int> target_classes() const override { return train_.classes(); }
  std::unique_ptr<core::Attacker> clone() const override {
    return std::make_unique<ForestAttacker>(*this);
  }
  void save_body(io::Writer& out) const override;
  void load_body(io::Reader& in) override;

  const RandomForest& forest() const { return forest_; }

 private:
  ForestConfig config_;
  RandomForest forest_;
  data::Dataset train_;  // retained: every refit needs the full corpus
};

// k-FP-style feature baseline: k-NN voting directly in the hand-crafted
// summary-feature space (no learned embedding; we rank in raw feature
// space rather than forest-leaf space). Like the adaptive attacker its
// target-set updates are pure reference swaps, but with no metric learned
// over the features.
class FeatureKnnAttacker final : public core::Attacker {
 public:
  // n_shards as in AdaptiveFingerprinter: 0 resolves via
  // ShardedReferenceSet::default_shard_count().
  explicit FeatureKnnAttacker(int k = 40, std::size_t n_shards = 1)
      : n_shards_(n_shards == 0 ? core::ShardedReferenceSet::default_shard_count() : n_shards),
        knn_(k) {}

  std::string name() const override { return "kfp-knn"; }
  core::TrainStats train(const data::Dataset& train) override;
  void set_references(const data::Dataset& references) override;
  std::vector<std::vector<core::RankedLabel>> fingerprint_batch(
      const data::Dataset& traces) const override;
  std::vector<core::RankedLabel> fingerprint(std::span<const float> features) const override {
    return knn_.rank(references_, features);
  }
  void adapt(int label, const data::Dataset& fresh) override;
  std::vector<int> target_classes() const override { return references_.classes(); }
  std::unique_ptr<core::Attacker> clone() const override {
    return std::make_unique<FeatureKnnAttacker>(*this);
  }
  void save_body(io::Writer& out) const override;
  void load_body(io::Reader& in) override;

  const core::ShardedReferenceSet& references() const { return references_; }

 private:
  std::size_t n_shards_;
  core::ShardedReferenceSet references_;
  core::KnnClassifier knn_;
};

// The canonical attacker-name table. io::load_attacker dispatches through
// make_attacker_by_name and eval::attacker_names() reports
// attacker_type_names(), so a new attacker registered here is immediately
// loadable from disk; only the config-aware eval::attacker_factory needs a
// matching branch.
std::vector<std::string> attacker_type_names();
// Default-constructed instance ready for load_body; throws
// std::invalid_argument on an unknown name.
std::unique_ptr<core::Attacker> make_attacker_by_name(const std::string& name);

}  // namespace wf::baselines
