#pragma once

#include <cstddef>
#include <vector>

#include "core/knn.hpp"
#include "util/rng.hpp"

namespace wf::baselines {

// User-journey decoder (§V-A, Miller et al. style): a hidden Markov model
// whose states are pages and whose transitions follow the site's link
// graph. The per-page classifier's ranked outputs are the emissions; the
// Viterbi path decodes the whole browsing session jointly.
class JourneyHmm {
 public:
  explicit JourneyHmm(const std::vector<std::vector<int>>& links, double self_loop = 0.05,
                      double teleport = 0.02);

  // Simulate a victim journey: `length` page ids starting at `start`,
  // walking uniformly over out-links.
  std::vector<int> random_walk(int start, std::size_t length, util::Rng& rng) const;

  // Jointly decode a journey from per-step classifier rankings.
  std::vector<int> viterbi(const std::vector<std::vector<core::RankedLabel>>& emissions) const;

  std::size_t n_states() const { return links_.size(); }

 private:
  double transition_log(int from, int to) const;

  std::vector<std::vector<int>> links_;
  double self_loop_;
  double teleport_;
};

}  // namespace wf::baselines
