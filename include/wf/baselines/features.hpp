#pragma once

#include <cstddef>
#include <vector>

#include "netsim/browser.hpp"

namespace wf::baselines {

// Width of the hand-crafted summary-feature vector.
std::size_t kfp_feature_dim();

// k-FP-style (Hayes & Danezis) summary statistics of a capture: counts,
// volumes, size moments, timing, burst structure and per-server byte
// distribution. The feature baseline the paper compares against.
std::vector<float> extract_kfp_features(const netsim::PacketCapture& capture);

}  // namespace wf::baselines
