#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace wf::nn {

// Fully connected network with ReLU hidden layers and a linear output,
// trained by explicit backpropagation with an Adam optimizer. Sized for the
// paper's Table-I embedding network (a few hundred inputs, 32-d output) —
// no BLAS beyond the in-repo blocked GEMM, no autograd, fully deterministic
// given the init seed and independent of the thread count.
class Mlp {
 public:
  Mlp() = default;
  // sizes = {input, hidden..., output}.
  Mlp(const std::vector<std::size_t>& sizes, std::uint64_t seed);

  std::size_t input_dim() const;
  std::size_t output_dim() const;

  // Parameter access for serialization/inspection (wf::io). Mutating the
  // weights through these leaves the Adam moments untouched — a reloaded
  // model resumes training with a fresh optimizer state.
  std::size_t n_layers() const { return layers_.size(); }
  std::vector<std::size_t> layer_sizes() const;  // {input, hidden..., output}
  const Matrix& layer_weights(std::size_t l) const { return layers_[l].w; }
  Matrix& layer_weights(std::size_t l) { return layers_[l].w; }
  const std::vector<float>& layer_bias(std::size_t l) const { return layers_[l].b; }
  std::vector<float>& layer_bias(std::size_t l) { return layers_[l].b; }

  // Plain inference.
  std::vector<float> forward(std::span<const float> x) const;

  // Batched inference: one GEMM per layer over x (one sample per row).
  Matrix forward_batch(const Matrix& x) const;

  // Per-sample activation cache for backprop: post[l] is the output of layer
  // l after its activation (post.back() is the network output).
  struct Activations {
    std::vector<std::vector<float>> post;
  };
  std::vector<float> forward_cached(std::span<const float> x, Activations& acts) const;

  // Batched activation cache: post[l] holds one row per sample.
  struct BatchActivations {
    std::vector<Matrix> post;
  };
  const Matrix& forward_batch_cached(const Matrix& x, BatchActivations& acts) const;

  // Accumulate parameter gradients for one sample given dLoss/dOutput.
  void backward(std::span<const float> x, const Activations& acts,
                std::span<const float> grad_output);

  // Accumulate parameter gradients for a whole batch (one row per sample)
  // via GEMMs; equivalent to calling backward() per row.
  void backward_batch(const Matrix& x, const BatchActivations& acts,
                      const Matrix& grad_output);

  void zero_grad();
  // Adam step on the averaged accumulated gradients, then clears them.
  void adam_step(double learning_rate);

  std::size_t parameter_count() const;

 private:
  struct Layer {
    Matrix w;                 // out x in
    std::vector<float> b;     // out
    Matrix gw;                // accumulated gradients
    std::vector<float> gb;
    Matrix mw, vw;            // Adam moments
    std::vector<float> mb, vb;
  };

  std::vector<Layer> layers_;
  int adam_t_ = 0;
  int grad_samples_ = 0;

  // Scalar-backward scratch, reused across calls to avoid per-sample churn.
  std::vector<float> bwd_grad_;
  std::vector<float> bwd_grad_in_;
};

}  // namespace wf::nn
