#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace wf::nn {

// Dense row-major float matrix: the interchange type between the dataset,
// the embedding network and the reference set. Deliberately small — just
// enough linear-algebra surface for the MLP and the k-NN search.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<float> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const float> row_span(std::size_t r) const {
    if (r >= rows_) throw std::out_of_range("Matrix::row_span");
    return {data_.data() + r * cols_, cols_};
  }

  void set_row(std::size_t r, std::span<const float> values) {
    if (values.size() != cols_) throw std::invalid_argument("Matrix::set_row: width mismatch");
    float* dst = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) dst[c] = values[c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill(float value) { data_.assign(data_.size(), value); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

// Squared Euclidean distance between two equally sized vectors.
inline double squared_distance(std::span<const float> a, std::span<const float> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

}  // namespace wf::nn
