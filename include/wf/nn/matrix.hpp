#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/aligned.hpp"
#include "util/check.hpp"

namespace wf::util {
class ThreadPool;
}

namespace wf::nn {

// Dense row-major float matrix: the interchange type between the dataset,
// the embedding network and the reference set. Deliberately small — just
// enough linear-algebra surface for the MLP and the k-NN search.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    WF_DCHECK(r < rows_ && c < cols_, "Matrix::operator(): index out of range");
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    WF_DCHECK(r < rows_ && c < cols_, "Matrix::operator(): index out of range");
    return data_[r * cols_ + c];
  }

  std::span<float> row(std::size_t r) {
    WF_CHECK(r < rows_, "Matrix::row: index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row_span(std::size_t r) const {
    WF_CHECK(r < rows_, "Matrix::row_span: index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  void set_row(std::size_t r, std::span<const float> values) {
    WF_CHECK(r < rows_, "Matrix::set_row: row out of range");
    WF_CHECK(values.size() == cols_, "Matrix::set_row: width mismatch");
    float* dst = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) dst[c] = values[c];
  }

  // Reshape to rows x cols of zeros, reusing the existing allocation.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill(float value) { data_.assign(data_.size(), value); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // 64-byte-aligned so the SIMD distance kernels get cache-line-aligned
  // base pointers (see util/aligned.hpp).
  util::AlignedVector<float> data_;
};

// Squared norm with double accumulation in index order — the one reduction
// the cached-norm distance identity (‖a‖²+‖b‖²−2a·b) depends on; k-NN and
// the open-world detector must share it exactly.
inline double squared_norm(const float* v, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(v[i]) * v[i];
  return acc;
}

// Squared Euclidean distance between two equally sized vectors.
inline double squared_distance(std::span<const float> a, std::span<const float> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

// Blocked GEMM kernels behind the batched hot paths. All of them compute
// each output element with a fixed operation order that does not depend on
// the thread count, so parallel and serial runs are bit-identical. Passing
// pool = nullptr uses util::global_pool().

// c = a · bᵀ (b stored row-major as n x k, i.e. one reference per row).
// a: m x k, c: m x n. accumulate adds into c instead of overwriting.
void matmul_transposed(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate = false,
                       util::ThreadPool* pool = nullptr);
Matrix matmul_transposed(const Matrix& a, const Matrix& b);

// c = a · b. a: m x k, b: k x n, c: m x n.
void matmul(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate = false,
            util::ThreadPool* pool = nullptr);
Matrix matmul(const Matrix& a, const Matrix& b);

// c += aᵀ · b (the weight-gradient shape). a: m x r, b: m x n, c: r x n.
void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate = true,
                 util::ThreadPool* pool = nullptr);

// Serial raw-pointer core of matmul_transposed for callers that already run
// inside a parallel region (k-NN shards, open-world shards): computes
// dots[i * n + j] = <a_i, b_j> for a: m x k and b: n x k, both row-major.
void gemm_nt_serial(const float* a, std::size_t m, const float* b, std::size_t n, std::size_t k,
                    float* dots);

}  // namespace wf::nn
