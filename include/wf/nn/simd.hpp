#pragma once

// Runtime-dispatched SIMD distance kernels. The hot dot product behind
// gemm_nt_serial / matmul_transposed comes in three flavours — scalar (the
// original eight-lane form), AVX2 and NEON — selected once per process from
// WF_SIMD=auto|avx2|neon|scalar (auto picks the widest supported unit).
//
// All three compute the same operation sequence: eight independent float
// accumulator lanes (mul then add, never fused) reduced as
// ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)) + tail. That makes the vector paths
// bit-identical to the scalar path, which in turn is bit-identical to every
// result the project has ever produced — WF_SIMD is a speed knob, not an
// accuracy knob, and CI diffs the modes against each other to prove it.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wf::nn {

enum class SimdMode : std::uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };

const char* simd_mode_name(SimdMode mode);

// True when this build + CPU can execute `mode` (kScalar always can).
bool simd_supported(SimdMode mode);

// Every mode simd_supported() accepts, scalar first.
std::vector<SimdMode> supported_simd_modes();

// The active mode: resolved from WF_SIMD on first use and cached. An
// unsupported or unknown request logs a warning and falls back to scalar,
// so a pinned WF_SIMD never aborts a run on older hardware.
SimdMode simd_mode();

// Test/bench override of the cached mode. Returns false (and changes
// nothing) when the mode is not supported on this machine.
bool set_simd_mode(SimdMode mode);

// Dot product of two length-k float vectors under the active mode.
float simd_dot(const float* a, const float* b, std::size_t k);

namespace detail {
using DotFn = float (*)(const float*, const float*, std::size_t);
// Kernel for an explicit mode (callers hoist this out of their loops).
DotFn dot_kernel(SimdMode mode);
// Kernel for simd_mode().
DotFn active_dot_kernel();
}  // namespace detail

}  // namespace wf::nn
