#pragma once

#include <span>
#include <vector>

#include "core/embedding_config.hpp"
#include "data/dataset.hpp"
#include "data/pairs.hpp"
#include "nn/mlp.hpp"

namespace wf::core {

struct TrainStats {
  double final_loss = 0.0;     // mean loss over the last training window
  double pair_accuracy = 0.0;  // margin-threshold pair classification
  double seconds = 0.0;
  int iterations = 0;
};

// The siamese embedding network (§IV-A2): maps an encoded trace to a point
// on the unit sphere in R^embedding_dim such that loads of the same page
// land close together. Classification and adaptation then operate purely in
// embedding space — the model itself never needs retraining.
//
// Training and the dataset-sized embed paths run batched: every optimizer
// step forwards/backwards its whole pair batch through one GEMM per layer,
// and embed(Matrix)/embed_dataset do the same for inference.
class EmbeddingModel {
 public:
  explicit EmbeddingModel(const EmbeddingConfig& config = {});

  // Run `config.train_iterations` optimizer steps drawing batches from the
  // generator. Calling train() again continues from the current weights.
  TrainStats train(data::PairGenerator& pairs);

  // L2-normalized embedding of one encoded trace.
  std::vector<float> embed(std::span<const float> features) const;
  nn::Matrix embed(const nn::Matrix& batch) const;
  nn::Matrix embed_dataset(const data::Dataset& dataset) const;

  const EmbeddingConfig& config() const { return config_; }

  // Underlying network, exposed for wf::io serialization: a loaded model
  // replaces the freshly initialized weights through the mutable accessor.
  const nn::Mlp& net() const { return net_; }
  nn::Mlp& net() { return net_; }

 private:
  // One batched optimizer step: rows of `x` hold the step's samples in pair
  // (a0,b0,a1,b1,...) or triplet (a0,p0,n0,...) order.
  void train_step_contrastive(const nn::Matrix& x, double& loss_acc, double& correct_acc);
  void train_step_triplet(const nn::Matrix& x, double& loss_acc, double& correct_acc);

  EmbeddingConfig config_;
  nn::Mlp net_;
  // Per-step training scratch, reused across the whole schedule.
  nn::Mlp::BatchActivations train_acts_;
  std::vector<unsigned char> pair_positive_;  // per-pair sign of the current step
  nn::Matrix train_y_;                        // normalized embeddings
  nn::Matrix train_grad_y_;                   // dLoss/d(normalized embedding)
  nn::Matrix train_grad_raw_;                 // chained through the normalization
  std::vector<double> train_raw_norms_;
};

}  // namespace wf::core
