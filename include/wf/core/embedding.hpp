#pragma once

#include <span>
#include <vector>

#include "core/embedding_config.hpp"
#include "data/dataset.hpp"
#include "data/pairs.hpp"
#include "nn/mlp.hpp"

namespace wf::core {

struct TrainStats {
  double final_loss = 0.0;     // mean loss over the last training window
  double pair_accuracy = 0.0;  // margin-threshold pair classification
  double seconds = 0.0;
  int iterations = 0;
};

// The siamese embedding network (§IV-A2): maps an encoded trace to a point
// on the unit sphere in R^embedding_dim such that loads of the same page
// land close together. Classification and adaptation then operate purely in
// embedding space — the model itself never needs retraining.
class EmbeddingModel {
 public:
  explicit EmbeddingModel(const EmbeddingConfig& config = {});

  // Run `config.train_iterations` optimizer steps drawing batches from the
  // generator. Calling train() again continues from the current weights.
  TrainStats train(data::PairGenerator& pairs);

  // L2-normalized embedding of one encoded trace.
  std::vector<float> embed(std::span<const float> features) const;
  nn::Matrix embed(const nn::Matrix& batch) const;
  nn::Matrix embed_dataset(const data::Dataset& dataset) const;

  const EmbeddingConfig& config() const { return config_; }

 private:
  void train_contrastive_pair(std::span<const float> xa, std::span<const float> xb,
                              bool positive, double& loss_acc, double& correct_acc);
  void train_triplet(std::span<const float> xa, std::span<const float> xp,
                     std::span<const float> xn, double& loss_acc, double& correct_acc);

  EmbeddingConfig config_;
  nn::Mlp net_;
};

}  // namespace wf::core
