#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/embedding.hpp"
#include "core/knn.hpp"
#include "data/dataset.hpp"

namespace wf::io {
class Writer;
class Reader;
}  // namespace wf::io

namespace wf::core {

// Cumulative top-n accuracy curve.
class TopNCurve {
 public:
  TopNCurve() = default;
  explicit TopNCurve(std::vector<double> cumulative) : cumulative_(std::move(cumulative)) {}

  // Fraction of samples whose true label ranked within the first n guesses.
  double top(std::size_t n) const {
    if (cumulative_.empty() || n == 0) return 0.0;
    return cumulative_[std::min(n, cumulative_.size()) - 1];
  }

  std::size_t max_n() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

struct EvaluationResult {
  TopNCurve curve;
  std::size_t n_samples = 0;
  double seconds = 0.0;
};

// Aggregate per-sample rankings (in sample order) against the true labels
// into a cumulative top-n curve. The single aggregation shared by
// Attacker::evaluate and the CLI's remote-query path (`wf query`), so an
// in-process and a daemon-served evaluation of the same rankings cannot
// drift apart.
TopNCurve curve_from_rankings(const std::vector<std::vector<RankedLabel>>& rankings,
                              std::span<const int> labels, std::size_t max_n);

// The public face of every fingerprinting adversary in this repo. The
// experiment harnesses program against this interface (taking an attacker
// factory), so swapping the paper's adaptive embedding system for a
// baseline is a one-line change in any experiment.
//
// Lifecycle: train() once on a labeled crawl (builds models AND the initial
// target set), then fingerprint/evaluate observed traces; set_references()
// re-targets the attacker onto fresh labeled loads, and adapt() refreshes a
// single class — implementations differ in what those cost (the paper's
// §IV claim: the embedding attacker swaps references without retraining,
// a forest must refit end to end).
class Attacker {
 public:
  virtual ~Attacker() = default;

  // Stable registry name ("adaptive", "forest", "kfp-knn"); also stamped
  // into saved model files so io::load_attacker can dispatch.
  virtual std::string name() const = 0;

  // Train on the labeled dataset and build the initial reference/target
  // set from it.
  virtual TrainStats train(const data::Dataset& train) = 0;

  // Re-target onto fresh labeled loads, keeping whatever the
  // implementation can hold fixed (the embedding attacker keeps its
  // trained model; a forest refits).
  virtual void set_references(const data::Dataset& references) = 0;

  // Ranked candidate pages for every trace in `traces`, best first.
  virtual std::vector<std::vector<RankedLabel>> fingerprint_batch(
      const data::Dataset& traces) const = 0;

  // One observed trace — the latency path. The default wraps the features
  // into a one-sample batch; implementations with a cheaper scalar kernel
  // override it.
  virtual std::vector<RankedLabel> fingerprint(std::span<const float> features) const;

  // Top-n accuracy over a held-out set; the default aggregates
  // fingerprint_batch rankings in sample order.
  virtual EvaluationResult evaluate(const data::Dataset& test, std::size_t max_n) const;

  // Refresh one class from fresh loads of it (§IV-C probe-and-swap for the
  // embedding attacker; a full refit for train-heavy baselines).
  virtual void adapt(int label, const data::Dataset& fresh) = 0;

  // Sorted page labels the attacker currently targets (its reference or
  // training set) — lets a caller cross-check a loaded model against the
  // world it is about to be evaluated on.
  virtual std::vector<int> target_classes() const = 0;

  // Deep copy, preserving trained state.
  virtual std::unique_ptr<Attacker> clone() const = 0;

  // Serialize/restore the attacker-specific sections of a wf::io file (the
  // header and name section are owned by io::save_attacker/load_attacker).
  virtual void save_body(io::Writer& out) const = 0;
  virtual void load_body(io::Reader& in) = 0;

  // Whole-file convenience wrappers around io::save_attacker/load_attacker
  // (magic + version + name + body). load() requires the file to hold an
  // attacker of this type.
  void save(const std::string& path) const;
  void load(const std::string& path);
};

}  // namespace wf::core
