#pragma once

#include <cstdint>
#include <vector>

#include "util/table.hpp"

namespace wf::core {

// Training objective: the paper's contrastive loss (eq. 1) or the triplet
// loss of Triplet Fingerprinting (Table III comparison system).
enum class Objective { kContrastive, kTriplet };

// Table-I-style hyperparameters of the embedding network, scaled down to
// the simulated workload (the paper trains on 64 x 3 sequence inputs too,
// but for far more iterations on GPU).
struct EmbeddingConfig {
  int n_sequences = 3;
  int timesteps = 64;
  std::size_t embedding_dim = 32;
  std::vector<std::size_t> hidden = {128, 64};
  int train_iterations = 2000;   // optimizer steps
  int batch_pairs = 32;          // pairs (or triplets) per step
  double learning_rate = 1e-3;
  double margin = 1.0;           // contrastive/triplet margin
  Objective objective = Objective::kContrastive;
  std::uint64_t seed = 1234;     // weight init + batch sampling

  std::size_t input_dim() const {
    return static_cast<std::size_t>(n_sequences) * static_cast<std::size_t>(timesteps);
  }
};

// Render the configuration as the paper's Table I.
util::Table hyperparameter_table(const EmbeddingConfig& config);

}  // namespace wf::core
