#pragma once

#include <span>
#include <vector>

#include "core/reference_set.hpp"
#include "nn/matrix.hpp"

namespace wf::core {

// One entry of a classifier's ranked output: classes sorted best-first.
struct RankedLabel {
  int label = -1;
  int votes = 0;        // neighbours (or trees) voting for this class
  double distance = 0;  // tie-break: closest reference of this class
};

// k-nearest-neighbour voting in embedding space. Produces a *total* ranking
// over every class in the reference set (voted classes first, the rest
// ordered by nearest-reference distance) so top-n curves and per-class
// guess counts are well defined for any n.
//
// Queries are batched: all query→reference distances come from one blocked
// GEMM via ‖q‖² + ‖r‖² − 2·q·r with the reference norms cached in the
// ReferenceSet, sharded across the thread pool. The scalar rank() runs the
// same kernel on a single row.
class KnnClassifier {
 public:
  explicit KnnClassifier(int k) : k_(k) {}

  int k() const { return k_; }

  std::vector<RankedLabel> rank(const ReferenceSet& references,
                                std::span<const float> query) const;

  // One ranking per row of `queries` (queries.cols() == references.dim()).
  std::vector<std::vector<RankedLabel>> rank_batch(const ReferenceSet& references,
                                                   const nn::Matrix& queries) const;

 private:
  int k_;
};

}  // namespace wf::core
