#pragma once

#include <span>
#include <vector>

#include "core/reference_set.hpp"
#include "nn/matrix.hpp"

namespace wf::core {

// One entry of a classifier's ranked output: classes sorted best-first.
struct RankedLabel {
  int label = -1;
  int votes = 0;        // neighbours (or trees) voting for this class
  double distance = 0;  // tie-break: closest reference of this class
};

// k-nearest-neighbour voting in embedding space. Produces a *total* ranking
// over every class in the reference store (voted classes first, the rest
// ordered by nearest-reference distance) so top-n curves and per-class
// guess counts are well defined for any n.
//
// Queries run shard-by-shard against any ReferenceStore: one blocked GEMM
// tile per shard (distances via ‖q‖² + ‖r‖² − 2·q·r with the reference
// norms cached per shard), a per-shard top-k candidate heap, and an exact
// merge of the shard candidates into the global ranking — votes and
// per-class nearest distances are identical to a single unsharded scan.
// rank_batch shards query blocks across the thread pool; the scalar rank()
// shards the reference scan itself across the pool.
class KnnClassifier {
 public:
  explicit KnnClassifier(int k) : k_(k) {}

  int k() const { return k_; }

  std::vector<RankedLabel> rank(const ReferenceStore& references,
                                std::span<const float> query) const;

  // One ranking per row of `queries` (queries.cols() == references.dim()).
  std::vector<std::vector<RankedLabel>> rank_batch(const ReferenceStore& references,
                                                   const nn::Matrix& queries) const;

 private:
  int k_;
};

}  // namespace wf::core
