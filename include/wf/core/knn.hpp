#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/reference_set.hpp"
#include "nn/matrix.hpp"

namespace wf::core {

// One entry of a classifier's ranked output: classes sorted best-first.
struct RankedLabel {
  int label = -1;
  int votes = 0;        // neighbours (or trees) voting for this class
  double distance = 0;  // tie-break: closest reference of this class
};

// One top-k candidate as exchanged between scatter/gather nodes: the
// squared distance plus a packed key carrying the row's global insertion id
// (upper bits) and its dense global class id (lower kCandidateClassBits).
// Keys are unique per row, so the pair's lexicographic < totally orders
// candidates by (dist, insertion id) — the exact merge tie-break of the
// sharded scan.
inline constexpr std::uint64_t kCandidateClassBits = 24;
using Candidate = std::pair<double, std::uint64_t>;

// The scatter half of a distributed query: one node's scan of the shards
// s ≡ slice_index (mod slice_count). Holds, per query, the per-shard k-best
// candidates and the per-class nearest distances over the slice (flat,
// query-major). Folding the slices of one store back together with
// merge_slice_scans reproduces KnnClassifier::rank_batch over the whole
// store bit-identically.
struct SliceScan {
  std::size_t n_queries = 0;
  std::size_t n_class_ids = 0;
  // Reference rows this slice's shards hold — the coordinator sums these
  // over the slices it gathered to decide whether coverage is full or the
  // answer must be flagged degraded. 0 from pre-extension peers ("unknown").
  std::uint64_t n_rows_scanned = 0;
  std::vector<std::vector<Candidate>> candidates;  // per query
  std::vector<double> best;                        // n_queries x n_class_ids

  const double* best_of(std::size_t query) const { return best.data() + query * n_class_ids; }
};

// The gather half: fold per-slice candidates (union, then keep the k
// globally smallest by the unique (dist, key) order) and per-class bests
// (elementwise min) into final rankings. `labels_by_id` maps dense class
// ids to page labels; `n_total` is the store's total row count, bounding k
// exactly as rank_batch does. Slice fold order does not affect the result.
std::vector<std::vector<RankedLabel>> merge_slice_scans(std::span<const int> labels_by_id,
                                                        int k, std::size_t n_total,
                                                        const std::vector<SliceScan>& slices);

// k-nearest-neighbour voting in embedding space. Produces a *total* ranking
// over every class in the reference store (voted classes first, the rest
// ordered by nearest-reference distance) so top-n curves and per-class
// guess counts are well defined for any n.
//
// Queries run shard-by-shard against any ReferenceStore: one blocked GEMM
// tile per shard (distances via ‖q‖² + ‖r‖² − 2·q·r with the reference
// norms cached per shard), a per-shard top-k candidate heap, and an exact
// merge of the shard candidates into the global ranking — votes and
// per-class nearest distances are identical to a single unsharded scan.
// rank_batch shards query blocks across the thread pool; the scalar rank()
// shards the reference scan itself across the pool.
class KnnClassifier {
 public:
  explicit KnnClassifier(int k) : k_(k) {}

  int k() const { return k_; }

  std::vector<RankedLabel> rank(const ReferenceStore& references,
                                std::span<const float> query) const;

  // One ranking per row of `queries` (queries.cols() == references.dim()).
  std::vector<std::vector<RankedLabel>> rank_batch(const ReferenceStore& references,
                                                   const nn::Matrix& queries) const;

  // Scan only the shards s with s % slice_count == slice_index of
  // `references` (which must be the full store — the per-shard heap size is
  // bounded by the store's total row count, as in rank_batch). This is what
  // a scatter/gather backend computes before shipping candidates to the
  // coordinator's merge_slice_scans.
  SliceScan scan_slice(const ReferenceStore& references, const nn::Matrix& queries,
                       std::size_t slice_index, std::size_t slice_count) const;

 private:
  int k_;
};

}  // namespace wf::core
