#pragma once

#include <algorithm>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/reference_store.hpp"
#include "nn/matrix.hpp"
#include "util/aligned.hpp"

namespace wf::core {

// Labeled embeddings the k-NN classifier votes over. Adaptation (§IV-C) is
// a pure data operation here: swap a class's rows, never touch the model.
//
// Alongside the raw rows it maintains the batched-query side tables: a
// contiguous class id per row (so per-class stats live in flat vectors, not
// maps) and each row's cached squared norm (so query distances reduce to
// ‖q‖² + ‖r‖² − 2·q·r on top of one GEMM). As a ReferenceStore it is the
// single-shard degenerate case: one view over the whole table, with the row
// index doubling as the global tie-break id.
class ReferenceSet : public ReferenceStore {
 public:
  ReferenceSet() = default;
  explicit ReferenceSet(std::size_t dim) : dim_(dim) {}

  void add(std::span<const float> embedding, int label) {
    if (embedding.size() != dim_)
      throw std::invalid_argument("ReferenceSet::add: embedding width mismatch");
    data_.insert(data_.end(), embedding.begin(), embedding.end());
    labels_.push_back(label);
    double norm = 0.0;
    for (const float v : embedding) norm += static_cast<double>(v) * v;
    sq_norms_.push_back(norm);
    const auto [it, inserted] =
        label_to_id_.try_emplace(label, static_cast<int>(id_to_label_.size()));
    if (inserted) id_to_label_.push_back(label);
    class_ids_.push_back(it->second);
  }

  void add_all(const nn::Matrix& embeddings, const std::vector<int>& labels) {
    if (embeddings.rows() != labels.size())
      throw std::invalid_argument("ReferenceSet::add_all: rows != labels");
    for (std::size_t i = 0; i < embeddings.rows(); ++i) add(embeddings.row_span(i), labels[i]);
  }

  // Drop every reference of `label` (the "swap" half of probe-and-swap).
  void remove_class(int label) {
    std::size_t write = 0;
    for (std::size_t read = 0; read < labels_.size(); ++read) {
      if (labels_[read] == label) continue;
      if (write != read) {
        std::copy(data_.begin() + static_cast<std::ptrdiff_t>(read * dim_),
                  data_.begin() + static_cast<std::ptrdiff_t>((read + 1) * dim_),
                  data_.begin() + static_cast<std::ptrdiff_t>(write * dim_));
        labels_[write] = labels_[read];
        sq_norms_[write] = sq_norms_[read];
      }
      ++write;
    }
    labels_.resize(write);
    data_.resize(write * dim_);
    sq_norms_.resize(write);
    rebuild_class_ids();
  }

  std::size_t size() const override { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  std::size_t dim() const override { return dim_; }

  std::size_t shard_count() const override { return 1; }
  ShardView shard_view(std::size_t) const override {
    return {data_.data(), sq_norms_.data(), class_ids_.data(), nullptr, labels_.size()};
  }

  std::span<const float> embedding(std::size_t i) const { return {data_.data() + i * dim_, dim_}; }
  int label(std::size_t i) const { return labels_[i]; }
  const std::vector<int>& labels() const { return labels_; }

  // Raw row-major matrix view for the batched distance GEMM.
  const float* data() const { return data_.data(); }
  // Cached ‖r_i‖² per row.
  const std::vector<double>& squared_norms() const { return sq_norms_; }

  // Contiguous class-id view: class_id(i) indexes a dense [0, n_class_ids)
  // range so per-class stats can live in flat vectors.
  int class_id(std::size_t i) const { return class_ids_[i]; }
  std::size_t n_class_ids() const override { return id_to_label_.size(); }
  int label_of_id(std::size_t id) const override { return id_to_label_[id]; }

  std::vector<int> classes() const {
    std::vector<int> out = labels_;
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

 private:
  void rebuild_class_ids() {
    label_to_id_.clear();
    id_to_label_.clear();
    class_ids_.resize(labels_.size());
    for (std::size_t i = 0; i < labels_.size(); ++i) {
      const auto [it, inserted] =
          label_to_id_.try_emplace(labels_[i], static_cast<int>(id_to_label_.size()));
      if (inserted) id_to_label_.push_back(labels_[i]);
      class_ids_[i] = it->second;
    }
  }

  std::size_t dim_ = 0;
  util::AlignedVector<float> data_;  // row-major, size() x dim_ (64-byte aligned)
  std::vector<int> labels_;
  std::vector<double> sq_norms_;
  std::vector<int> class_ids_;               // per row, dense in [0, n_class_ids)
  std::vector<int> id_to_label_;             // dense id -> page label
  std::unordered_map<int, int> label_to_id_;
};

}  // namespace wf::core
