#pragma once

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "nn/matrix.hpp"

namespace wf::core {

// Labeled embeddings the k-NN classifier votes over. Adaptation (§IV-C) is
// a pure data operation here: swap a class's rows, never touch the model.
class ReferenceSet {
 public:
  ReferenceSet() = default;
  explicit ReferenceSet(std::size_t dim) : dim_(dim) {}

  void add(std::span<const float> embedding, int label) {
    if (embedding.size() != dim_)
      throw std::invalid_argument("ReferenceSet::add: embedding width mismatch");
    data_.insert(data_.end(), embedding.begin(), embedding.end());
    labels_.push_back(label);
  }

  void add_all(const nn::Matrix& embeddings, const std::vector<int>& labels) {
    if (embeddings.rows() != labels.size())
      throw std::invalid_argument("ReferenceSet::add_all: rows != labels");
    for (std::size_t i = 0; i < embeddings.rows(); ++i) add(embeddings.row_span(i), labels[i]);
  }

  // Drop every reference of `label` (the "swap" half of probe-and-swap).
  void remove_class(int label) {
    std::size_t write = 0;
    for (std::size_t read = 0; read < labels_.size(); ++read) {
      if (labels_[read] == label) continue;
      if (write != read) {
        std::copy(data_.begin() + static_cast<std::ptrdiff_t>(read * dim_),
                  data_.begin() + static_cast<std::ptrdiff_t>((read + 1) * dim_),
                  data_.begin() + static_cast<std::ptrdiff_t>(write * dim_));
        labels_[write] = labels_[read];
      }
      ++write;
    }
    labels_.resize(write);
    data_.resize(write * dim_);
  }

  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  std::size_t dim() const { return dim_; }

  std::span<const float> embedding(std::size_t i) const { return {data_.data() + i * dim_, dim_}; }
  int label(std::size_t i) const { return labels_[i]; }
  const std::vector<int>& labels() const { return labels_; }

  std::vector<int> classes() const {
    std::vector<int> out = labels_;
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

 private:
  std::size_t dim_ = 0;
  std::vector<float> data_;  // row-major, size() x dim_
  std::vector<int> labels_;
};

}  // namespace wf::core
