#pragma once

#include <cstddef>
#include <cstdint>

namespace wf::core {

// Read-only view of one shard's dense side tables, consumed by the k-NN and
// open-world query kernels. `class_ids` indexes the *store-global* dense
// class-id space so per-class stats merged across shards land in one flat
// array. `row_ids` carries each row's global insertion number, the distance
// tie-break key; nullptr means the local row index is already global
// (single-shard stores).
struct ShardView {
  const float* data = nullptr;             // rows x dim, row-major
  const double* sq_norms = nullptr;        // cached ‖r‖² per row
  const int* class_ids = nullptr;          // dense global class id per row
  const std::uint64_t* row_ids = nullptr;  // global tie-break id per row
  std::size_t rows = 0;
};

// Shared interface of ReferenceSet (the S = 1 degenerate case) and
// ShardedReferenceSet: the query kernels scan every shard independently and
// merge per-shard candidates, without knowing the storage layout. The merge
// contract is exact — votes, per-class nearest distances and k-th-neighbour
// distances are identical to one linear scan over the union of all shards.
class ReferenceStore {
 public:
  virtual ~ReferenceStore() = default;

  virtual std::size_t dim() const = 0;
  virtual std::size_t size() const = 0;  // rows across all shards
  virtual std::size_t shard_count() const = 0;
  virtual ShardView shard_view(std::size_t shard) const = 0;

  // Dense global class-id space shared by every shard's class_ids table.
  virtual std::size_t n_class_ids() const = 0;
  virtual int label_of_id(std::size_t id) const = 0;
};

}  // namespace wf::core
