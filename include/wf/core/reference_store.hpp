#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace wf::core {

// Read-only view of one shard's dense side tables, consumed by the k-NN and
// open-world query kernels. `class_ids` indexes the *store-global* dense
// class-id space so per-class stats merged across shards land in one flat
// array. `row_ids` carries each row's global insertion number, the distance
// tie-break key; nullptr means the local row index is already global
// (single-shard stores).
struct ShardView {
  const float* data = nullptr;             // rows x dim, row-major
  const double* sq_norms = nullptr;        // cached ‖r‖² per row
  const int* class_ids = nullptr;          // dense global class id per row
  const std::uint64_t* row_ids = nullptr;  // global tie-break id per row
  std::size_t rows = 0;
};

// Shared interface of ReferenceSet (the S = 1 degenerate case) and
// ShardedReferenceSet: the query kernels scan every shard independently and
// merge per-shard candidates, without knowing the storage layout. The merge
// contract is exact — votes, per-class nearest distances and k-th-neighbour
// distances are identical to one linear scan over the union of all shards.
class ReferenceStore {
 public:
  virtual ~ReferenceStore() = default;

  virtual std::size_t dim() const = 0;
  virtual std::size_t size() const = 0;  // rows across all shards
  virtual std::size_t shard_count() const = 0;
  virtual ShardView shard_view(std::size_t shard) const = 0;

  // Dense global class-id space shared by every shard's class_ids table.
  virtual std::size_t n_class_ids() const = 0;
  virtual int label_of_id(std::size_t id) const = 0;

  // Query-adaptive probing (wf::index IVF stores). A pruned store picks the
  // shards worth scanning per query instead of being scanned exhaustively;
  // the kernels route every query through probe_shards() when pruned() is
  // true. probe_shards must append distinct shard indices (a repeat would
  // double-count votes) deterministically for a given query. The default —
  // all shards, ascending — makes an exhaustive store answer correctly even
  // if a caller probes it anyway.
  virtual bool pruned() const { return false; }
  virtual void probe_shards(std::span<const float> query, std::vector<std::size_t>& out) const {
    (void)query;
    out.clear();
    for (std::size_t s = 0; s < shard_count(); ++s) out.push_back(s);
  }
};

}  // namespace wf::core
