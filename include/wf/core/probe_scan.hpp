#pragma once

// Shared scan schedule for pruned (IVF-style) reference stores, used by the
// k-NN and open-world kernels. One tile of queries is turned into a
// (shard, query) work list grouped by shard, so each probed shard's rows are
// streamed once per tile through a single GEMM over exactly the queries that
// probe it — the pruned counterpart of the dense tile x shard loop.
//
// Determinism: shards are visited in ascending index order and queries in
// ascending tile order within a shard. The downstream candidate merges are
// order-independent anyway (unique (dist, insertion-id) keys), so pruning
// with a probe list covering all shards stays bit-identical to the
// exhaustive scan.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/reference_store.hpp"
#include "nn/matrix.hpp"

namespace wf::core::detail {

// Calls scan(shard_index, shard_view, tile_local_query, dots_row) for every
// (probed shard, query) pair of the tile, where dots_row[j] = <query, row j>
// over the shard's rows. `slice_count` > 1 restricts the schedule to shards
// s ≡ slice_index (mod slice_count), mirroring the exhaustive slice scan.
template <typename Scan>
void scan_pruned_tile(const ReferenceStore& refs, const float* queries, std::size_t rows,
                      std::size_t dim, std::size_t slice_index, std::size_t slice_count,
                      Scan&& scan) {
  thread_local std::vector<std::size_t> probes;
  thread_local std::vector<std::pair<std::size_t, std::uint32_t>> pairs;
  thread_local std::vector<float> gathered;
  thread_local std::vector<float> dots;
  pairs.clear();
  for (std::size_t q = 0; q < rows; ++q) {
    refs.probe_shards({queries + q * dim, dim}, probes);
    for (const std::size_t s : probes)
      if (s % slice_count == slice_index) pairs.emplace_back(s, static_cast<std::uint32_t>(q));
  }
  std::sort(pairs.begin(), pairs.end());
  for (std::size_t lo = 0; lo < pairs.size();) {
    std::size_t hi = lo + 1;
    while (hi < pairs.size() && pairs[hi].first == pairs[lo].first) ++hi;
    const ShardView shard = refs.shard_view(pairs[lo].first);
    if (shard.rows > 0) {
      const std::size_t group = hi - lo;
      gathered.resize(group * dim);
      for (std::size_t g = 0; g < group; ++g)
        std::copy_n(queries + pairs[lo + g].second * dim, dim, gathered.data() + g * dim);
      dots.resize(group * shard.rows);
      nn::gemm_nt_serial(gathered.data(), group, shard.data, shard.rows, dim, dots.data());
      for (std::size_t g = 0; g < group; ++g)
        scan(pairs[lo + g].first, shard, static_cast<std::size_t>(pairs[lo + g].second),
             dots.data() + g * shard.rows);
    }
    lo = hi;
  }
}

}  // namespace wf::core::detail
