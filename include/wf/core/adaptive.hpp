#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/attacker.hpp"
#include "core/embedding.hpp"
#include "core/knn.hpp"
#include "core/sharded_reference_set.hpp"
#include "data/splits.hpp"
#include "index/ivf.hpp"
#include "trace/sequence.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace wf::core {

// The paper's adversary in one object (§IV):
//   provision   — train the embedding model on labeled pairs (once, costly)
//   initialize  — embed the labeled crawl into the reference set
//   fingerprint — rank candidate pages for one observed trace
//   adapt       — probe-and-swap reference refresh, *never* retraining
//
// As an Attacker: train() = provision + initialize, set_references() =
// initialize, adapt() = adapt_class — re-targeting and adaptation keep the
// trained embedding fixed, the paper's core operational claim.
class AdaptiveFingerprinter final : public Attacker {
 public:
  // `n_shards` partitions the reference set for the sharded query paths;
  // 0 resolves via ShardedReferenceSet::default_shard_count() (WF_SHARDS,
  // else one shard per pool thread). Rankings are identical for any count.
  AdaptiveFingerprinter(const EmbeddingConfig& config, int knn_k, std::size_t n_shards = 0);
  // Placeholder state for Attacker::load / io::load_attacker (single shard,
  // default config; everything is replaced by load_body).
  AdaptiveFingerprinter() : AdaptiveFingerprinter(EmbeddingConfig{}, 40, 1) {}

  // The IVF member is a unique_ptr, so the copies clone() relies on need a
  // deep-copying pair; everything else is memberwise.
  AdaptiveFingerprinter(const AdaptiveFingerprinter& other);
  AdaptiveFingerprinter& operator=(const AdaptiveFingerprinter& other);
  AdaptiveFingerprinter(AdaptiveFingerprinter&&) = default;
  AdaptiveFingerprinter& operator=(AdaptiveFingerprinter&&) = default;
  ~AdaptiveFingerprinter() override = default;

  TrainStats provision(const data::Dataset& train,
                       data::PairStrategy strategy = data::PairStrategy::kRandom);

  void initialize(const data::Dataset& references);

  // Scalar latency path: embed one trace, rank it with the zero-alloc
  // single-query kernel.
  std::vector<RankedLabel> fingerprint(std::span<const float> features) const override;

  // Fraction of probe loads of `label` classified correctly at top-1 —
  // the §IV-C health check deciding whether to refresh a class.
  double probe_class_accuracy(int label, const data::Dataset& probe) const;

  // Replace the reference embeddings of `label` with fresh loads: a
  // per-shard remove_class compaction plus round-robin re-adds (embedding +
  // swap only; the trained model is untouched).
  void adapt_class(int label, const data::Dataset& fresh);

  // Scatter half of a distributed query (`wf serve` shard backends): embed
  // the traces and scan only the shards s ≡ slice_index (mod slice_count)
  // of the reference set. Folding every slice's result back together with
  // core::merge_slice_scans reproduces fingerprint_batch bit-identically.
  SliceScan scan_slice(const data::Dataset& traces, std::size_t slice_index,
                       std::size_t slice_count) const;

  // Attacker interface.
  std::string name() const override { return "adaptive"; }
  TrainStats train(const data::Dataset& train) override;
  void set_references(const data::Dataset& references) override { initialize(references); }
  // Batched fingerprinting: embed every trace with one GEMM per layer and
  // rank all queries against the reference set in one sharded pass.
  std::vector<std::vector<RankedLabel>> fingerprint_batch(
      const data::Dataset& traces) const override;
  void adapt(int label, const data::Dataset& fresh) override { adapt_class(label, fresh); }
  std::vector<int> target_classes() const override;
  std::unique_ptr<Attacker> clone() const override {
    return std::make_unique<AdaptiveFingerprinter>(*this);
  }
  void save_body(io::Writer& out) const override;
  void load_body(io::Reader& in) override;

  const ShardedReferenceSet& references() const { return references_; }
  const EmbeddingModel& model() const { return model_; }
  const KnnClassifier& classifier() const { return knn_; }

  // --- wf::index routing ----------------------------------------------------
  // The store every query path (fingerprint, fingerprint_batch, scan_slice,
  // target_classes) actually scans: the external store if one was attached,
  // else the built IVF index, else the exact sharded set. references_ stays
  // authoritative for save/load either way.
  const ReferenceStore& store() const;
  // Cluster the current reference set into an IVF index and route queries
  // through it. initialize() re-buckets the index; adapt_class() mirrors its
  // churn into it (append + compact + maybe_rebuild).
  void build_index(const index::IvfConfig& config);
  void clear_index() { ivf_.reset(); }
  const index::IvfReferenceStore* ivf_index() const { return ivf_.get(); }
  // Attach an external read-only store (`wf serve --index`: an mmap-backed
  // index::MappedIndex). Queries scan it instead of references_; adaptation
  // keeps mutating references_/the IVF index and does NOT reach the attached
  // store — compact with `wf index rebuild` and reopen to pick up churn.
  void set_store(std::shared_ptr<const ReferenceStore> store) {
    store_override_ = std::move(store);
  }
  void clear_store() { store_override_.reset(); }

 private:
  EmbeddingModel model_;
  std::size_t n_shards_;
  ShardedReferenceSet references_;
  KnnClassifier knn_;
  std::unique_ptr<index::IvfReferenceStore> ivf_;
  std::shared_ptr<const ReferenceStore> store_override_;
};

}  // namespace wf::core
