#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/embedding.hpp"
#include "core/knn.hpp"
#include "core/sharded_reference_set.hpp"
#include "data/splits.hpp"
#include "trace/sequence.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace wf::core {

// Cumulative top-n accuracy curve.
class TopNCurve {
 public:
  TopNCurve() = default;
  explicit TopNCurve(std::vector<double> cumulative) : cumulative_(std::move(cumulative)) {}

  // Fraction of samples whose true label ranked within the first n guesses.
  double top(std::size_t n) const {
    if (cumulative_.empty() || n == 0) return 0.0;
    return cumulative_[std::min(n, cumulative_.size()) - 1];
  }

  std::size_t max_n() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

struct EvaluationResult {
  TopNCurve curve;
  std::size_t n_samples = 0;
  double seconds = 0.0;
};

// The paper's adversary in one object (§IV):
//   provision   — train the embedding model on labeled pairs (once, costly)
//   initialize  — embed the labeled crawl into the reference set
//   fingerprint — rank candidate pages for one observed trace
//   adapt       — probe-and-swap reference refresh, *never* retraining
class AdaptiveFingerprinter {
 public:
  // `n_shards` partitions the reference set for the sharded query paths;
  // 0 resolves via ShardedReferenceSet::default_shard_count() (WF_SHARDS,
  // else one shard per pool thread). Rankings are identical for any count.
  AdaptiveFingerprinter(const EmbeddingConfig& config, int knn_k, std::size_t n_shards = 0);

  TrainStats provision(const data::Dataset& train,
                       data::PairStrategy strategy = data::PairStrategy::kRandom);

  void initialize(const data::Dataset& references);

  std::vector<RankedLabel> fingerprint(std::span<const float> features) const;

  // Batched fingerprinting: embed every trace with one GEMM per layer and
  // rank all queries against the reference set in one sharded pass.
  std::vector<std::vector<RankedLabel>> fingerprint_batch(const data::Dataset& traces) const;

  EvaluationResult evaluate(const data::Dataset& test, std::size_t max_n) const;

  // Fraction of probe loads of `label` classified correctly at top-1 —
  // the §IV-C health check deciding whether to refresh a class.
  double probe_class_accuracy(int label, const data::Dataset& probe) const;

  // Replace the reference embeddings of `label` with fresh loads: a
  // per-shard remove_class compaction plus round-robin re-adds (embedding +
  // swap only; the trained model is untouched).
  void adapt_class(int label, const data::Dataset& fresh);

  const ShardedReferenceSet& references() const { return references_; }
  const EmbeddingModel& model() const { return model_; }
  const KnnClassifier& classifier() const { return knn_; }

 private:
  EmbeddingModel model_;
  std::size_t n_shards_;
  ShardedReferenceSet references_;
  KnnClassifier knn_;
};

}  // namespace wf::core
