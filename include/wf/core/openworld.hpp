#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "core/reference_set.hpp"
#include "nn/matrix.hpp"

namespace wf::core {

struct OpenWorldConfig {
  int neighbour = 3;        // which nearest-reference distance to threshold
  double target_tpr = 0.95; // calibration: accept this fraction of monitored
};

// One operating point of the threshold sweep: accept-below-`threshold`
// applied to the k-th-neighbour distances of both sample sets.
struct PrPoint {
  double threshold = 0.0;
  double recall = 0.0;  // TPR on monitored samples
  double false_positive_rate = 0.0;
  double precision = 1.0;
};

struct OpenWorldMetrics {
  double true_positive_rate = 0.0;
  double false_positive_rate = 0.0;
  double precision = 1.0;
  double threshold = 0.0;
  // True when some query ran against fewer references than `neighbour`, so
  // the detector fell back to the farthest available neighbour. Numbers
  // produced under a clamp measure a weaker detector than configured.
  bool neighbour_clamped = false;
};

// Monitored-set membership test (§VI-C): a trace is "in world" when its
// distance to the `neighbour`-th nearest reference embedding is below a
// threshold calibrated for the target TPR on monitored samples. Distances
// run shard-by-shard against any ReferenceStore: each shard contributes its
// k smallest candidates and the merged k-th value is identical to one
// unsharded scan. Batched queries shard across the thread pool.
//
// The detector must be calibrated before it can answer membership queries;
// is_monitored/evaluate/threshold throw std::logic_error until calibrate()
// has run (an uncalibrated threshold would silently accept every sample).
class OpenWorldDetector {
 public:
  explicit OpenWorldDetector(const OpenWorldConfig& config) : config_(config) {}

  void calibrate(const ReferenceStore& references, const nn::Matrix& monitored_samples);

  bool is_monitored(const ReferenceStore& references, std::span<const float> embedding) const;

  // k-th-neighbour distance for every row of `embeddings`.
  std::vector<double> kth_distances(const ReferenceStore& references,
                                    const nn::Matrix& embeddings) const;

  OpenWorldMetrics evaluate(const ReferenceStore& references, const nn::Matrix& monitored,
                            const nn::Matrix& unmonitored) const;

  // Per-threshold precision/recall: candidate thresholds are drawn from the
  // observed k-th-neighbour distances of both sets (subsampled evenly to at
  // most `max_points`, recall-monotone). Unlike evaluate() this needs no
  // prior calibrate() — it sweeps the whole operating curve at once.
  std::vector<PrPoint> precision_recall_sweep(const ReferenceStore& references,
                                              const nn::Matrix& monitored,
                                              const nn::Matrix& unmonitored,
                                              std::size_t max_points = 32) const;

  bool calibrated() const noexcept { return calibrated_; }
  double threshold() const {
    require_calibrated("threshold");
    return threshold_;
  }

  // Whether any query so far clamped `neighbour` to the reference count.
  bool neighbour_clamp_fired() const noexcept { return clamp_fired_.load(); }

 private:
  double kth_distance(const ReferenceStore& references, std::span<const float> embedding) const;
  void require_calibrated(const char* what) const;
  void note_neighbour_clamp(std::size_t rows) const;

  OpenWorldConfig config_;
  double threshold_ = 1e300;
  bool calibrated_ = false;
  // Latched by const query paths (possibly from pool threads): a clamp is a
  // property of the queries the detector has seen, not of its configuration.
  mutable std::atomic<bool> clamp_fired_{false};
};

}  // namespace wf::core
