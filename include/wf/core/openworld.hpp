#pragma once

#include <span>
#include <vector>

#include "core/reference_set.hpp"
#include "nn/matrix.hpp"

namespace wf::core {

struct OpenWorldConfig {
  int neighbour = 3;        // which nearest-reference distance to threshold
  double target_tpr = 0.95; // calibration: accept this fraction of monitored
};

struct OpenWorldMetrics {
  double true_positive_rate = 0.0;
  double false_positive_rate = 0.0;
  double precision = 1.0;
  double threshold = 0.0;
};

// Monitored-set membership test (§VI-C): a trace is "in world" when its
// distance to the `neighbour`-th nearest reference embedding is below a
// threshold calibrated for the target TPR on monitored samples. Calibration
// and evaluation run batched: one GEMM block per query shard, sharded
// across the thread pool.
class OpenWorldDetector {
 public:
  explicit OpenWorldDetector(const OpenWorldConfig& config) : config_(config) {}

  void calibrate(const ReferenceSet& references, const nn::Matrix& monitored_samples);

  bool is_monitored(const ReferenceSet& references, std::span<const float> embedding) const;

  // k-th-neighbour distance for every row of `embeddings`.
  std::vector<double> kth_distances(const ReferenceSet& references,
                                    const nn::Matrix& embeddings) const;

  OpenWorldMetrics evaluate(const ReferenceSet& references, const nn::Matrix& monitored,
                            const nn::Matrix& unmonitored) const;

  double threshold() const { return threshold_; }

 private:
  double kth_distance(const ReferenceSet& references, std::span<const float> embedding) const;

  OpenWorldConfig config_;
  double threshold_ = 1e300;
};

}  // namespace wf::core
