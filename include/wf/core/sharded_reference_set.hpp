#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/reference_store.hpp"
#include "nn/matrix.hpp"
#include "util/aligned.hpp"

namespace wf::core {

// Reference embeddings partitioned into S shards, each with its own dense
// data/norm/class-id tables, so the query kernels can scan shards
// independently (one GEMM tile per shard, per-shard candidate heaps) and
// merge. Rows are distributed round-robin by a global insertion counter;
// the counter value is kept per row as the tie-break id, which makes every
// merged ranking identical to a single scan over the rows in insertion
// order — i.e. to an unsharded ReferenceSet built the same way.
//
// Adaptation (§IV-C probe-and-swap) stays a pure data operation: a swap is
// a per-shard remove_class compaction followed by round-robin re-adds.
class ShardedReferenceSet final : public ReferenceStore {
 public:
  ShardedReferenceSet() = default;
  // n_shards == 0 resolves to default_shard_count().
  explicit ShardedReferenceSet(std::size_t dim, std::size_t n_shards = 1);

  void add(std::span<const float> embedding, int label);
  void add_all(const nn::Matrix& embeddings, const std::vector<int>& labels);

  // Drop every reference of `label`: per-shard compaction, then a rebuild
  // of the global dense class-id space (stale ids never survive a swap).
  void remove_class(int label);

  // ReferenceStore
  std::size_t dim() const override { return dim_; }
  std::size_t size() const override { return size_; }
  std::size_t shard_count() const override { return shards_.size(); }
  ShardView shard_view(std::size_t shard) const override;
  std::size_t n_class_ids() const override { return id_to_label_.size(); }
  int label_of_id(std::size_t id) const override { return id_to_label_[id]; }

  bool empty() const { return size_ == 0; }
  std::size_t shard_rows(std::size_t shard) const { return shards_[shard].labels.size(); }

  // Distinct page labels, ascending (same contract as ReferenceSet).
  std::vector<int> classes() const;

  // WF_SHARDS when set (clamped to [1, 4096]), else one shard per thread of
  // the global pool — enough to keep every worker on its own shard.
  static std::size_t default_shard_count();

  // Serialization snapshot of one shard's dense tables (wf::io). Restoring
  // these verbatim — including row ids and the dense class-id space —
  // reproduces every ranking bit-identically, merge tie-breaks included.
  struct ShardTables {
    util::AlignedVector<float> data;  // rows x dim, row-major
    std::vector<int> labels;
    std::vector<double> sq_norms;
    std::vector<int> class_ids;
    std::vector<std::uint64_t> row_ids;
  };
  ShardTables shard_tables(std::size_t shard) const;
  std::uint64_t next_row_id() const { return next_row_id_; }
  const std::vector<int>& id_to_label() const { return id_to_label_; }

  // Rebuild a set from serialized tables; validates cross-table
  // consistency and throws std::invalid_argument on mismatch.
  static ShardedReferenceSet restore(std::size_t dim, std::uint64_t next_row_id,
                                     std::vector<int> id_to_label,
                                     std::vector<ShardTables> shards);

 private:
  struct Shard {
    // 64-byte aligned so the SIMD distance kernels can tile straight off
    // the shard base (util::kSimdAlignment, like nn::Matrix).
    util::AlignedVector<float> data;  // labels.size() x dim_, row-major
    std::vector<int> labels;
    std::vector<double> sq_norms;
    std::vector<int> class_ids;          // dense global id per row
    std::vector<std::uint64_t> row_ids;  // global insertion number per row
  };

  void rebuild_class_ids();

  std::size_t dim_ = 0;
  std::size_t size_ = 0;           // rows across all shards
  std::uint64_t next_row_id_ = 0;  // monotone; never reused after removals
  std::vector<Shard> shards_;
  std::vector<int> id_to_label_;
  std::unordered_map<int, int> label_to_id_;
};

}  // namespace wf::core
