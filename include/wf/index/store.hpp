#pragma once

// On-disk home of an IvfReferenceStore: a fixed-layout, versioned,
// mmap-friendly base store plus a sidecar append journal, compacted by
// `wf index rebuild` — the mapstore pattern (base + journal + rebuild)
// applied to adapt's swap-references churn.
//
// Base file ("WFIO" | format v1 | "IVFX" | index layout v1):
//
//   offset 16: u64 dim | u64 clusters | u64 rows | u64 next_row_id
//            | u64 n_class_ids | u64 default_probes | u64 kmeans_seed
//            | u64 kmeans_iters | u64 sample_per_cluster
//            | f64 rebuild_churn | u64 file_bytes            (header = 104 B)
//   then, each 64-byte aligned, little-endian, cluster-major:
//     u64 cluster_rows[clusters]
//     i32 id_to_label [n_class_ids]
//     f32 centroids   [clusters x dim]
//     f32 data        [rows x dim]
//     f64 sq_norms    [rows]
//     i32 class_ids   [rows]
//     u64 row_ids     [rows]
//
// `file_bytes` pins the total size, so truncation is detected before any
// array is touched. The arrays are exactly the in-memory cell tables, which
// is what makes open O(1) in the data: MappedIndex points ShardViews
// straight into the mapping (only the small id tables are validated).
//
// Journal ("<base>.journal", "WFIO" | v1 | "IVFJ" | layout v1 | u64 dim |
// u64 clusters, then records): u8 kind 1 = add {u64 cluster, i32 label,
// u64 row_id, f64 sq_norm, f32 embedding[dim]}, u8 kind 2 = remove-class
// {i32 label}. Appends replay as in-memory tail cells at open; a journal
// holding removals cannot be masked onto a read-only mapping, so that case
// degrades to a full in-memory load (open_index logs it) until the next
// rebuild.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "index/ivf.hpp"
#include "io/mmap.hpp"

namespace wf::index {

inline constexpr std::uint32_t kIndexLayoutVersion = 1;
inline constexpr std::uint32_t kJournalLayoutVersion = 1;

// Writes `store` to `path` in the base-store layout above (no journal).
void write_index_file(const std::string& path, const IvfReferenceStore& store);

// Full in-memory load: base store + ordered journal replay (adds and
// removals). The only path that honours remove-class records.
IvfReferenceStore load_index(const std::string& path);

// The serving entry point: mmap the base store, replay journal appends as
// tail cells, or fall back to load_index() when the journal holds
// removals. `probes` overrides the file's default when nonzero.
std::unique_ptr<core::ReferenceStore> open_index(const std::string& path,
                                                 std::size_t probes = 0);

// Re-clusters base + journal and atomically replaces `path` (tmp + rename),
// deleting the journal. Returns the compacted row count.
std::size_t rebuild_index_file(const std::string& path);

// Sidecar-journal appender: records churn against an existing base store
// without rewriting it. Cluster assignment uses the base centroids via the
// same kernel as the in-memory store, and row ids continue the sequence
// past any previously journaled adds, so replay reproduces exactly what an
// in-memory store mutated the same way would hold.
class IndexJournalWriter {
 public:
  explicit IndexJournalWriter(const std::string& index_path);

  void add(std::span<const float> embedding, int label);
  void remove_class(int label);

  const std::string& journal_path() const { return journal_path_; }

 private:
  void append(const std::string& record);

  std::string journal_path_;
  std::size_t dim_ = 0;
  util::AlignedVector<float> centroids_;
  std::vector<double> centroid_norms_;
  std::uint64_t next_row_id_ = 0;
};

// Everything `wf index info` prints, readable without loading the data.
struct IndexInfo {
  std::size_t dim = 0;
  std::size_t clusters = 0;
  std::size_t rows = 0;
  std::size_t n_class_ids = 0;
  IvfConfig config;
  std::uint64_t next_row_id = 0;
  std::uint64_t file_bytes = 0;
  std::size_t min_cluster_rows = 0;
  std::size_t max_cluster_rows = 0;
  std::uint64_t journal_bytes = 0;  // 0 when no journal exists
  std::size_t journal_adds = 0;
  std::size_t journal_removes = 0;
};
IndexInfo read_index_info(const std::string& path);

// The mmap-backed store: ShardViews point into the mapping. Shards [0, C)
// are the mapped base clusters; shards [C, 2C) are the journal tails of the
// same clusters, so probing cluster c scans both its base rows and its
// appended rows.
class MappedIndex final : public core::ReferenceStore {
 public:
  explicit MappedIndex(const std::string& path, std::size_t probes = 0);

  std::size_t dim() const override { return dim_; }
  std::size_t size() const override { return size_; }
  std::size_t shard_count() const override { return 2 * n_clusters_; }
  core::ShardView shard_view(std::size_t shard) const override;
  std::size_t n_class_ids() const override { return n_base_ids_ + extra_labels_.size(); }
  int label_of_id(std::size_t id) const override;
  bool pruned() const override { return true; }
  void probe_shards(std::span<const float> query,
                    std::vector<std::size_t>& out) const override;

  std::size_t clusters() const { return n_clusters_; }
  std::size_t journal_rows() const { return journal_rows_; }
  std::size_t probes() const { return probes_; }
  void set_probes(std::size_t probes) { probes_ = probes; }
  const std::string& path() const { return map_.path(); }

 private:
  struct Tail {
    util::AlignedVector<float> data;
    std::vector<double> sq_norms;
    std::vector<int> class_ids;
    std::vector<std::uint64_t> row_ids;
  };

  io::MappedFile map_;
  std::size_t dim_ = 0;
  std::size_t n_clusters_ = 0;
  std::size_t size_ = 0;
  std::size_t probes_ = 0;  // 0 = all clusters (exact)
  std::size_t n_base_ids_ = 0;
  std::size_t journal_rows_ = 0;
  const std::uint64_t* cluster_rows_ = nullptr;
  std::vector<std::uint64_t> cluster_offsets_;  // row offset of each cluster
  const int* id_to_label_ = nullptr;
  const float* centroids_ = nullptr;
  std::vector<double> centroid_norms_;
  const float* data_ = nullptr;
  const double* sq_norms_ = nullptr;
  const int* class_ids_ = nullptr;
  const std::uint64_t* row_ids_ = nullptr;
  std::vector<int> extra_labels_;  // class ids appended by journal adds
  std::vector<Tail> tails_;

  obs::Counter* probes_total_ = nullptr;
  obs::Counter* clusters_scanned_ = nullptr;
  obs::Counter* rows_scanned_ = nullptr;
};

}  // namespace wf::index
