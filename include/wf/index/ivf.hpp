#pragma once

// wf::index — the million-reference regime. IvfReferenceStore partitions the
// reference embeddings into C clusters with a seeded k-means and answers
// queries by probing only the P nearest clusters (classic IVF). It plugs in
// behind core::ReferenceStore, so KnnClassifier / OpenWorldDetector /
// AdaptiveFingerprinter and the serve daemon pick it up through the
// interface: each cluster is one "shard", probe_shards() is the pruning
// hook, and because the candidate merge runs on unique (dist, insertion-id)
// keys, probing all C clusters (probes = 0) reproduces the exact scan's
// top-k bit for bit. Smaller P trades recall for speed — the exactness knob.
//
// adapt's swap-references churn is absorbed without re-clustering: add()
// appends to the nearest centroid's cell, remove_class() compacts cells in
// place, and once the accumulated churn passes a configurable fraction of
// the built size, maybe_rebuild() re-runs the k-means (the in-memory
// counterpart of the on-disk base store + journal + `wf index rebuild` flow
// in index/store.hpp).

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/reference_store.hpp"
#include "util/aligned.hpp"

namespace wf::obs {
class Counter;
class Gauge;
}  // namespace wf::obs

namespace wf::index {

struct IvfConfig {
  // Cluster count C; 0 = auto (≈ √n, clamped to [1, n]).
  std::size_t clusters = 0;
  // Clusters probed per query P; 0 = all of them (exact), otherwise
  // clamped to [1, C].
  std::size_t probes = 0;
  // Seeded k-means: Lloyd iteration count and the training-sample budget
  // (at most sample_per_cluster x C rows train the centroids; assignment
  // always covers every row).
  std::size_t kmeans_iters = 8;
  std::size_t sample_per_cluster = 32;
  std::uint64_t seed = 9041;
  // maybe_rebuild() re-clusters once (rows added + rows removed) since the
  // last build exceeds this fraction of the built size; 0 disables.
  double rebuild_churn = 0.5;
};

class IvfReferenceStore final : public core::ReferenceStore {
 public:
  // One cluster's dense side tables, laid out exactly like a store shard
  // (rows in insertion order; row_ids are the base store's global ids, so
  // rankings keep the exact scan's tie-break).
  struct Cell {
    util::AlignedVector<float> data;  // rows x dim
    std::vector<double> sq_norms;
    std::vector<int> class_ids;
    std::vector<std::uint64_t> row_ids;
    std::vector<int> labels;  // per row, survives class-id renumbering
    std::size_t rows() const { return sq_norms.size(); }
  };

  IvfReferenceStore() = default;
  // Seeded k-means over the rows of `base`. Rows are gathered in global
  // insertion-id order, so the clustering depends only on the content, not
  // on how `base` happened to be sharded.
  IvfReferenceStore(const core::ReferenceStore& base, const IvfConfig& config);

  // core::ReferenceStore
  std::size_t dim() const override { return dim_; }
  std::size_t size() const override { return size_; }
  std::size_t shard_count() const override { return cells_.size(); }
  core::ShardView shard_view(std::size_t shard) const override;
  std::size_t n_class_ids() const override { return id_to_label_.size(); }
  int label_of_id(std::size_t id) const override { return id_to_label_[id]; }
  bool pruned() const override { return true; }
  void probe_shards(std::span<const float> query,
                    std::vector<std::size_t>& out) const override;

  const IvfConfig& config() const { return config_; }
  std::size_t clusters() const { return cells_.size(); }
  // Runtime exactness knob (0 = all clusters); does not touch the layout.
  void set_probes(std::size_t probes) { config_.probes = probes; }
  std::size_t effective_probes() const;

  std::span<const float> centroid(std::size_t c) const;
  std::span<const float> centroids() const { return centroids_; }
  const Cell& cell(std::size_t c) const { return cells_[c]; }
  const std::vector<int>& id_to_label() const { return id_to_label_; }
  std::vector<int> classes() const;  // sorted labels
  std::uint64_t next_row_id() const { return next_row_id_; }

  // Churn path (adapt's swap-references): append to the nearest centroid's
  // cell / compact every cell. Neither moves existing rows or centroids.
  void add(std::span<const float> embedding, int label);
  // Journal replay (index/store.cpp): append to an explicit cluster with an
  // explicit global id — the values recorded when the row was journaled —
  // so a replayed store is identical to one mutated live.
  void add_pinned(std::size_t cluster, int label, std::uint64_t row_id,
                  std::span<const float> embedding);
  void remove_class(int label);
  // Rows added + removed since the last (re)build.
  std::size_t churn() const { return churn_; }
  // Re-runs the seeded k-means over the current rows (same config/seed:
  // the result is a function of the content, not of the churn history).
  void rebuild();
  // rebuild() iff churn() > rebuild_churn x built size. Returns true when
  // it rebuilt.
  bool maybe_rebuild();

  // Reassembles a store from its serialized tables (index/store.cpp load
  // path). Throws io::IoError when the tables are inconsistent.
  static IvfReferenceStore restore(std::size_t dim, std::uint64_t next_row_id,
                                   const IvfConfig& config,
                                   util::AlignedVector<float> centroids,
                                   std::vector<int> id_to_label, std::vector<Cell> cells);

 private:
  void build_from_rows(const float* data, const int* labels, const std::uint64_t* row_ids,
                       std::size_t n);
  std::size_t nearest_centroid(const float* row) const;
  void rebuild_class_ids();
  void count_probe(const std::vector<std::size_t>& out) const;

  IvfConfig config_;
  std::size_t dim_ = 0;
  std::size_t size_ = 0;
  std::uint64_t next_row_id_ = 0;
  util::AlignedVector<float> centroids_;  // clusters x dim
  std::vector<double> centroid_norms_;    // cached ‖c‖² per centroid
  std::vector<Cell> cells_;
  std::vector<int> id_to_label_;
  std::unordered_map<int, int> label_to_id_;
  std::size_t built_rows_ = 0;
  std::size_t churn_ = 0;

  // wf::obs instruments, shared by every index store (see wf stats).
  obs::Counter* probes_total_ = nullptr;
  obs::Counter* clusters_scanned_ = nullptr;
  obs::Counter* rows_scanned_ = nullptr;
  obs::Counter* rebuilds_total_ = nullptr;
};

namespace detail {
// The shared obs instruments (index.probes_total, index.clusters_scanned,
// index.rows_scanned, index.rebuilds_total, index.journal_bytes), fetched
// once from the global registry.
struct IndexMetrics {
  obs::Counter* probes_total;
  obs::Counter* clusters_scanned;
  obs::Counter* rows_scanned;
  obs::Counter* rebuilds_total;
  obs::Gauge* journal_bytes;
};
const IndexMetrics& index_metrics();
}  // namespace detail

}  // namespace wf::index
