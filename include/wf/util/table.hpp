#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wf::util {

// Minimal aligned-column result table: every experiment binary prints one or
// more of these and can mirror them to CSV under results/.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  void add_row(std::vector<std::string> row);

  // Pretty-print to stdout, optionally preceded by a title line.
  void print(const std::string& title = "") const;

  // Mirror the table to CSV, creating parent directories. Throws
  // std::runtime_error when the file cannot be opened or fully written, so
  // a run never exits 0 with a missing or truncated result table.
  void write_csv(const std::string& path) const;

  std::size_t n_rows() const { return rows_.size(); }
  std::size_t n_columns() const { return columns_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }
  const std::vector<std::string>& columns() const { return columns_; }

  // "0.6123" -> "61.2%"
  static std::string pct(double fraction, int decimals = 1);
  // Fixed-point formatting.
  static std::string num(double value, int decimals = 2);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wf::util
