#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace wf::util {

// Deterministic, platform-independent PRNG (splitmix64). All randomness in
// the library flows through explicitly seeded Rng instances so that every
// simulation, crawl and training run is exactly reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform index in [0, n). n == 0 returns 0.
  std::size_t index(std::size_t n) {
    if (n == 0) return 0;
    return static_cast<std::size_t>(next() % n);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(next() % static_cast<std::uint64_t>(hi - lo + 1));
  }

  bool bernoulli(double p) { return uniform() < p; }

  double normal(double mean = 0.0, double stddev = 1.0) {
    if (has_cached_) {
      has_cached_ = false;
      return mean + stddev * cached_;
    }
    // Box-Muller.
    double u1 = uniform();
    while (u1 <= 1e-12) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return mean + stddev * r * std::cos(theta);
  }

  // Derive an independent deterministic stream (e.g. one per page crawl).
  // Reads but never advances this Rng, so concurrent forks are safe and the
  // fork order does not matter.
  Rng fork(std::uint64_t stream) const {
    Rng child(state_ ^ (0xd1342543de82ef95ull * (stream + 1)));
    child.next();
    return child;
  }

 private:
  std::uint64_t state_;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace wf::util
