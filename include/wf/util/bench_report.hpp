#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/stopwatch.hpp"

namespace wf::util {

// Machine-readable per-binary bench record: mirrors what an experiment
// binary printed into results/bench_<name>.json (name, params, metrics and
// the binary's wall time) so the perf trajectory is diffable across
// commits without scraping stdout.
class BenchReport {
 public:
  // Records the WF_SMOKE state as a param automatically — every bench
  // honours it and comparing smoke vs full runs would be meaningless.
  explicit BenchReport(std::string name);

  void param(const std::string& key, const std::string& value);
  void param(const std::string& key, double value);
  void metric(const std::string& key, double value);

  // Wall seconds since construction (also written as metric wall_seconds).
  double seconds() const { return watch_.seconds(); }

  // Writes <dir>/bench_<name>.json.
  void write(const std::string& dir) const;

 private:
  std::string name_;
  Stopwatch watch_;
  std::vector<std::pair<std::string, std::string>> params_;  // pre-rendered values
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace wf::util
