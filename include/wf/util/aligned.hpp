#pragma once

// 64-byte-aligned allocation for SIMD-facing row storage. nn::Matrix and the
// index cluster cells keep their floats in an AlignedVector so the AVX2/NEON
// distance kernels always see cache-line-aligned base pointers (the kernels
// still use unaligned loads for interior rows — alignment here is about
// avoiding split lines on the hot base addresses, not a correctness
// requirement).

#include <cstddef>
#include <new>
#include <vector>

namespace wf::util {

inline constexpr std::size_t kSimdAlignment = 64;

template <typename T, std::size_t Alignment = kSimdAlignment>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be a power of two");
  static_assert(Alignment >= alignof(T), "alignment must satisfy the element type");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) { return false; }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace wf::util
