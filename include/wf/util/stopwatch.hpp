#pragma once

#include <chrono>

namespace wf::util {

// Wall-clock stopwatch used for the operational-cost measurements (Table III)
// and the train-time columns of the ablation harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wf::util
