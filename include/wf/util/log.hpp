#pragma once

#include <sstream>
#include <string>

namespace wf::util {

// Severity order: debug < info < warn. Lines below the WF_LOG_LEVEL
// threshold (Env::log_level, default "info") are dropped at flush time.
enum class LogLevel : int { debug = 0, info = 1, warn = 2 };

// The threshold currently in effect (live WF_LOG_LEVEL read).
LogLevel log_threshold();

// One-line logger: `log_info() << "x = " << x;` flushes a single prefixed
// line when the temporary is destroyed at the end of the statement. The
// flush takes a process-wide mutex, so concurrent server/coordinator
// threads never interleave characters within a line.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  LogLine(LogLine&& other) noexcept : level_(other.level_), stream_(std::move(other.stream_)) {
    other.moved_from_ = true;
  }
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
  bool moved_from_ = false;
};

LogLine log_debug();
LogLine log_info();
LogLine log_warn();

}  // namespace wf::util
