#pragma once

#include <sstream>
#include <string>

namespace wf::util {

// One-line logger: `log_info() << "x = " << x;` flushes a single prefixed
// line when the temporary is destroyed at the end of the statement.
class LogLine {
 public:
  explicit LogLine(const char* level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  LogLine(LogLine&& other) noexcept : level_(other.level_), stream_(std::move(other.stream_)) {
    other.moved_from_ = true;
  }
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* level_;
  std::ostringstream stream_;
  bool moved_from_ = false;
};

LogLine log_info();
LogLine log_warn();

}  // namespace wf::util
