#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wf::util {

// Fixed-size worker pool shared by the batched hot paths (GEMM kernels,
// k-NN ranking, the crawler). Modeled on tor's workqueue: a small,
// dependency-free primitive the rest of the system leans on.
//
// Size resolution: an explicit count, else WF_THREADS, else
// hardware_concurrency. A pool of size 1 spawns no threads and runs
// everything inline, so WF_THREADS=1 is an exact serial execution. All
// parallel_for users write disjoint outputs with a fixed per-element
// operation order, so results are identical for every pool size.
class ThreadPool {
 public:
  // n_threads == 0 resolves to default_thread_count(). The pool owns
  // n_threads - 1 background workers; the calling thread participates in
  // every parallel_for, so `size()` is the effective parallelism.
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }

  // Run fn(i) for every i in [begin, end), sharded over the pool in chunks
  // of at least `grain`. Blocks until the whole range is done and rethrows
  // the first exception. Nested calls (from inside a worker) degrade to an
  // inline serial loop, so kernels that parallelize internally stay safe to
  // call from already-parallel regions.
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn, std::size_t grain = 1) {
    run_sharded(begin, end, grain,
                [&fn](std::size_t lo, std::size_t hi) {
                  for (std::size_t i = lo; i < hi; ++i) fn(i);
                });
  }

  // Like parallel_for, but hands each task a whole [lo, hi) block so the
  // body can run a blocked kernel (e.g. a GEMM tile) over it.
  template <typename Fn>
  void parallel_blocks(std::size_t begin, std::size_t end, std::size_t block, Fn&& fn) {
    run_sharded(begin, end, block, std::forward<Fn>(fn));
  }

  // WF_THREADS when set (clamped to [1, 512]), else hardware_concurrency.
  static std::size_t default_thread_count();

 private:
  struct ShardState {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex mutex;
    std::condition_variable done;
    int pending = 0;  // enqueued runner tasks not yet finished
  };

  template <typename Body>
  void run_sharded(std::size_t begin, std::size_t end, std::size_t grain, Body&& body) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    // Inline fast path first: serial pools and nested calls never pay for
    // the type-erased wrapper below.
    if (workers_.empty() || in_worker() || n <= grain) {
      body(begin, end);
      return;
    }
    const std::function<void(std::size_t, std::size_t)> fn = std::forward<Body>(body);
    dispatch(begin, end, grain, fn);
  }

  void dispatch(std::size_t begin, std::size_t end, std::size_t grain,
                const std::function<void(std::size_t, std::size_t)>& fn);
  static void run_chunks(ShardState& state);
  static bool& in_worker();

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  bool stop_ = false;
};

// Process-wide pool sized from WF_THREADS (read once, at first use).
ThreadPool& global_pool();

}  // namespace wf::util
