#pragma once

#include <cstddef>
#include <string>

namespace wf::util {

// Single home for every WF_* environment knob, replacing the getenv calls
// that used to be scattered across the thread pool, the sharded reference
// set, the scenario cache and the bench reports. Accessors parse the
// environment live (tests flip variables between calls), but a programmatic
// override — set by the `wf` CLI from flags like --smoke/--out — always
// wins over the environment.
class Env {
 public:
  // WF_SMOKE: switches every experiment to the seconds-scale smoke
  // configuration. "0"/"false"/"off"/"no" (any case) leave it disabled;
  // any other value — including the bare WF_SMOKE=1 — enables it.
  static bool smoke();

  // WF_THREADS: worker count of the global pool, clamped to [1, 512].
  // Returns 0 when unset or unparsable (callers fall back to the hardware
  // concurrency); values with trailing garbage ("4x") are rejected with a
  // warning rather than silently read as their numeric prefix.
  static std::size_t threads();

  // WF_SHARDS: reference-set shard count, clamped to [1, 4096]. Returns 0
  // when unset or unparsable (callers fall back to one shard per pool
  // thread).
  static std::size_t shards();

  // WF_RESULTS_DIR: where experiment CSVs/JSON land; "results" by default.
  static std::string results_dir();

  // WF_SERVE_TIMEOUT_MS: default per-request deadline of the serving layer
  // (server request timeout and client RPC timeout), clamped to
  // [1, 3600000]. Returns 0 when unset or unparsable (callers fall back to
  // their built-in default); the `wf` CLI's --timeout-ms overrides it.
  static std::size_t serve_timeout_ms();

  // WF_OBS: enables span tracing (obs::Span ring-buffer recording) in the
  // pipeline hot paths. Same truthiness rules as WF_SMOKE. Metrics counters
  // are always live; only spans sit behind this switch. Note obs::enabled()
  // caches the first read — flip it at runtime via obs::set_enabled.
  static bool obs();

  // WF_LOG_LEVEL: minimum severity that reaches stderr — "debug", "info"
  // or "warn" (any case). Unset or unrecognized values read as "info".
  static std::string log_level();

  // WF_SIMD: distance-kernel instruction set — "auto" (default), "avx2",
  // "neon" or "scalar", lowercased. Note nn::simd_mode() resolves this once
  // and caches it — flip it at runtime via nn::set_simd_mode.
  static std::string simd();

  // CLI overrides: take precedence over the environment until cleared.
  static void override_smoke(bool smoke);
  static void override_threads(std::size_t threads);
  static void override_shards(std::size_t shards);
  static void override_results_dir(std::string dir);
  static void override_serve_timeout_ms(std::size_t ms);
  static void override_obs(bool obs);
  static void override_log_level(std::string level);
  static void override_simd(std::string mode);

  // One log_info line with the effective settings, emitted at most once per
  // process (every entry point calls it; only the first call prints).
  static void log_effective();
};

}  // namespace wf::util
