#pragma once

#include <stdexcept>
#include <string>

// Contract macros for the library's hot paths, replacing ad-hoc assert():
//
//   WF_CHECK(cond)            always-on invariant; throws util::CheckError
//   WF_CHECK(cond, "why")     with a context message
//   WF_DCHECK(cond[, "why"])  debug-only (compiled out under NDEBUG, but the
//                             condition still type-checks)
//
// A failed check throws instead of aborting: callers several layers up (the
// serving worker, the CLI driver) already convert exceptions into classified
// ERRR replies or nonzero exits, so a contract violation surfaces with
// context instead of tearing the process down mid-batch. Raw assert() is
// banned by wf-lint's `assert-macro` rule — it vanishes under NDEBUG, which
// is exactly the build the serving daemon runs.

namespace wf::util {

// A violated WF_CHECK: a programming error (std::logic_error family), never
// an environmental failure.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message = {});

}  // namespace wf::util

#define WF_CHECK(cond, ...)                                                    \
  do {                                                                         \
    if (!(cond))                                                               \
      ::wf::util::check_failed(#cond, __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__); \
  } while (0)

#ifdef NDEBUG
#define WF_DCHECK(cond, ...)     \
  do {                           \
    if (false) {                 \
      (void)(cond);              \
    }                            \
  } while (0)
#else
#define WF_DCHECK(cond, ...) WF_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)
#endif
