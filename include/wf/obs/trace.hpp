#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wf::obs {

class Histogram;

// Master switch for span tracing, read once from WF_OBS (via util::Env) on
// first use; set_enabled flips it at runtime (CLI/tests). When disabled a
// Span construct/destruct is a single relaxed atomic load — zero
// allocation, zero clock reads — so instrumented hot paths stay free.
bool enabled();
void set_enabled(bool on);

// One finished span. Timestamps are offsets from a process-private steady
// epoch (never wall clock), so records order correctly but carry no
// absolute time — determinism-safe by construction.
struct SpanRecord {
  std::string name;
  std::uint32_t depth = 0;      // nesting level within its thread (0 = root)
  std::uint64_t thread = 0;     // ordinal assigned at the thread's first span
  std::uint64_t sequence = 0;   // per-thread monotonic completion index
  std::uint64_t start_us = 0;   // microseconds since the process steady epoch
  std::uint64_t duration_us = 0;
};

// Per-thread ring capacity: the newest kSpanRingCapacity spans survive.
inline constexpr std::size_t kSpanRingCapacity = 256;

// RAII scoped timer. Construction (when enabled) captures the steady clock
// and bumps the thread's nesting depth; destruction records the duration
// into the thread's bounded ring AND into the global histogram
// "span.<name>", so quantiles accumulate even after the ring wraps.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  Histogram* histogram_ = nullptr;
  std::uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_{};
  bool active_ = false;
};

// Completed spans from every thread's ring, sorted by (thread, sequence).
std::vector<SpanRecord> recent_spans();

// Empty every ring (rings themselves persist — thread ordinals are stable).
void clear_spans();

}  // namespace wf::obs
