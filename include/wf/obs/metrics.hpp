#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace wf::util {
class BenchReport;
}

namespace wf::obs {

// Monotonic event count. Lock-free: hot paths pay one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time level (queue depth, backends down). Lock-free.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Latency/size distribution with fixed log-spaced bucket bounds AND exact
// quantiles: every sample is retained (up to kSampleCapacity) so
// `quantile(p)` reproduces the ad-hoc `sorted[p * (n - 1)]` percentile math
// it replaced in eval/exp_serve and eval/exp_robust bit-for-bit. Past
// capacity the quantile degrades gracefully to the upper bound of the
// log-spaced bucket holding that rank (bucket counts are never dropped).
// One uncontended mutex per histogram; record() is O(log n_buckets).
class Histogram {
 public:
  // Bucket upper bounds: kBase * 2^i, i in [0, kBucketCount). With
  // kBase = 0.001 that spans 1 us .. ~6.4 days when samples are in ms;
  // one extra overflow bucket catches everything above the last bound.
  static constexpr std::size_t kBucketCount = 40;
  static constexpr double kBase = 0.001;
  // 64k doubles = 512 KiB ceiling on retained samples per histogram.
  static constexpr std::size_t kSampleCapacity = std::size_t{1} << 16;

  Histogram();

  void record(double value);

  std::uint64_t count() const;
  double sum() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  // Exact while count() <= kSampleCapacity: sorts the retained samples and
  // returns sorted[static_cast<size_t>(p * (n - 1))]. p is clamped to [0, 1].
  double quantile(double p) const;
  // True while quantile() is computed from retained samples, not buckets.
  bool exact() const;
  // Per-bucket counts, size kBucketCount + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  void reset();

  // The shared upper-bound table (size kBucketCount).
  static const std::vector<double>& bounds();

 private:
  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::uint64_t> buckets_;  // kBucketCount + 1 slots
  std::vector<double> samples_;         // retained while count_ <= kSampleCapacity
};

enum class InstrumentKind : std::uint8_t { counter = 0, gauge = 1, histogram = 2 };

const char* instrument_kind_name(InstrumentKind kind);

// One instrument flattened for serialization/printing. Histogram quantiles
// are extracted at snapshot time; counter/gauge leave the histogram fields 0.
struct SnapshotEntry {
  std::string name;
  InstrumentKind kind = InstrumentKind::counter;
  std::uint64_t count = 0;  // counter value / histogram sample count
  double value = 0.0;       // gauge level
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<double> bounds;           // histogram bucket upper bounds
  std::vector<std::uint64_t> buckets;   // per-bucket counts (+ overflow slot)
};

struct Snapshot {
  std::vector<SnapshotEntry> entries;  // sorted by name — deterministic

  const SnapshotEntry* find(const std::string& name) const;
};

// Named instrument directory. Registration takes a mutex once; the returned
// references stay valid for the registry's lifetime (instruments are
// heap-held), so callers cache them and the hot path never locks the map.
// Re-registering a name with a different kind throws std::logic_error.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide registry every built-in instrument lives in.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Deterministic: entries sorted by name (std::map iteration order).
  Snapshot snapshot() const;

  // Zero every instrument in place (references stay valid). Test hook.
  void reset();

 private:
  struct Instrument {
    InstrumentKind kind = InstrumentKind::counter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Instrument> instruments_;
};

// CSV/pretty view: columns Instrument, Kind, Value, Count, Sum, Min, Max,
// p50, p90, p99. Counters put their count in Value too, so a stats consumer
// can always awk column 3.
util::Table snapshot_table(const Snapshot& snapshot);

// Mirror every entry into BenchReport metrics: counters/gauges as
// <name>, histograms as <name>.count/.sum/.p50/.p90/.p99.
void snapshot_report(const Snapshot& snapshot, util::BenchReport& report);

}  // namespace wf::obs
