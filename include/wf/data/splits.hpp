#pragma once

#include <cstdint>

#include "data/build.hpp"
#include "data/dataset.hpp"

namespace wf::data {

// Deterministic per-class split: `first` holds up to n_first samples of each
// class (reference/training pool), `second` the rest (held-out test pool).
// The two sides are always disjoint.
struct SampleSplit {
  Dataset first;
  Dataset second;
};

SampleSplit split_samples(const Dataset& dataset, int n_first_per_class, std::uint64_t seed);

}  // namespace wf::data
