#pragma once

#include <cstddef>
#include <set>
#include <stdexcept>
#include <vector>

#include "nn/matrix.hpp"

namespace wf::data {

// One labeled trace: the encoded feature vector plus its page id.
struct Sample {
  std::vector<float> features;
  int label = 0;
};

// A labeled feature corpus with a fixed feature width.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t feature_dim) : feature_dim_(feature_dim) {}

  void add(Sample sample) {
    if (feature_dim_ == 0) feature_dim_ = sample.features.size();
    if (sample.features.size() != feature_dim_)
      throw std::invalid_argument("Dataset::add: feature width mismatch");
    samples_.push_back(std::move(sample));
  }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  std::size_t feature_dim() const { return feature_dim_; }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }

  // Sorted unique labels present in the dataset.
  std::vector<int> classes() const {
    std::set<int> unique;
    for (const Sample& s : samples_) unique.insert(s.label);
    return {unique.begin(), unique.end()};
  }

  std::size_t n_classes() const { return classes().size(); }

  std::vector<int> labels_of() const {
    std::vector<int> labels;
    labels.reserve(samples_.size());
    for (const Sample& s : samples_) labels.push_back(s.label);
    return labels;
  }

  // Keep the samples whose label satisfies the predicate.
  template <typename Pred>
  Dataset filter(Pred&& keep_label) const {
    Dataset out(feature_dim_);
    for (const Sample& s : samples_)
      if (keep_label(s.label)) out.add(s);
    return out;
  }

  nn::Matrix to_matrix() const {
    nn::Matrix m(samples_.size(), feature_dim_);
    for (std::size_t i = 0; i < samples_.size(); ++i) m.set_row(i, samples_[i].features);
    return m;
  }

 private:
  std::size_t feature_dim_ = 0;
  std::vector<Sample> samples_;
};

}  // namespace wf::data
