#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "netsim/browser.hpp"
#include "trace/defense.hpp"
#include "trace/sequence.hpp"
#include "util/thread_pool.hpp"

namespace wf::data {

// Raw crawl output: captures with their page labels, before encoding —
// needed whenever a defense is applied at the trace level.
struct CaptureCorpus {
  std::vector<netsim::PacketCapture> captures;
  std::vector<int> labels;

  std::size_t size() const { return captures.size(); }
};

struct DatasetBuildOptions {
  int samples_per_class = 20;
  std::uint64_t seed = 1;
  trace::SequenceOptions sequence;
  netsim::BrowserConfig browser;
};

// Crawl `samples_per_class` loads of each requested page ({} = every page),
// one pool task per page. The corpus layout and every trace byte are
// independent of the pool size (each page has its own forked Rng stream).
CaptureCorpus collect_captures(const netsim::Website& site, const netsim::ServerFarm& farm,
                               const std::vector<int>& pages,
                               const DatasetBuildOptions& options);
CaptureCorpus collect_captures(const netsim::Website& site, const netsim::ServerFarm& farm,
                               const std::vector<int>& pages,
                               const DatasetBuildOptions& options, util::ThreadPool& pool);

// Encode a corpus into features, optionally applying a fixed-length defense
// (seeded independently) to every capture first.
Dataset encode_corpus(const CaptureCorpus& corpus, const trace::SequenceOptions& sequence,
                      const trace::FixedLengthDefense* defense = nullptr,
                      std::uint64_t defense_seed = 0);

// collect + encode in one step: the common undefended path.
Dataset build_dataset(const netsim::Website& site, const netsim::ServerFarm& farm,
                      const std::vector<int>& pages, const DatasetBuildOptions& options);

}  // namespace wf::data
