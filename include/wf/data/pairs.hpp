#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace wf::data {

// Pair-sampling strategy for the contrastive objective (§IV-A2):
//   kRandom       — negatives drawn uniformly from other classes
//   kHardNegative — negatives biased towards the classes closest to the
//                   anchor's class in input space (hard negatives)
enum class PairStrategy { kRandom, kHardNegative };

struct SamplePair {
  std::size_t a = 0;
  std::size_t b = 0;
  bool positive = false;
};

struct SampleTriplet {
  std::size_t anchor = 0;
  std::size_t positive = 0;
  std::size_t negative = 0;
};

// Streams training pairs/triplets from a dataset. Deterministic in `seed`.
class PairGenerator {
 public:
  PairGenerator(const Dataset& dataset, PairStrategy strategy, std::uint64_t seed);

  SamplePair next();                       // alternates positive / negative
  std::vector<SamplePair> batch(std::size_t n);
  SampleTriplet next_triplet();

  const Dataset& dataset() const { return *dataset_; }
  PairStrategy strategy() const { return strategy_; }

 private:
  std::size_t sample_of_class(std::size_t class_pos);
  std::size_t negative_class_for(std::size_t class_pos);

  const Dataset* dataset_;
  PairStrategy strategy_;
  util::Rng rng_;
  bool next_positive_ = true;
  std::vector<int> classes_;
  std::vector<std::vector<std::size_t>> by_class_;       // indices per class position
  std::vector<std::vector<std::size_t>> hard_neighbours_;  // per class: nearest classes
};

}  // namespace wf::data
