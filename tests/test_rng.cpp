// Rng reproducibility and distribution sanity (seeded, deterministic).
#include "util/rng.hpp"

#include <algorithm>
#include <vector>

#include "test_common.hpp"

int main() {
  using wf::util::Rng;

  // Identical seeds => identical streams.
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) CHECK(a.next() == b.next());

  // Different seeds diverge immediately.
  Rng c(42), d(43);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff = any_diff || (c.next() != d.next());
  CHECK(any_diff);

  // uniform() stays in [0, 1) and fills the range.
  Rng e(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = e.uniform();
    CHECK(u >= 0.0 && u < 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  CHECK(lo < 0.01);
  CHECK(hi > 0.99);
  CHECK_NEAR(sum / n, 0.5, 0.02);

  // index() respects bounds, range() is inclusive.
  Rng f(9);
  bool saw_min = false, saw_max = false;
  for (int i = 0; i < 5000; ++i) {
    const std::size_t idx = f.index(10);
    CHECK(idx < 10);
    const std::int64_t r = f.range(-3, 3);
    CHECK(r >= -3 && r <= 3);
    saw_min = saw_min || r == -3;
    saw_max = saw_max || r == 3;
  }
  CHECK(saw_min);
  CHECK(saw_max);

  // normal() moments.
  Rng g(11);
  double mean = 0.0, var = 0.0;
  const int m = 50000;
  std::vector<double> xs(m);
  for (int i = 0; i < m; ++i) {
    xs[i] = g.normal(2.0, 3.0);
    mean += xs[i];
  }
  mean /= m;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= m;
  CHECK_NEAR(mean, 2.0, 0.1);
  CHECK_NEAR(std::sqrt(var), 3.0, 0.1);

  // Forked streams are deterministic and independent of later parent use.
  Rng p1(100), p2(100);
  Rng f1 = p1.fork(5);
  p2.next();  // perturbing the parent after forking must not matter...
  Rng f2 = Rng(100).fork(5);
  for (int i = 0; i < 100; ++i) CHECK(f1.next() == f2.next());

  return TEST_MAIN_RESULT();
}
