// The deadline-aware socket layer under adverse delivery: frames split
// across arbitrarily many sends still parse, a disconnect at every byte
// boundary classifies as clean close vs truncation (never a timeout), a
// silent peer surfaces as TimeoutError at the deadline, tcp_connect names
// its attempt count on failure, and the RingQueue distinguishes
// backpressure from shutdown when it refuses a push.
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/frame.hpp"
#include "serve/net.hpp"
#include "serve/queue.hpp"
#include "test_common.hpp"

namespace {

using namespace wf;

void test_deadline() {
  const serve::Deadline never;
  CHECK(!never.finite() && !never.expired());
  CHECK(never.poll_timeout_ms() == -1);
  // <= 0 means "never", so a config value of 0 disables timeouts end to end.
  CHECK(!serve::Deadline::after_ms(0).finite());
  CHECK(!serve::Deadline::after_ms(-5).finite());

  const serve::Deadline soon = serve::Deadline::after_ms(1);
  CHECK(soon.finite());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  CHECK(soon.expired());
  CHECK(soon.poll_timeout_ms() == 0);

  const serve::Deadline later = serve::Deadline::after_ms(60000);
  CHECK(!later.expired());
  CHECK(serve::Deadline::sooner(later, never).finite());
  CHECK(!serve::Deadline::sooner(never, never).finite());
  CHECK(serve::Deadline::sooner(soon, later).expired());
}

// A frame is one logical unit but TCP owes it no delivery shape: the
// receiver must reassemble it from any split across sends.
void test_split_delivery() {
  serve::Listener listener("127.0.0.1", 0);
  const std::string frame = serve::encode_frame(serve::kFrameHello);
  std::thread sender([&] {
    serve::Socket sock = serve::tcp_connect("127.0.0.1", listener.port(), 2000);
    // One frame dribbled a byte per send...
    for (const char byte : frame) {
      sock.send_all(&byte, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // ...then one frame split at every interior boundary.
    for (std::size_t cut = 1; cut + 1 < frame.size(); ++cut) {
      sock.send_all(frame.data(), cut);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      sock.send_all(frame.data() + cut, frame.size() - cut);
    }
  });
  serve::Socket sock = listener.accept();
  CHECK(sock.valid());
  std::size_t frames = 0;
  while (const auto parsed = serve::recv_frame(sock, serve::Deadline::after_ms(10000))) {
    CHECK(parsed->kind == serve::kFrameHello);
    ++frames;
  }
  CHECK(frames == frame.size() - 1);  // 1 byte-wise + size-2 split variants
  sender.join();
}

// A peer death at every byte boundary of a frame: before any byte it is a
// clean close (nullopt); mid-frame it is an io::IoError — and specifically
// not a TimeoutError, so retry loops can tell a cut from a hang.
void test_disconnect_classification() {
  serve::Listener listener("127.0.0.1", 0);
  const std::string frame = serve::encode_frame(serve::kFrameHello);
  for (std::size_t cut = 0; cut <= frame.size(); ++cut) {
    std::thread sender([&] {
      serve::Socket sock = serve::tcp_connect("127.0.0.1", listener.port(), 2000);
      if (cut > 0) sock.send_all(frame.data(), cut);
      sock.close();
    });
    serve::Socket sock = listener.accept();
    CHECK(sock.valid());
    if (cut == 0) {
      CHECK(!serve::recv_frame(sock).has_value());
    } else if (cut == frame.size()) {
      CHECK(serve::recv_frame(sock).has_value());
      CHECK(!serve::recv_frame(sock).has_value());
    } else {
      bool truncated = false, timed_out = false;
      try {
        serve::recv_frame(sock, serve::Deadline::after_ms(5000));
      } catch (const serve::TimeoutError&) {
        timed_out = true;
      } catch (const io::IoError&) {
        truncated = true;
      }
      CHECK(truncated && !timed_out);
    }
    sender.join();
  }
}

// A connected but silent peer must surface as TimeoutError at the deadline
// — whether it never starts a frame or stalls in the middle of one.
void test_recv_timeout() {
  serve::Listener listener("127.0.0.1", 0);
  const std::string frame = serve::encode_frame(serve::kFrameHello);
  for (const std::size_t sent_bytes : {std::size_t{0}, std::size_t{4}}) {
    std::mutex m;
    std::condition_variable done_cv;
    bool done = false;
    std::thread peer([&] {
      serve::Socket sock = serve::tcp_connect("127.0.0.1", listener.port(), 2000);
      if (sent_bytes > 0) sock.send_all(frame.data(), sent_bytes);
      // Hold the connection open past the receiver's deadline.
      std::unique_lock<std::mutex> lock(m);
      done_cv.wait(lock, [&] { return done; });
    });
    serve::Socket sock = listener.accept();
    bool timed_out = false;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      serve::recv_frame(sock, serve::Deadline::after_ms(100));
    } catch (const serve::TimeoutError&) {
      timed_out = true;
    }
    CHECK(timed_out);
    CHECK(std::chrono::steady_clock::now() - t0 >= std::chrono::milliseconds(90));
    {
      const std::lock_guard<std::mutex> lock(m);
      done = true;
    }
    done_cv.notify_one();
    peer.join();
  }
}

void test_connect_failure_names_attempts() {
  std::uint16_t dead_port = 0;
  {
    serve::Listener probe("127.0.0.1", 0);
    dead_port = probe.port();
  }  // closed again: connections to dead_port are now refused

  // The two-argument form makes exactly one attempt and says so.
  bool threw = false;
  try {
    serve::tcp_connect("127.0.0.1", dead_port, 0);
  } catch (const io::IoError& e) {
    threw = true;
    const std::string what = e.what();
    CHECK(what.find("cannot connect") != std::string::npos);
    CHECK(what.find("after 1 attempt:") != std::string::npos);
  }
  CHECK(threw);

  // A retry window keeps trying on backoff, then reports how often.
  serve::ConnectOptions options;
  options.retry_ms = 150;
  options.backoff.initial_backoff_ms = 10;
  options.backoff.max_backoff_ms = 20;
  options.backoff.jitter = 0.0;
  threw = false;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    serve::tcp_connect("127.0.0.1", dead_port, options);
  } catch (const io::IoError& e) {
    threw = true;
    const std::string what = e.what();
    CHECK(what.find(" attempts:") != std::string::npos);  // plural: it retried
  }
  CHECK(threw);
  CHECK(std::chrono::steady_clock::now() - t0 >= std::chrono::milliseconds(140));
}

void test_queue_outcomes() {
  using Outcome = serve::RingQueue<int>::PushOutcome;
  serve::RingQueue<int> queue(2);
  CHECK(queue.offer(1) == Outcome::accepted);
  CHECK(queue.offer(2) == Outcome::accepted);
  CHECK(queue.offer(3) == Outcome::full);  // backpressure: transient
  const std::vector<int> wave = queue.pop_wave(1);
  CHECK(wave.size() == 1 && wave[0] == 1);
  CHECK(queue.offer(4) == Outcome::accepted);  // slot freed
  queue.close();
  CHECK(queue.offer(5) == Outcome::closed);  // shutdown: go elsewhere
}

}  // namespace

int main() {
  test_deadline();
  test_split_delivery();
  test_disconnect_classification();
  test_recv_timeout();
  test_queue_outcomes();
  test_connect_failure_names_attempts();
  return TEST_MAIN_RESULT();
}
