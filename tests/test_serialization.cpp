// wf::io round trips: a trained attacker saved and reloaded must
// reproduce every ranking bit-identically (labels, votes, distances) and
// the open-world calibration exactly; corrupt, truncated, wrong-kind and
// future-version files must raise clean IoError.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/attackers.hpp"
#include "core/adaptive.hpp"
#include "core/openworld.hpp"
#include "data/build.hpp"
#include "data/splits.hpp"
#include "index/ivf.hpp"
#include "index/store.hpp"
#include "io/serialize.hpp"
#include "netsim/browser.hpp"
#include "test_common.hpp"

using namespace wf;

namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

bool rankings_equal(const std::vector<std::vector<core::RankedLabel>>& a,
                    const std::vector<std::vector<core::RankedLabel>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (std::size_t r = 0; r < a[i].size(); ++r) {
      if (a[i][r].label != b[i][r].label || a[i][r].votes != b[i][r].votes ||
          a[i][r].distance != b[i][r].distance)
        return false;
    }
  }
  return true;
}

template <typename Fn>
bool throws_io_error(Fn&& fn) {
  try {
    fn();
  } catch (const io::IoError&) {
    return true;
  } catch (...) {
    return false;
  }
  return false;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

int main() {
  // Small world: 12 pages x 12 loads, 8 train / 4 test per class.
  netsim::WikiSiteConfig site_config;
  site_config.n_pages = 12;
  site_config.seed = 31;
  const netsim::Website site = netsim::make_wiki_site(site_config);
  const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();
  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = 12;
  crawl.seed = 77;
  const data::Dataset dataset = data::build_dataset(site, farm, {}, crawl);
  const data::SampleSplit split = data::split_samples(dataset, 8, 5);

  // --- Dataset round trip -------------------------------------------------
  {
    const std::string path = temp_path("wf_test_dataset.bin");
    io::save_dataset(path, dataset);
    const data::Dataset loaded = io::load_dataset(path);
    CHECK(loaded.size() == dataset.size());
    CHECK(loaded.feature_dim() == dataset.feature_dim());
    bool identical = true;
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      if (loaded[i].label != dataset[i].label ||
          loaded[i].features != dataset[i].features)
        identical = false;
    }
    CHECK(identical);
    std::remove(path.c_str());
  }

  // --- Adaptive attacker round trip ---------------------------------------
  core::EmbeddingConfig config;
  config.train_iterations = 120;
  core::AdaptiveFingerprinter attacker(config, /*knn_k=*/10, /*n_shards=*/3);
  attacker.train(split.first);
  const auto before = attacker.fingerprint_batch(split.second);
  const std::string model_path = temp_path("wf_test_adaptive.wf");
  attacker.save(model_path);

  {
    // Typed reload through Attacker::load.
    core::AdaptiveFingerprinter reloaded;
    reloaded.load(model_path);
    CHECK(rankings_equal(before, reloaded.fingerprint_batch(split.second)));
    CHECK(reloaded.references().size() == attacker.references().size());
    CHECK(reloaded.references().shard_count() == attacker.references().shard_count());

    // The embeddings themselves are bit-identical, so the §VI-C open-world
    // calibration lands on the exact same threshold.
    const nn::Matrix ref_embeddings = attacker.model().embed_dataset(split.first);
    const nn::Matrix loaded_embeddings = reloaded.model().embed_dataset(split.first);
    CHECK(ref_embeddings.rows() == loaded_embeddings.rows());
    bool embeddings_identical = true;
    for (std::size_t r = 0; r < ref_embeddings.rows(); ++r)
      for (std::size_t c = 0; c < ref_embeddings.cols(); ++c)
        if (ref_embeddings(r, c) != loaded_embeddings(r, c)) embeddings_identical = false;
    CHECK(embeddings_identical);

    core::OpenWorldDetector original_detector({.neighbour = 3, .target_tpr = 0.9});
    original_detector.calibrate(attacker.references(), ref_embeddings);
    core::OpenWorldDetector loaded_detector({.neighbour = 3, .target_tpr = 0.9});
    loaded_detector.calibrate(reloaded.references(), loaded_embeddings);
    CHECK(original_detector.threshold() == loaded_detector.threshold());
    const std::vector<double> original_dists =
        original_detector.kth_distances(attacker.references(), ref_embeddings);
    const std::vector<double> loaded_dists =
        loaded_detector.kth_distances(reloaded.references(), loaded_embeddings);
    CHECK(original_dists == loaded_dists);
  }

  {
    // Polymorphic reload through io::load_attacker.
    const std::unique_ptr<core::Attacker> reloaded = io::load_attacker(model_path);
    CHECK(reloaded->name() == "adaptive");
    CHECK(rankings_equal(before, reloaded->fingerprint_batch(split.second)));
    // A reloaded attacker adapts exactly like the original (the trained
    // model travels with the file).
    core::AdaptiveFingerprinter twin;
    twin.load(model_path);
    reloaded->adapt(3, split.second);
    twin.adapt_class(3, split.second);
    CHECK(rankings_equal(reloaded->fingerprint_batch(split.second),
                         twin.fingerprint_batch(split.second)));
  }

  // --- Baseline attacker round trips --------------------------------------
  {
    baselines::ForestAttacker forest({.n_trees = 12, .max_depth = 8});
    forest.train(split.first);
    const auto forest_before = forest.fingerprint_batch(split.second);
    const std::string path = temp_path("wf_test_forest.wf");
    forest.save(path);
    const std::unique_ptr<core::Attacker> reloaded = io::load_attacker(path);
    CHECK(reloaded->name() == "forest");
    CHECK(rankings_equal(forest_before, reloaded->fingerprint_batch(split.second)));
    // adapt() refits from the retained corpus; reloaded must behave the same.
    baselines::ForestAttacker twin;
    twin.load(path);
    reloaded->adapt(1, split.second);
    twin.adapt(1, split.second);
    CHECK(rankings_equal(reloaded->fingerprint_batch(split.second),
                         twin.fingerprint_batch(split.second)));
    std::remove(path.c_str());
  }
  {
    baselines::FeatureKnnAttacker kfp(/*k=*/7, /*n_shards=*/2);
    kfp.train(split.first);
    const auto kfp_before = kfp.fingerprint_batch(split.second);
    const std::string path = temp_path("wf_test_kfp.wf");
    kfp.save(path);
    const std::unique_ptr<core::Attacker> reloaded = io::load_attacker(path);
    CHECK(reloaded->name() == "kfp-knn");
    CHECK(rankings_equal(kfp_before, reloaded->fingerprint_batch(split.second)));
    std::remove(path.c_str());
  }

  // --- Error paths ---------------------------------------------------------
  const std::string valid = read_file(model_path);
  CHECK(valid.size() > 64);

  // Missing file.
  CHECK(throws_io_error([&] { io::load_attacker(temp_path("wf_test_missing.wf")); }));

  // Bad magic.
  {
    const std::string path = temp_path("wf_test_magic.wf");
    std::string bytes = valid;
    bytes[0] = 'X';
    write_file(path, bytes);
    CHECK(throws_io_error([&] { io::load_attacker(path); }));
    std::remove(path.c_str());
  }

  // Future format version: the error must name the version.
  {
    const std::string path = temp_path("wf_test_version.wf");
    std::string bytes = valid;
    bytes[4] = 99;  // little-endian u32 version at offset 4
    write_file(path, bytes);
    bool version_named = false;
    try {
      io::load_attacker(path);
    } catch (const io::IoError& e) {
      version_named = std::string(e.what()).find("version 99") != std::string::npos;
    }
    CHECK(version_named);
    std::remove(path.c_str());
  }

  // Truncation at several depths.
  for (const std::size_t keep : {std::size_t{6}, std::size_t{20}, valid.size() / 2}) {
    const std::string path = temp_path("wf_test_truncated.wf");
    write_file(path, valid.substr(0, keep));
    CHECK(throws_io_error([&] { io::load_attacker(path); }));
    std::remove(path.c_str());
  }

  // Wrong kind: a dataset file is not an attacker, and vice versa.
  {
    const std::string path = temp_path("wf_test_kind.bin");
    io::save_dataset(path, split.first);
    CHECK(throws_io_error([&] { io::load_attacker(path); }));
    CHECK(throws_io_error([&] {
      core::AdaptiveFingerprinter wrong;
      wrong.load(path);
    }));
    std::remove(path.c_str());
  }

  // Wrong attacker type through the typed loader.
  {
    baselines::ForestAttacker wrong;
    CHECK(throws_io_error([&] { wrong.load(model_path); }));
  }

  // Trailing bytes inside a section payload mean corruption or
  // writer/reader drift; the framing must reject them.
  {
    const std::string path = temp_path("wf_test_trailing.wf");
    {
      std::ofstream out(path, std::ios::binary);
      io::Writer w(out);
      io::write_header(w, "ATKR");
      io::write_section(w, "NAME", [](io::Writer& s) {
        s.str("adaptive");
        s.u8(0);  // surplus byte after the name
      });
    }
    CHECK(throws_io_error([&] { io::load_attacker(path); }));
    std::remove(path.c_str());
  }

  // Hostile shapes: a crafted MLP section with 2^32-wide layers must raise
  // IoError before any allocation can overflow.
  {
    const std::string path = temp_path("wf_test_hostile.wf");
    {
      std::ofstream out(path, std::ios::binary);
      io::Writer w(out);
      io::write_header(w, "ATKR");
      io::write_section(w, "NAME", [](io::Writer& s) { s.str("adaptive"); });
      io::write_section(w, "CONF", [](io::Writer& s) {
        io::save_embedding_config(s, core::EmbeddingConfig{});
      });
      io::write_section(w, "KNNC", [](io::Writer& s) {
        s.i32(10);
        s.u64(1);
      });
      io::write_section(w, "MLPW", [](io::Writer& s) {
        s.u64(2);
        s.u64(std::uint64_t{1} << 32);
        s.u64(std::uint64_t{1} << 32);
      });
    }
    CHECK(throws_io_error([&] { io::load_attacker(path); }));
    std::remove(path.c_str());
  }

  // --- IVF index file (wf::index base-store format) ------------------------
  {
    const std::string path = temp_path("wf_test_index_roundtrip.wfx");
    index::IvfConfig ivf_config;
    ivf_config.clusters = 4;
    const index::IvfReferenceStore built(attacker.references(), ivf_config);
    index::write_index_file(path, built);

    // Load -> write again: a lossless format is byte-stable under a round
    // trip, which pins every table (ids, norms, centroids) bit for bit.
    const index::IvfReferenceStore loaded = index::load_index(path);
    CHECK(loaded.size() == built.size());
    CHECK(loaded.clusters() == built.clusters());
    CHECK(loaded.next_row_id() == built.next_row_id());
    const std::string rewritten = temp_path("wf_test_index_rewrite.wfx");
    index::write_index_file(rewritten, loaded);
    CHECK(read_file(path) == read_file(rewritten));
    std::remove(rewritten.c_str());

    const std::string valid_index = read_file(path);
    CHECK(valid_index.size() > 104);

    // Bad magic.
    {
      std::string bytes = valid_index;
      bytes[0] = 'X';
      write_file(path, bytes);
      CHECK(throws_io_error([&] { index::load_index(path); }));
      CHECK(throws_io_error([&] { index::open_index(path); }));
      CHECK(throws_io_error([&] { index::read_index_info(path); }));
    }

    // Future format version: the error must name the version.
    {
      std::string bytes = valid_index;
      bytes[4] = 99;
      write_file(path, bytes);
      bool version_named = false;
      try {
        index::load_index(path);
      } catch (const io::IoError& e) {
        version_named = std::string(e.what()).find("version 99") != std::string::npos;
      }
      CHECK(version_named);
    }

    // Future index layout version (the u32 after the "IVFX" kind tag).
    {
      std::string bytes = valid_index;
      bytes[12] = 99;
      write_file(path, bytes);
      CHECK(throws_io_error([&] { index::open_index(path); }));
    }

    // Wrong kind: an attacker file is not an index, and an index file is
    // not an attacker.
    CHECK(throws_io_error([&] { index::load_index(model_path); }));
    write_file(path, valid_index);
    CHECK(throws_io_error([&] { io::load_attacker(path); }));

    // Truncation at several depths: header, tables, and one byte short.
    for (const std::size_t keep :
         {std::size_t{6}, std::size_t{60}, valid_index.size() / 2, valid_index.size() - 1}) {
      write_file(path, valid_index.substr(0, keep));
      CHECK(throws_io_error([&] { index::load_index(path); }));
      CHECK(throws_io_error([&] { index::open_index(path); }));
    }

    // A corrupt journal poisons the open the same way.
    {
      write_file(path, valid_index);
      write_file(path + ".journal", "WFIOgarbage");
      CHECK(throws_io_error([&] { index::open_index(path); }));
      std::remove((path + ".journal").c_str());
    }

    std::remove(path.c_str());
  }

  std::remove(model_path.c_str());
  return TEST_MAIN_RESULT();
}
