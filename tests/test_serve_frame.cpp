// The serve wire protocol: frame/section codecs round-trip bit-exactly,
// and malformed input of every kind — truncated payloads, oversized length
// prefixes, wrong magic, future format versions, trailing bytes — surfaces
// as a clean io::IoError, never a crash or a misparse. Plus the bounded
// RingQueue the daemon batches through: backpressure when full, FIFO wave
// draining, close semantics.
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/frame.hpp"
#include "serve/net.hpp"
#include "serve/queue.hpp"
#include "test_common.hpp"

namespace {

using namespace wf;

// Frame bytes with the u64 length prefix stripped: the payload that
// parse_frame consumes.
std::string payload_of(const std::string& frame_bytes) {
  CHECK(frame_bytes.size() >= 8);
  return frame_bytes.substr(8);
}

template <typename Fn>
bool raises_io_error(Fn&& fn) {
  try {
    fn();
  } catch (const io::IoError&) {
    return true;
  }
  return false;
}

void test_roundtrips() {
  nn::Matrix features(3, 4);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      features(r, c) = static_cast<float>(r * 10.0 - c * 0.25);
  const std::string query = serve::encode_frame(
      serve::kFrameQuery, [&](io::Writer& w) { serve::write_features(w, features); });
  serve::ParsedFrame frame = serve::parse_frame(payload_of(query));
  CHECK(frame.kind == serve::kFrameQuery);
  const nn::Matrix back = serve::read_features(*frame.reader);
  CHECK(back.rows() == 3 && back.cols() == 4);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) CHECK(back(r, c) == features(r, c));

  serve::Rankings rankings(2);
  rankings[0] = {{7, 3, 1.25}, {9, 0, 2.5}};
  rankings[1] = {};  // an empty ranking must survive too
  frame = serve::parse_frame(payload_of(serve::encode_frame(
      serve::kFrameRankings, [&](io::Writer& w) { serve::write_rankings(w, rankings); })));
  CHECK(frame.kind == serve::kFrameRankings);
  const serve::Rankings rankings_back = serve::read_rankings(*frame.reader);
  CHECK(rankings_back.size() == 2);
  CHECK(rankings_back[0].size() == 2 && rankings_back[1].empty());
  CHECK(rankings_back[0][0].label == 7 && rankings_back[0][0].votes == 3 &&
        rankings_back[0][0].distance == 1.25);

  core::SliceScan scan;
  scan.n_queries = 2;
  scan.n_class_ids = 3;
  scan.candidates = {{{0.5, 42}, {1.5, 7}}, {}};
  scan.best = {0.5, 1.0, 2.0, 9.0, 8.0, 7.0};
  frame = serve::parse_frame(payload_of(serve::encode_frame(
      serve::kFrameSlice, [&](io::Writer& w) { serve::write_slice_scan(w, scan); })));
  const core::SliceScan scan_back = serve::read_slice_scan(*frame.reader);
  CHECK(scan_back.n_queries == 2 && scan_back.n_class_ids == 3);
  CHECK(scan_back.candidates == scan.candidates);
  CHECK(scan_back.best == scan.best);

  serve::ServerInfo info;
  info.attacker = "adaptive";
  info.n_references = 123;
  info.slice_index = 1;
  info.slice_count = 3;
  info.knn_k = 17;
  info.classes = {100, 200};
  info.id_to_label = {200, 100};
  frame = serve::parse_frame(payload_of(
      serve::encode_frame(serve::kFrameInfo, [&](io::Writer& w) { serve::write_info(w, info); })));
  const serve::ServerInfo info_back = serve::read_info(*frame.reader);
  CHECK(info_back.attacker == "adaptive" && info_back.n_references == 123);
  CHECK(info_back.slice_index == 1 && info_back.slice_count == 3);
  CHECK(info_back.knn_k == 17 && info_back.classes == info.classes &&
        info_back.id_to_label == info.id_to_label);

  frame = serve::parse_frame(payload_of(serve::encode_frame(
      serve::kFrameError, [](io::Writer& w) { serve::write_error(w, {true, "busy"}); })));
  const serve::ErrorReply error = serve::read_error(*frame.reader);
  CHECK(error.retryable && error.message == "busy");

  // Body-less kinds parse to just their kind.
  frame = serve::parse_frame(payload_of(serve::encode_frame(serve::kFrameStop)));
  CHECK(frame.kind == serve::kFrameStop);
}

// The wire-v2 extensions (error class, slice coverage, DGRD degradation
// marker) ride as trailing bytes that v1 frames simply lack: both formats
// must parse, and absent extensions read as their defaults.
void test_wire_v2_extensions() {
  // Error class round-trips.
  serve::ParsedFrame frame = serve::parse_frame(payload_of(serve::encode_frame(
      serve::kFrameError, [](io::Writer& w) {
        serve::write_error(w, {true, "busy", serve::ErrorClass::backpressure});
      })));
  serve::ErrorReply error = serve::read_error(*frame.reader);
  CHECK(error.retryable && error.message == "busy" &&
        error.klass == serve::ErrorClass::backpressure);

  // A v1 peer's EMSG carries no class byte: parses as unknown.
  frame = serve::parse_frame(payload_of(serve::encode_frame(
      serve::kFrameError, [](io::Writer& w) {
        io::write_section(w, "EMSG", [](io::Writer& s) {
          s.u8(1);
          s.str("old peer");
        });
      })));
  error = serve::read_error(*frame.reader);
  CHECK(error.retryable && error.message == "old peer" &&
        error.klass == serve::ErrorClass::unknown);

  // A class byte from the future degrades to unknown, not a parse error.
  frame = serve::parse_frame(payload_of(serve::encode_frame(
      serve::kFrameError, [](io::Writer& w) {
        io::write_section(w, "EMSG", [](io::Writer& s) {
          s.u8(0);
          s.str("novel failure");
          s.u8(200);
        });
      })));
  error = serve::read_error(*frame.reader);
  CHECK(!error.retryable && error.klass == serve::ErrorClass::unknown);

  // Slice coverage round-trips; a v1 PART section (no trailing row count)
  // reads as 0 ("unknown").
  core::SliceScan scan;
  scan.n_queries = 1;
  scan.n_class_ids = 1;
  scan.candidates = {{{0.5, 3}}};
  scan.best = {0.5};
  scan.n_rows_scanned = 77;
  frame = serve::parse_frame(payload_of(serve::encode_frame(
      serve::kFrameSlice, [&](io::Writer& w) { serve::write_slice_scan(w, scan); })));
  CHECK(serve::read_slice_scan(*frame.reader).n_rows_scanned == 77);
  frame = serve::parse_frame(payload_of(serve::encode_frame(
      serve::kFrameSlice, [&](io::Writer& w) {
        io::write_section(w, "PART", [&](io::Writer& s) {
          s.u64(scan.n_queries);
          s.u64(scan.n_class_ids);
          s.u64(1);  // one candidate for the one query
          s.f64(0.5);
          s.u64(3);
          s.f64_vec(scan.best);
        });
      })));
  const core::SliceScan v1_scan = serve::read_slice_scan(*frame.reader);
  CHECK(v1_scan.candidates == scan.candidates && v1_scan.n_rows_scanned == 0);

  // The DGRD trailer: absent means not degraded (and the payload is still
  // fully consumed); present round-trips its coverage counts.
  serve::Rankings rankings(1);
  rankings[0] = {{7, 3, 1.25}};
  frame = serve::parse_frame(payload_of(serve::encode_frame(
      serve::kFrameRankings, [&](io::Writer& w) { serve::write_rankings(w, rankings); })));
  CHECK(serve::read_rankings(*frame.reader).size() == 1);
  serve::ReplyMeta meta = serve::read_trailing_meta(frame);
  CHECK(!meta.degraded && meta.covered_references == 0 && meta.total_references == 0);
  io::detail::require_consumed(*frame.stream, frame.kind);

  frame = serve::parse_frame(payload_of(serve::encode_frame(
      serve::kFrameRankings, [&](io::Writer& w) {
        serve::write_rankings(w, rankings);
        serve::write_reply_meta(w, {true, 10, 30});
      })));
  CHECK(serve::read_rankings(*frame.reader).size() == 1);
  meta = serve::read_trailing_meta(frame);
  CHECK(meta.degraded && meta.covered_references == 10 && meta.total_references == 30);
  io::detail::require_consumed(*frame.stream, frame.kind);
}

// The live-introspection frames: STAT (body-less request) and METR (a
// metrics snapshot plus an optional SPNS span trailer, same trailing-bytes
// discipline as DGRD). Every byte of the reply must also survive the
// truncation fuzz.
void test_stat_metrics_frames() {
  // STAT parses to just its kind, like STOP/HELO.
  serve::ParsedFrame frame = serve::parse_frame(payload_of(serve::encode_frame(serve::kFrameStat)));
  CHECK(frame.kind == serve::kFrameStat);

  obs::Registry registry;
  registry.counter("serve.requests_total").inc(42);
  registry.gauge("serve.queue_depth").set(-3);
  obs::Histogram& hist = registry.histogram("serve.handle_ms.QRYB");
  hist.record(0.5);
  hist.record(2.25);
  hist.record(120.0);
  const obs::Snapshot snapshot = registry.snapshot();

  std::vector<obs::SpanRecord> spans;
  spans.push_back({"embed", 1, 7, 3, 1000, 250});
  spans.push_back({"rank", 0, 7, 4, 1300, 900});

  // Full reply: SNAP + SPNS, every field round-trips.
  const std::string with_spans = payload_of(serve::encode_frame(
      serve::kFrameMetrics, [&](io::Writer& w) {
        serve::write_snapshot(w, snapshot);
        serve::write_spans(w, spans);
      }));
  frame = serve::parse_frame(with_spans);
  CHECK(frame.kind == serve::kFrameMetrics);
  const obs::Snapshot snap_back = serve::read_snapshot(*frame.reader);
  CHECK(snap_back.entries.size() == snapshot.entries.size());
  for (std::size_t i = 0; i < snapshot.entries.size(); ++i) {
    const obs::SnapshotEntry& a = snapshot.entries[i];
    const obs::SnapshotEntry& b = snap_back.entries[i];
    CHECK(a.name == b.name && a.kind == b.kind && a.count == b.count);
    CHECK(a.value == b.value && a.sum == b.sum && a.min == b.min && a.max == b.max);
    CHECK(a.p50 == b.p50 && a.p90 == b.p90 && a.p99 == b.p99);
    CHECK(a.bounds == b.bounds && a.buckets == b.buckets);
  }
  const std::vector<obs::SpanRecord> spans_back = serve::read_trailing_spans(frame);
  CHECK(spans_back.size() == 2);
  CHECK(spans_back[0].name == "embed" && spans_back[0].depth == 1 &&
        spans_back[0].thread == 7 && spans_back[0].sequence == 3 &&
        spans_back[0].start_us == 1000 && spans_back[0].duration_us == 250);
  CHECK(spans_back[1].name == "rank" && spans_back[1].duration_us == 900);
  io::detail::require_consumed(*frame.stream, frame.kind);

  // No SPNS trailer (the byte-stable no-spans encoding): reads as empty,
  // payload fully consumed.
  const std::string without_spans = payload_of(serve::encode_frame(
      serve::kFrameMetrics, [&](io::Writer& w) { serve::write_snapshot(w, snapshot); }));
  frame = serve::parse_frame(without_spans);
  CHECK(serve::read_snapshot(*frame.reader).entries.size() == snapshot.entries.size());
  CHECK(serve::read_trailing_spans(frame).empty());
  io::detail::require_consumed(*frame.stream, frame.kind);

  // Truncation at every byte boundary of the full reply: a clean IoError —
  // except the one prefix that IS the valid no-trailer encoding (the
  // tolerated old-peer frame without SPNS), which must parse clean.
  for (std::size_t cut = 0; cut < with_spans.size(); ++cut) {
    const std::string prefix = with_spans.substr(0, cut);
    bool clean = false;
    try {
      serve::ParsedFrame truncated = serve::parse_frame(prefix);
      serve::read_snapshot(*truncated.reader);
      serve::read_trailing_spans(truncated);
      io::detail::require_consumed(*truncated.stream, truncated.kind);
      clean = true;
    } catch (const io::IoError&) {
    }
    CHECK(clean == (prefix == without_spans));
  }

  // A snapshot entry whose kind byte is from the future is corruption.
  const std::string bad_kind = payload_of(serve::encode_frame(
      serve::kFrameMetrics, [&](io::Writer& w) {
        io::write_section(w, "SNAP", [](io::Writer& s) {
          s.u64(1);
          s.str("x");
          s.u8(99);  // not counter/gauge/histogram
          s.u64(0);
          for (int i = 0; i < 7; ++i) s.f64(0.0);
          s.f64_vec({});
          s.u64_vec({});
        });
      }));
  CHECK(raises_io_error([&] {
    serve::ParsedFrame bad = serve::parse_frame(bad_kind);
    serve::read_snapshot(*bad.reader);
  }));
}

void test_malformed_payloads() {
  nn::Matrix features(2, 2);
  const std::string good = payload_of(serve::encode_frame(
      serve::kFrameQuery, [&](io::Writer& w) { serve::write_features(w, features); }));

  // Wrong magic.
  std::string bad = good;
  bad[0] = 'X';
  CHECK(raises_io_error([&] { serve::parse_frame(bad); }));

  // Future format version (u32 after the 4-byte magic).
  bad = good;
  bad[4] = static_cast<char>(0xEE);
  bad[5] = static_cast<char>(0xFF);
  CHECK(raises_io_error([&] { serve::parse_frame(bad); }));

  // Truncation at every byte boundary: either the header or the section
  // parse must throw — never crash, never succeed.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    const std::string prefix = good.substr(0, cut);
    CHECK(raises_io_error([&] {
      serve::ParsedFrame frame = serve::parse_frame(prefix);
      serve::read_features(*frame.reader);
    }));
  }

  // Trailing bytes after the body section are corruption, not padding.
  bad = good + std::string(3, '\0');
  {
    serve::ParsedFrame frame = serve::parse_frame(bad);
    serve::read_features(*frame.reader);
    CHECK(raises_io_error(
        [&] { io::detail::require_consumed(*frame.stream, frame.kind); }));
  }

  // A slice scan whose best-distance table disagrees with its own counts.
  core::SliceScan scan;
  scan.n_queries = 2;
  scan.n_class_ids = 2;
  scan.candidates = {{}, {}};
  scan.best = {1.0, 2.0, 3.0};  // should be 4 entries
  const std::string lying = payload_of(serve::encode_frame(
      serve::kFrameSlice, [&](io::Writer& w) { serve::write_slice_scan(w, scan); }));
  CHECK(raises_io_error([&] {
    serve::ParsedFrame frame = serve::parse_frame(lying);
    serve::read_slice_scan(*frame.reader);
  }));
}

// The socket layer: oversized length prefixes and mid-frame closes raise
// IoError on the receiver; a close between frames is a clean nullopt.
void test_socket_framing() {
  serve::Listener listener("127.0.0.1", 0);

  const auto with_connection = [&](auto&& sender, auto&& receiver) {
    std::thread client([&] {
      serve::Socket sock = serve::tcp_connect("127.0.0.1", listener.port(), 2000);
      sender(sock);
    });
    serve::Socket accepted = listener.accept();
    CHECK(accepted.valid());
    receiver(accepted);
    client.join();
  };

  // Oversized length prefix: rejected before any allocation.
  with_connection(
      [](serve::Socket& sock) {
        const std::uint64_t huge = serve::kMaxFrameBytes + 1;
        std::uint8_t prefix[8];
        for (int i = 0; i < 8; ++i) prefix[i] = static_cast<std::uint8_t>(huge >> (8 * i));
        sock.send_all(prefix, 8);
      },
      [](serve::Socket& sock) {
        CHECK(raises_io_error([&] { serve::recv_frame(sock); }));
      });

  // Truncated frame: the peer dies mid-payload.
  with_connection(
      [](serve::Socket& sock) {
        const std::string frame = serve::encode_frame(serve::kFrameHello);
        sock.send_all(frame.data(), frame.size() - 2);
        sock.close();
      },
      [](serve::Socket& sock) {
        CHECK(raises_io_error([&] { serve::recv_frame(sock); }));
      });

  // Clean close at a frame boundary: nullopt, not an error.
  with_connection(
      [](serve::Socket& sock) {
        const std::string frame = serve::encode_frame(serve::kFrameHello);
        sock.send_all(frame.data(), frame.size());
        sock.close();
      },
      [](serve::Socket& sock) {
        const auto first = serve::recv_frame(sock);
        CHECK(first.has_value() && first->kind == serve::kFrameHello);
        const auto second = serve::recv_frame(sock);
        CHECK(!second.has_value());
      });
}

void test_ring_queue() {
  serve::RingQueue<int> queue(3);
  CHECK(queue.capacity() == 3);
  CHECK(queue.push(1) && queue.push(2) && queue.push(3));
  CHECK(!queue.push(4));  // full: backpressure, not blocking
  CHECK(queue.size() == 3);

  // Waves drain in arrival order, bounded by max_items.
  std::vector<int> wave = queue.pop_wave(2);
  CHECK(wave.size() == 2 && wave[0] == 1 && wave[1] == 2);
  CHECK(queue.push(5));  // slot freed
  wave = queue.pop_wave(0);  // 0 = everything queued
  CHECK(wave.size() == 2 && wave[0] == 3 && wave[1] == 5);

  // close(): future pushes fail, queued items stay poppable, and the
  // consumer sees an empty wave once drained.
  CHECK(queue.push(6));
  queue.close();
  CHECK(!queue.push(7));
  wave = queue.pop_wave(0);
  CHECK(wave.size() == 1 && wave[0] == 6);
  CHECK(queue.pop_wave(0).empty());

  // A consumer blocked on an empty queue wakes on push.
  serve::RingQueue<int> live(4);
  std::thread consumer([&] {
    const std::vector<int> got = live.pop_wave(0);
    CHECK(!got.empty() && got[0] == 42);
  });
  live.push(42);
  consumer.join();
}

}  // namespace

int main() {
  test_roundtrips();
  test_wire_v2_extensions();
  test_stat_metrics_frames();
  test_malformed_payloads();
  test_socket_framing();
  test_ring_queue();
  return TEST_MAIN_RESULT();
}
