// Trace-level defenses: fixed-length padding uniformity and anonymity-set
// cost structure.
#include "trace/defense.hpp"

#include "netsim/browser.hpp"
#include "netsim/website.hpp"
#include "test_common.hpp"
#include "trace/sequence.hpp"

int main() {
  using namespace wf;

  netsim::WikiSiteConfig site_config;
  site_config.n_pages = 12;
  site_config.seed = 3;
  const netsim::Website site = netsim::make_wiki_site(site_config);
  const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();

  util::Rng rng(5);
  std::vector<netsim::PacketCapture> corpus;
  std::vector<int> labels;
  for (int page = 0; page < site_config.n_pages; ++page) {
    for (int s = 0; s < 4; ++s) {
      corpus.push_back(netsim::load_page(site, farm, page, netsim::BrowserConfig{}, rng));
      labels.push_back(page);
    }
  }

  const trace::FixedLengthDefense fl = trace::FixedLengthDefense::fit(corpus);
  CHECK(fl.record_bytes() > 0);
  CHECK(fl.incoming_records() > 0 && fl.outgoing_records() > 0);

  // After padding, every trace is identical in record count and per-record
  // size, and never smaller than the original.
  for (const netsim::PacketCapture& capture : corpus) {
    const netsim::PacketCapture padded = fl.apply(capture, rng);
    CHECK(padded.records.size() == fl.incoming_records() + fl.outgoing_records());
    std::size_t in_count = 0;
    for (const netsim::Record& r : padded.records) {
      CHECK(r.wire_bytes == fl.record_bytes());
      if (r.direction == netsim::Direction::kIncoming) ++in_count;
    }
    CHECK(in_count == fl.incoming_records());
    CHECK(padded.total_bytes() >= capture.total_bytes());
  }
  CHECK(fl.bandwidth_overhead(corpus) > 0.0);

  // Anonymity sets: labels partition into ceil(12/4) sets; padding within a
  // set costs less than site-wide FL padding.
  const trace::AnonymitySetDefense anon = trace::AnonymitySetDefense::fit(corpus, labels, 4);
  CHECK(anon.n_sets() == 3);
  for (int page = 0; page < site_config.n_pages; ++page) CHECK(anon.set_of(page) >= 0);
  CHECK(anon.set_of(999) == -1);

  const double anon_overhead = anon.bandwidth_overhead(corpus, labels);
  CHECK(anon_overhead > 0.0);
  CHECK(anon_overhead <= fl.bandwidth_overhead(corpus) + 1e-9);

  // Applying the set defense keeps all members of one set identical in
  // shape.
  const netsim::PacketCapture p0 = anon.apply(corpus[0], labels[0], rng);
  CHECK(p0.total_bytes() >= corpus[0].total_bytes());

  // --- Edge cases through FixedLengthDefense: empty corpus, empty capture,
  // single-record capture, and a corpus with every record on one direction.
  {
    // Fit on an empty corpus: all targets zero, apply is the identity on an
    // empty capture, and overhead is 0 (no division by zero).
    const trace::FixedLengthDefense none = trace::FixedLengthDefense::fit({});
    CHECK(none.record_bytes() == 0);
    CHECK(none.incoming_records() == 0 && none.outgoing_records() == 0);
    const netsim::PacketCapture empty;
    const netsim::PacketCapture padded_empty = none.apply(empty, rng);
    CHECK(padded_empty.records.empty());
    CHECK(none.bandwidth_overhead({}) == 0.0);
    CHECK(none.bandwidth_overhead({empty}) == 0.0);

    // Single-record corpus: the padded trace is exactly that one record.
    netsim::PacketCapture single;
    netsim::Record r;
    r.time_ms = 1.0;
    r.direction = netsim::Direction::kIncoming;
    r.wire_bytes = 777;
    r.server = 0;
    single.records.push_back(r);
    const trace::FixedLengthDefense one = trace::FixedLengthDefense::fit({single});
    CHECK(one.record_bytes() == 777);
    CHECK(one.incoming_records() == 1 && one.outgoing_records() == 0);
    const netsim::PacketCapture padded_single = one.apply(single, rng);
    CHECK(padded_single.records.size() == 1);
    CHECK(padded_single.records[0].wire_bytes == 777);

    // All records on one direction: the dummy tail must stay on that
    // direction only, and an empty capture pads to the full target shape.
    netsim::PacketCapture inbound;
    for (int i = 0; i < 4; ++i) {
      netsim::Record d = r;
      d.time_ms = i;
      d.wire_bytes = 100 * (i + 1);
      inbound.records.push_back(d);
    }
    const trace::FixedLengthDefense in_only = trace::FixedLengthDefense::fit({inbound, single});
    CHECK(in_only.outgoing_records() == 0);
    const netsim::PacketCapture padded_from_empty = in_only.apply(empty, rng);
    CHECK(padded_from_empty.records.size() == in_only.incoming_records());
    for (const netsim::Record& q : padded_from_empty.records) {
      CHECK(q.direction == netsim::Direction::kIncoming);
      CHECK(q.wire_bytes == in_only.record_bytes());
    }

    // And the padded single-direction corpus encodes without surprises.
    trace::SequenceOptions seq;
    const std::vector<float> f = trace::encode_capture(in_only.apply(inbound, rng), seq);
    CHECK(f.size() == seq.feature_dim());
  }

  return TEST_MAIN_RESULT();
}
