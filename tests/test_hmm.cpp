// JourneyHmm: random walks follow the graph; Viterbi on a hand-built
// 3-state chain corrects a noisy observation using the link prior.
#include "baselines/hmm.hpp"

#include <set>

#include "test_common.hpp"

namespace {

// Emission helper: `votes` per state out of a 10-vote classifier.
std::vector<wf::core::RankedLabel> emission(std::vector<std::pair<int, int>> votes) {
  std::vector<wf::core::RankedLabel> out;
  for (const auto& [label, v] : votes) out.push_back({label, v, 0.0});
  return out;
}

}  // namespace

int main() {
  using namespace wf;

  // 3-state directed cycle: 0 -> 1 -> 2 -> 0.
  const std::vector<std::vector<int>> links = {{1}, {2}, {0}};
  const baselines::JourneyHmm hmm(links, /*self_loop=*/0.0, /*teleport=*/0.01);
  CHECK(hmm.n_states() == 3);

  // Random walks follow edges (modulo rare teleports, checked statistically).
  util::Rng rng(21);
  std::size_t edge_follows = 0, steps = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<int> walk = hmm.random_walk(0, 12, rng);
    CHECK(walk.size() == 12);
    CHECK(walk.front() == 0);
    for (std::size_t t = 1; t < walk.size(); ++t) {
      CHECK(walk[t] >= 0 && walk[t] < 3);
      ++steps;
      if (walk[t] == (walk[t - 1] + 1) % 3) ++edge_follows;
    }
  }
  CHECK(static_cast<double>(edge_follows) / static_cast<double>(steps) > 0.9);

  // Clean observations decode exactly.
  const std::vector<std::vector<core::RankedLabel>> clean = {
      emission({{0, 10}}), emission({{1, 10}}), emission({{2, 10}}), emission({{0, 10}})};
  CHECK(hmm.viterbi(clean) == std::vector<int>({0, 1, 2, 0}));

  // A confidently wrong middle observation (state 0 at time 1, impossible
  // between 0 and 2 in this cycle) is overridden by the graph prior.
  const std::vector<std::vector<core::RankedLabel>> noisy = {
      emission({{0, 10}}),
      emission({{0, 6}, {1, 4}}),  // classifier prefers 0, truth is 1
      emission({{2, 10}}),
      emission({{0, 10}})};
  CHECK(hmm.viterbi(noisy) == std::vector<int>({0, 1, 2, 0}));

  // Empty journey: empty path.
  CHECK(hmm.viterbi({}).empty());

  return TEST_MAIN_RESULT();
}
