// Parallel/batched paths agree with their serial/scalar counterparts:
//  - crawling with 1 vs N threads yields byte-identical corpora,
//  - the GEMM kernels are bit-identical across pool sizes,
//  - rank_batch agrees with a brute-force linear-scan ranking,
//  - forward_batch / embed(Matrix) match the per-row scalar paths.
#include <algorithm>
#include <cmath>
#include <map>
#include <span>
#include <vector>

#include "core/embedding.hpp"
#include "core/knn.hpp"
#include "data/build.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "test_common.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace wf;

std::vector<float> random_unit(util::Rng& rng, std::size_t dim) {
  std::vector<float> v(dim);
  double norm = 0.0;
  for (float& x : v) {
    x = static_cast<float>(rng.normal());
    norm += static_cast<double>(x) * x;
  }
  norm = std::sqrt(norm);
  for (float& x : v) x = static_cast<float>(x / norm);
  return v;
}

// Straightforward reimplementation of the ranking contract: linear scan
// with double-precision distances, map-free but same vote/tie rules.
std::vector<core::RankedLabel> brute_force_rank(const core::ReferenceSet& refs,
                                                std::span<const float> query, int k_cfg) {
  const std::size_t n = refs.size();
  std::vector<std::pair<double, std::size_t>> distances;
  distances.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    distances.emplace_back(nn::squared_distance(refs.embedding(i), query), i);
  std::sort(distances.begin(), distances.end());
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(k_cfg), n);
  struct Stats {
    int votes = 0;
    double best = 1e300;
  };
  std::map<int, Stats> stats;
  for (std::size_t i = 0; i < n; ++i) {
    Stats& s = stats[refs.label(distances[i].second)];
    if (i < k) ++s.votes;
    s.best = std::min(s.best, distances[i].first);
  }
  std::vector<core::RankedLabel> ranking;
  for (const auto& [label, s] : stats) ranking.push_back({label, s.votes, s.best});
  std::sort(ranking.begin(), ranking.end(),
            [](const core::RankedLabel& a, const core::RankedLabel& b) {
              if (a.votes != b.votes) return a.votes > b.votes;
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.label < b.label;
            });
  return ranking;
}

}  // namespace

int main() {
  // --- Crawl determinism: 1 thread vs N threads, byte-identical corpora.
  {
    netsim::WikiSiteConfig site_config;
    site_config.n_pages = 12;
    site_config.seed = 31;
    const netsim::Website site = netsim::make_wiki_site(site_config);
    const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();
    data::DatasetBuildOptions options;
    options.samples_per_class = 5;
    options.seed = 77;

    util::ThreadPool one(1), many(5);
    const data::CaptureCorpus serial = data::collect_captures(site, farm, {}, options, one);
    const data::CaptureCorpus parallel = data::collect_captures(site, farm, {}, options, many);
    CHECK(serial.size() == parallel.size());
    CHECK(serial.labels == parallel.labels);
    bool identical = true;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const auto& a = serial.captures[i];
      const auto& b = parallel.captures[i];
      if (a.tls != b.tls || a.records.size() != b.records.size()) {
        identical = false;
        break;
      }
      for (std::size_t r = 0; r < a.records.size(); ++r) {
        const auto& ra = a.records[r];
        const auto& rb = b.records[r];
        if (ra.time_ms != rb.time_ms || ra.direction != rb.direction ||
            ra.wire_bytes != rb.wire_bytes || ra.server != rb.server) {
          identical = false;
          break;
        }
      }
      if (!identical) break;
    }
    CHECK(identical);

    // And the encoded datasets match exactly too.
    trace::SequenceOptions seq;
    const data::Dataset da = data::encode_corpus(serial, seq);
    const data::Dataset db = data::encode_corpus(parallel, seq);
    CHECK(da.size() == db.size());
    bool features_equal = true;
    for (std::size_t i = 0; i < da.size(); ++i)
      features_equal = features_equal && (da[i].features == db[i].features);
    CHECK(features_equal);
  }

  // --- Same property with the packet-level transport enabled (loss draws
  // included): byte-identical corpora for any thread count.
  {
    netsim::WikiSiteConfig site_config;
    site_config.n_pages = 8;
    site_config.seed = 47;
    const netsim::Website site = netsim::make_wiki_site(site_config);
    const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();
    data::DatasetBuildOptions options;
    options.samples_per_class = 4;
    options.seed = 55;
    options.browser.transport.enabled = true;
    options.browser.transport.loss_probability = 0.05;
    options.browser.transport.http = netsim::HttpVersion::kHttp2;

    util::ThreadPool one(1), many(5);
    const data::CaptureCorpus serial = data::collect_captures(site, farm, {}, options, one);
    const data::CaptureCorpus parallel = data::collect_captures(site, farm, {}, options, many);
    CHECK(serial.size() == parallel.size());
    CHECK(serial.labels == parallel.labels);
    bool identical = true;
    for (std::size_t i = 0; i < serial.size() && identical; ++i) {
      const auto& a = serial.captures[i];
      const auto& b = parallel.captures[i];
      identical = a.tls == b.tls && a.records.size() == b.records.size();
      for (std::size_t r = 0; identical && r < a.records.size(); ++r) {
        const auto& ra = a.records[r];
        const auto& rb = b.records[r];
        identical = ra.time_ms == rb.time_ms && ra.direction == rb.direction &&
                    ra.wire_bytes == rb.wire_bytes && ra.server == rb.server;
      }
    }
    CHECK(identical);

    // The reassembling encoder is schedule-independent too.
    trace::SequenceOptions seq;
    seq.coalesce_packets = true;
    const data::Dataset da = data::encode_corpus(serial, seq);
    const data::Dataset db = data::encode_corpus(parallel, seq);
    CHECK(da.size() == db.size());
    bool features_equal = true;
    for (std::size_t i = 0; i < da.size(); ++i)
      features_equal = features_equal && (da[i].features == db[i].features);
    CHECK(features_equal);
  }

  // --- GEMM kernels: bit-identical for any pool size.
  {
    util::Rng rng(5);
    nn::Matrix a(37, 53), b(41, 53);
    for (std::size_t i = 0; i < a.rows(); ++i)
      for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = static_cast<float>(rng.normal());
    for (std::size_t i = 0; i < b.rows(); ++i)
      for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = static_cast<float>(rng.normal());
    util::ThreadPool one(1), many(7);
    nn::Matrix c1(a.rows(), b.rows()), cn(a.rows(), b.rows());
    nn::matmul_transposed(a, b, c1, false, &one);
    nn::matmul_transposed(a, b, cn, false, &many);
    bool equal = true;
    for (std::size_t i = 0; i < c1.rows(); ++i)
      for (std::size_t j = 0; j < c1.cols(); ++j) equal = equal && (c1(i, j) == cn(i, j));
    CHECK(equal);
  }

  // --- rank_batch vs brute-force scalar ranking on clustered random data.
  {
    util::Rng rng(11);
    const std::size_t dim = 16;
    core::ReferenceSet refs(dim);
    for (int c = 0; c < 12; ++c) {
      const std::vector<float> center = random_unit(rng, dim);
      for (int s = 0; s < 25; ++s) {
        std::vector<float> e = center;
        for (float& x : e) x += static_cast<float>(rng.normal(0.0, 0.08));
        refs.add(e, 100 + c);
      }
    }
    const core::KnnClassifier knn(15);
    nn::Matrix queries(40, dim);
    for (std::size_t q = 0; q < queries.rows(); ++q) queries.set_row(q, random_unit(rng, dim));

    const auto batch = knn.rank_batch(refs, queries);
    CHECK(batch.size() == queries.rows());
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      const auto expected = brute_force_rank(refs, queries.row_span(q), knn.k());
      const auto& got = batch[q];
      CHECK(got.size() == expected.size());
      for (std::size_t r = 0; r < got.size() && r < expected.size(); ++r) {
        CHECK(got[r].label == expected[r].label);
        CHECK(got[r].votes == expected[r].votes);
        CHECK_NEAR(got[r].distance, expected[r].distance, 1e-4);
      }
      // The scalar rank() is the same kernel on one row.
      const auto single = knn.rank(refs, queries.row_span(q));
      CHECK(single.size() == got.size());
      for (std::size_t r = 0; r < single.size() && r < got.size(); ++r) {
        CHECK(single[r].label == got[r].label);
        CHECK(single[r].votes == got[r].votes);
      }
    }
  }

  // --- forward_batch matches per-row forward to 1e-5.
  {
    nn::Mlp mlp({24, 48, 16, 8}, 99);
    util::Rng rng(21);
    nn::Matrix x(33, 24);
    for (std::size_t i = 0; i < x.rows(); ++i)
      for (std::size_t j = 0; j < x.cols(); ++j)
        x(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
    const nn::Matrix batch = mlp.forward_batch(x);
    CHECK(batch.rows() == x.rows());
    CHECK(batch.cols() == 8);
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const std::vector<float> row = mlp.forward(x.row_span(i));
      for (std::size_t j = 0; j < row.size(); ++j) CHECK_NEAR(batch(i, j), row[j], 1e-5);
    }
  }

  // --- embed(Matrix) matches embed(span) per row to 1e-5.
  {
    core::EmbeddingConfig config;
    config.n_sequences = 2;
    config.timesteps = 16;
    config.embedding_dim = 8;
    config.hidden = {24};
    const core::EmbeddingModel model(config);
    util::Rng rng(8);
    nn::Matrix batch(17, config.input_dim());
    for (std::size_t i = 0; i < batch.rows(); ++i)
      for (std::size_t j = 0; j < batch.cols(); ++j)
        batch(i, j) = static_cast<float>(rng.uniform(0.0, 2.0));
    const nn::Matrix out = model.embed(batch);
    for (std::size_t i = 0; i < batch.rows(); ++i) {
      const std::vector<float> row = model.embed(batch.row_span(i));
      for (std::size_t j = 0; j < row.size(); ++j) CHECK_NEAR(out(i, j), row[j], 1e-5);
    }
  }

  return TEST_MAIN_RESULT();
}
