// OpenWorldDetector: calibration hits the target TPR on monitored samples
// and rejects far-away unmonitored embeddings.
#include "core/openworld.hpp"

#include "test_common.hpp"
#include "util/rng.hpp"

int main() {
  using namespace wf;

  util::Rng rng(3);
  const std::size_t dim = 4;

  // Monitored references: 5 tight clusters around distinct centers.
  core::ReferenceSet refs(dim);
  std::vector<std::vector<float>> centers;
  for (int c = 0; c < 5; ++c) {
    std::vector<float> center(dim);
    for (auto& x : center) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    centers.push_back(center);
    for (int s = 0; s < 10; ++s) {
      std::vector<float> e = center;
      for (auto& x : e) x += static_cast<float>(rng.normal(0.0, 0.05));
      refs.add(e, c);
    }
  }

  // Monitored eval samples: same clusters. Unmonitored: far away.
  nn::Matrix monitored(50, dim), unmonitored(50, dim);
  for (std::size_t i = 0; i < 50; ++i) {
    std::vector<float> m = centers[i % 5];
    for (auto& x : m) x += static_cast<float>(rng.normal(0.0, 0.05));
    monitored.set_row(i, m);
    std::vector<float> u(dim);
    for (auto& x : u) x = static_cast<float>(rng.uniform(4.0, 6.0));
    unmonitored.set_row(i, u);
  }

  core::OpenWorldDetector detector({.neighbour = 3, .target_tpr = 0.9});
  detector.calibrate(refs, monitored);
  CHECK(detector.threshold() > 0.0);

  const core::OpenWorldMetrics m = detector.evaluate(refs, monitored, unmonitored);
  // Calibration guarantee: at least the target TPR on the calibration set.
  CHECK(m.true_positive_rate >= 0.9);
  // The far-away open world must be rejected wholesale here.
  CHECK(m.false_positive_rate < 0.05);
  CHECK(m.precision > 0.9);

  // A detector calibrated for higher TPR has a looser (>=) threshold.
  core::OpenWorldDetector stricter({.neighbour = 3, .target_tpr = 0.5});
  stricter.calibrate(refs, monitored);
  CHECK(stricter.threshold() <= detector.threshold());

  return TEST_MAIN_RESULT();
}
