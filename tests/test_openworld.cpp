// OpenWorldDetector: calibration hits the target TPR on monitored samples
// and rejects far-away unmonitored embeddings; the calibration index is
// robust to floating-point rounding; querying before calibrate() throws;
// a neighbour clamp is surfaced instead of silently degrading.
#include "core/openworld.hpp"

#include <stdexcept>

#include "test_common.hpp"
#include "util/rng.hpp"

namespace {

// One reference at the origin: with neighbour = 1 the k-th-neighbour
// distance of a sample at x is exactly |x|, so thresholds are predictable.
wf::core::ReferenceSet origin_ref() {
  wf::core::ReferenceSet refs(1);
  refs.add(std::vector<float>{0.0f}, 0);
  return refs;
}

}  // namespace

int main() {
  using namespace wf;

  util::Rng rng(3);
  const std::size_t dim = 4;

  // Monitored references: 5 tight clusters around distinct centers.
  core::ReferenceSet refs(dim);
  std::vector<std::vector<float>> centers;
  for (int c = 0; c < 5; ++c) {
    std::vector<float> center(dim);
    for (auto& x : center) x = static_cast<float>(rng.uniform(-1.0, 1.0));
    centers.push_back(center);
    for (int s = 0; s < 10; ++s) {
      std::vector<float> e = center;
      for (auto& x : e) x += static_cast<float>(rng.normal(0.0, 0.05));
      refs.add(e, c);
    }
  }

  // Monitored eval samples: same clusters. Unmonitored: far away.
  nn::Matrix monitored(50, dim), unmonitored(50, dim);
  for (std::size_t i = 0; i < 50; ++i) {
    std::vector<float> m = centers[i % 5];
    for (auto& x : m) x += static_cast<float>(rng.normal(0.0, 0.05));
    monitored.set_row(i, m);
    std::vector<float> u(dim);
    for (auto& x : u) x = static_cast<float>(rng.uniform(4.0, 6.0));
    unmonitored.set_row(i, u);
  }

  core::OpenWorldDetector detector({.neighbour = 3, .target_tpr = 0.9});
  detector.calibrate(refs, monitored);
  CHECK(detector.threshold() > 0.0);

  const core::OpenWorldMetrics m = detector.evaluate(refs, monitored, unmonitored);
  // Calibration guarantee: at least the target TPR on the calibration set.
  CHECK(m.true_positive_rate >= 0.9);
  // The far-away open world must be rejected wholesale here.
  CHECK(m.false_positive_rate < 0.05);
  CHECK(m.precision > 0.9);

  // A detector calibrated for higher TPR has a looser (>=) threshold.
  core::OpenWorldDetector stricter({.neighbour = 3, .target_tpr = 0.5});
  stricter.calibrate(refs, monitored);
  CHECK(stricter.threshold() <= detector.threshold());

  // --- Calibration index at exactly-representable boundaries. With 100
  // samples at distances 1..100, target_tpr = h/100 must select the h-th
  // sample. Naive ceil(tpr * n) overshoots whenever the product rounds just
  // above the integer — at n = 100 that is h ∈ {7, 14, 28, 55, 56}
  // (0.07 * 100 = 7.0000000000000009 → ceil 8) — reporting TPR above
  // target and silently inflating FPR. (n = 10 has no such case: every
  // tenths * 10 product is IEEE-exact, so a 10-sample sweep cannot catch
  // this bug.)
  {
    const core::ReferenceSet one = origin_ref();
    const std::size_t n = 100;
    nn::Matrix samples(n, 1);
    for (std::size_t i = 0; i < n; ++i)
      samples(i, 0) = static_cast<float>(i + 1);  // distances 1..100
    for (std::size_t h = 1; h <= n; ++h) {
      const double tpr = static_cast<double>(h) / 100.0;
      core::OpenWorldDetector d({.neighbour = 1, .target_tpr = tpr});
      d.calibrate(one, samples);
      // Threshold sits on the h-th sample, within the 1e-9 slack.
      CHECK_NEAR(d.threshold(), static_cast<double>(h), 1e-6);
      const core::OpenWorldMetrics exact = d.evaluate(one, samples, nn::Matrix(0, 1));
      CHECK_NEAR(exact.true_positive_rate, tpr, 1e-12);  // not a sample more
    }
  }

  // --- Querying an uncalibrated detector throws instead of silently
  // accepting everything (threshold_ = 1e300 would classify any trace as
  // monitored).
  {
    const core::OpenWorldDetector raw({.neighbour = 3, .target_tpr = 0.9});
    CHECK(!raw.calibrated());
    bool threw = false;
    try {
      raw.is_monitored(refs, std::vector<float>(4, 0.0f));
    } catch (const std::logic_error&) {
      threw = true;
    }
    CHECK(threw);
    threw = false;
    try {
      raw.evaluate(refs, monitored, unmonitored);
    } catch (const std::logic_error&) {
      threw = true;
    }
    CHECK(threw);
    threw = false;
    try {
      (void)raw.threshold();
    } catch (const std::logic_error&) {
      threw = true;
    }
    CHECK(threw);
    // kth_distances is a raw distance computation and needs no calibration.
    CHECK(raw.kth_distances(refs, monitored).size() == monitored.rows());
    CHECK(detector.calibrated());
  }

  // --- Neighbour clamp: fewer references than `neighbour` is surfaced in
  // the metrics instead of silently degrading the detector.
  {
    core::ReferenceSet three(1);
    for (int i = 0; i < 3; ++i) three.add(std::vector<float>{static_cast<float>(i)}, i);
    nn::Matrix samples(4, 1);
    for (std::size_t i = 0; i < 4; ++i) samples(i, 0) = static_cast<float>(i);

    core::OpenWorldDetector clamped({.neighbour = 5, .target_tpr = 0.9});
    CHECK(!clamped.neighbour_clamp_fired());
    clamped.calibrate(three, samples);
    CHECK(clamped.neighbour_clamp_fired());
    CHECK(clamped.evaluate(three, samples, nn::Matrix(0, 1)).neighbour_clamped);

    core::OpenWorldDetector unclamped({.neighbour = 3, .target_tpr = 0.9});
    unclamped.calibrate(three, samples);
    CHECK(!unclamped.neighbour_clamp_fired());
    CHECK(!unclamped.evaluate(three, samples, nn::Matrix(0, 1)).neighbour_clamped);
  }

  return TEST_MAIN_RESULT();
}
