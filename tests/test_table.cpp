// Table formatting and CSV output.
#include "util/table.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "test_common.hpp"

int main() {
  using wf::util::Table;

  CHECK(Table::pct(0.6123) == "61.2%");
  CHECK(Table::pct(0.25, 0) == "25%");
  CHECK(Table::num(3.14159, 2) == "3.14");
  CHECK(Table::num(2.0, 0) == "2");

  Table table({"A", "B"});
  table.add_row({"x", "1"});
  table.add_row({"y, z", "2"});
  CHECK(table.n_rows() == 2);
  CHECK(table.n_columns() == 2);

  bool threw = false;
  try {
    table.add_row({"only-one-cell"});
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);

  const std::string path = "test_table_tmp.csv";
  table.write_csv(path);
  std::ifstream in(path);
  CHECK(static_cast<bool>(in));
  std::stringstream contents;
  contents << in.rdbuf();
  in.close();
  std::remove(path.c_str());
  CHECK(contents.str() == "A,B\nx,1\n\"y, z\",2\n");

  // An unwritable path must throw (regression: write failures used to be
  // swallowed, so `wf run` exited 0 with missing CSVs). A path routed
  // through a regular file is unwritable for any user, root included.
  const std::string blocker = "test_table_blocker.tmp";
  std::ofstream(blocker) << "not a directory";
  threw = false;
  try {
    table.write_csv(blocker + "/out.csv");
  } catch (const std::runtime_error&) {
    threw = true;
  }
  std::remove(blocker.c_str());
  CHECK(threw);

  return TEST_MAIN_RESULT();
}
