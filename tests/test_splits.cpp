// split_samples: per-class counts, disjointness and determinism.
#include "data/splits.hpp"

#include <set>

#include "test_common.hpp"

namespace {

// Tag each sample with a unique feature value so identity survives the split.
wf::data::Dataset make_dataset(int n_classes, int per_class) {
  wf::data::Dataset dataset(2);
  float tag = 0.0f;
  for (int c = 0; c < n_classes; ++c)
    for (int s = 0; s < per_class; ++s) dataset.add({{tag++, static_cast<float>(c)}, c});
  return dataset;
}

std::set<float> tags_of(const wf::data::Dataset& dataset) {
  std::set<float> tags;
  for (std::size_t i = 0; i < dataset.size(); ++i) tags.insert(dataset[i].features[0]);
  return tags;
}

}  // namespace

int main() {
  using namespace wf;

  const data::Dataset dataset = make_dataset(6, 10);
  const data::SampleSplit split = data::split_samples(dataset, 7, 99);

  // Sizes: 7 per class in first, 3 per class in second.
  CHECK(split.first.size() == 6 * 7);
  CHECK(split.second.size() == 6 * 3);
  for (const int c : dataset.classes()) {
    const auto count = [c](const data::Dataset& d) {
      std::size_t n = 0;
      for (std::size_t i = 0; i < d.size(); ++i)
        if (d[i].label == c) ++n;
      return n;
    };
    CHECK(count(split.first) == 7);
    CHECK(count(split.second) == 3);
  }

  // Disjoint: no sample appears on both sides, and together they cover all.
  const std::set<float> first_tags = tags_of(split.first);
  const std::set<float> second_tags = tags_of(split.second);
  for (const float t : second_tags) CHECK(first_tags.find(t) == first_tags.end());
  CHECK(first_tags.size() + second_tags.size() == dataset.size());

  // Deterministic in the seed; different seeds shuffle differently.
  const data::SampleSplit again = data::split_samples(dataset, 7, 99);
  CHECK(tags_of(again.first) == first_tags);
  const data::SampleSplit other = data::split_samples(dataset, 7, 100);
  CHECK(tags_of(other.first) != first_tags);

  // Requesting more than available puts everything in `first`.
  const data::SampleSplit all = data::split_samples(dataset, 100, 1);
  CHECK(all.first.size() == dataset.size());
  CHECK(all.second.size() == 0);

  return TEST_MAIN_RESULT();
}
