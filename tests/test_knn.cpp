// KnnClassifier ranking on a hand-built reference set.
#include "core/knn.hpp"

#include "test_common.hpp"

int main() {
  using namespace wf;

  // Three classes clustered at distinct corners of the plane, 4 refs each.
  core::ReferenceSet refs(2);
  const auto add_cluster = [&](int label, float cx, float cy) {
    const float offsets[4][2] = {{0.0f, 0.0f}, {0.05f, 0.0f}, {0.0f, 0.05f}, {-0.05f, -0.05f}};
    for (const auto& o : offsets) {
      const std::vector<float> e = {cx + o[0], cy + o[1]};
      refs.add(e, label);
    }
  };
  add_cluster(7, 0.0f, 0.0f);
  add_cluster(8, 1.0f, 0.0f);
  add_cluster(9, 0.0f, 1.0f);
  CHECK(refs.size() == 12);
  CHECK(refs.classes() == std::vector<int>({7, 8, 9}));

  const core::KnnClassifier knn(4);
  const std::vector<float> near7 = {0.02f, 0.01f};
  const std::vector<core::RankedLabel> ranking = knn.rank(refs, near7);

  // Full ranking over all classes; the local cluster takes all k votes.
  CHECK(ranking.size() == 3);
  CHECK(ranking.front().label == 7);
  CHECK(ranking.front().votes == 4);
  CHECK(ranking[1].votes == 0 && ranking[2].votes == 0);
  // Zero-vote classes are ordered by nearest-reference distance: 8 and 9
  // are symmetric here, so just check both appear.
  CHECK((ranking[1].label == 8 && ranking[2].label == 9) ||
        (ranking[1].label == 9 && ranking[2].label == 8));

  // A query between clusters 8 and 9 but closer to 8.
  const std::vector<float> between = {0.7f, 0.3f};
  const std::vector<core::RankedLabel> r2 = knn.rank(refs, between);
  CHECK(r2.front().label == 8);

  // k larger than the reference set degrades gracefully.
  const core::KnnClassifier big_k(1000);
  const std::vector<core::RankedLabel> r3 = big_k.rank(refs, near7);
  CHECK(r3.size() == 3);
  int total_votes = 0;
  for (const auto& r : r3) total_votes += r.votes;
  CHECK(total_votes == 12);
  CHECK(r3.front().label == 7);  // tie on votes broken by distance

  // remove_class drops a class from future rankings.
  refs.remove_class(8);
  CHECK(refs.size() == 8);
  const std::vector<core::RankedLabel> r4 = knn.rank(refs, between);
  for (const auto& r : r4) CHECK(r.label != 8);

  // Empty set: empty ranking, no crash.
  const core::ReferenceSet empty(2);
  CHECK(knn.rank(empty, near7).empty());

  // remove_class + re-add rebuilds the dense class-id tables: rankings must
  // match a freshly built set with the same rows (no stale class_id mapping)
  // — the invariant the sharded probe-and-swap relies on.
  {
    core::ReferenceSet mutated(2);
    const auto fill = [](core::ReferenceSet& rs, int label, float cx, float cy) {
      const float offsets[4][2] = {{0.0f, 0.0f}, {0.05f, 0.0f}, {0.0f, 0.05f}, {-0.05f, -0.05f}};
      for (const auto& o : offsets) rs.add(std::vector<float>{cx + o[0], cy + o[1]}, label);
    };
    fill(mutated, 7, 0.0f, 0.0f);
    fill(mutated, 8, 1.0f, 0.0f);
    fill(mutated, 9, 0.0f, 1.0f);
    mutated.remove_class(8);
    fill(mutated, 8, 1.0f, 0.1f);   // refreshed references, shifted cluster
    fill(mutated, 10, 1.0f, 1.0f);  // plus a class the set has never seen

    // Same rows in the same final order, built without any removal.
    core::ReferenceSet rebuilt(2);
    fill(rebuilt, 7, 0.0f, 0.0f);
    fill(rebuilt, 9, 0.0f, 1.0f);
    fill(rebuilt, 8, 1.0f, 0.1f);
    fill(rebuilt, 10, 1.0f, 1.0f);
    CHECK(mutated.size() == rebuilt.size());
    CHECK(mutated.classes() == rebuilt.classes());

    nn::Matrix queries(4, 2);
    queries.set_row(0, std::vector<float>{0.02f, 0.01f});
    queries.set_row(1, std::vector<float>{1.0f, 0.08f});
    queries.set_row(2, std::vector<float>{0.9f, 0.9f});
    queries.set_row(3, std::vector<float>{0.5f, 0.5f});
    const auto batch_mutated = knn.rank_batch(mutated, queries);
    const auto batch_rebuilt = knn.rank_batch(rebuilt, queries);
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      CHECK(batch_mutated[q].size() == batch_rebuilt[q].size());
      for (std::size_t r = 0; r < batch_mutated[q].size(); ++r) {
        CHECK(batch_mutated[q][r].label == batch_rebuilt[q][r].label);
        CHECK(batch_mutated[q][r].votes == batch_rebuilt[q][r].votes);
        CHECK(batch_mutated[q][r].distance == batch_rebuilt[q][r].distance);
      }
      const auto scalar = knn.rank(mutated, queries.row_span(q));
      CHECK(scalar.size() == batch_mutated[q].size());
      for (std::size_t r = 0; r < scalar.size(); ++r)
        CHECK(scalar[r].label == batch_mutated[q][r].label);
    }
    CHECK(batch_mutated[1].front().label == 8);   // refreshed class wins again
    CHECK(batch_mutated[2].front().label == 10);  // new class is rankable
  }

  return TEST_MAIN_RESULT();
}
