// KnnClassifier ranking on a hand-built reference set.
#include "core/knn.hpp"

#include "test_common.hpp"

int main() {
  using namespace wf;

  // Three classes clustered at distinct corners of the plane, 4 refs each.
  core::ReferenceSet refs(2);
  const auto add_cluster = [&](int label, float cx, float cy) {
    const float offsets[4][2] = {{0.0f, 0.0f}, {0.05f, 0.0f}, {0.0f, 0.05f}, {-0.05f, -0.05f}};
    for (const auto& o : offsets) {
      const std::vector<float> e = {cx + o[0], cy + o[1]};
      refs.add(e, label);
    }
  };
  add_cluster(7, 0.0f, 0.0f);
  add_cluster(8, 1.0f, 0.0f);
  add_cluster(9, 0.0f, 1.0f);
  CHECK(refs.size() == 12);
  CHECK(refs.classes() == std::vector<int>({7, 8, 9}));

  const core::KnnClassifier knn(4);
  const std::vector<float> near7 = {0.02f, 0.01f};
  const std::vector<core::RankedLabel> ranking = knn.rank(refs, near7);

  // Full ranking over all classes; the local cluster takes all k votes.
  CHECK(ranking.size() == 3);
  CHECK(ranking.front().label == 7);
  CHECK(ranking.front().votes == 4);
  CHECK(ranking[1].votes == 0 && ranking[2].votes == 0);
  // Zero-vote classes are ordered by nearest-reference distance: 8 and 9
  // are symmetric here, so just check both appear.
  CHECK((ranking[1].label == 8 && ranking[2].label == 9) ||
        (ranking[1].label == 9 && ranking[2].label == 8));

  // A query between clusters 8 and 9 but closer to 8.
  const std::vector<float> between = {0.7f, 0.3f};
  const std::vector<core::RankedLabel> r2 = knn.rank(refs, between);
  CHECK(r2.front().label == 8);

  // k larger than the reference set degrades gracefully.
  const core::KnnClassifier big_k(1000);
  const std::vector<core::RankedLabel> r3 = big_k.rank(refs, near7);
  CHECK(r3.size() == 3);
  int total_votes = 0;
  for (const auto& r : r3) total_votes += r.votes;
  CHECK(total_votes == 12);
  CHECK(r3.front().label == 7);  // tie on votes broken by distance

  // remove_class drops a class from future rankings.
  refs.remove_class(8);
  CHECK(refs.size() == 8);
  const std::vector<core::RankedLabel> r4 = knn.rank(refs, between);
  for (const auto& r : r4) CHECK(r.label != 8);

  // Empty set: empty ranking, no crash.
  const core::ReferenceSet empty(2);
  CHECK(knn.rank(empty, near7).empty());

  return TEST_MAIN_RESULT();
}
