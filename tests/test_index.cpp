// wf::index invariants: the IVF-pruned scan at P = C is bit-identical to
// the exact sharded scan (rankings AND open-world kth distances) for
// several cluster counts; the seeded k-means is deterministic and depends
// only on content, not on how the base store was sharded; recall@10 at a
// pinned (C, P) clears 0.95; an index written to disk and reopened (mmap
// base, journal tails, full reload, rebuild) answers bit-identically to the
// in-memory store mutated the same way; every supported SIMD mode agrees
// with scalar; and the aligned allocation the kernels rely on really is
// 64-byte aligned.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/knn.hpp"
#include "core/openworld.hpp"
#include "core/sharded_reference_set.hpp"
#include "index/ivf.hpp"
#include "index/store.hpp"
#include "nn/matrix.hpp"
#include "nn/simd.hpp"
#include "test_common.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace {

using namespace wf;

static_assert(util::kSimdAlignment == 64, "SIMD tiles assume 64-byte rows");

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<float> random_point(util::Rng& rng, std::size_t dim, double spread = 1.0) {
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng.normal(0.0, spread));
  return v;
}

struct Row {
  std::vector<float> embedding;
  int label;
};

// Clustered rows with deliberate exact duplicates, so distance ties
// exercise the (dist, insertion-id) tie-break across cluster boundaries.
std::vector<Row> make_rows(util::Rng& rng, std::size_t dim, int n_classes, int per_class) {
  std::vector<Row> rows;
  for (int c = 0; c < n_classes; ++c) {
    const std::vector<float> center = random_point(rng, dim);
    for (int s = 0; s < per_class; ++s) {
      std::vector<float> e = center;
      if (s % 4 != 0)
        for (float& x : e) x += static_cast<float>(rng.normal(0.0, 0.15));
      rows.push_back({e, 700 + c});
    }
  }
  return rows;
}

void check_rankings_identical(const std::vector<std::vector<core::RankedLabel>>& a,
                              const std::vector<std::vector<core::RankedLabel>>& b) {
  CHECK(a.size() == b.size());
  for (std::size_t q = 0; q < a.size() && q < b.size(); ++q) {
    CHECK(a[q].size() == b[q].size());
    for (std::size_t i = 0; i < a[q].size() && i < b[q].size(); ++i) {
      CHECK(a[q][i].label == b[q][i].label);
      CHECK(a[q][i].votes == b[q][i].votes);
      CHECK(a[q][i].distance == b[q][i].distance);  // bit-identical, no tolerance
    }
  }
}

// Each query's 10 nearest row ids, via a single-slice scan (every shard's
// k-best candidates, globally sorted).
std::vector<std::vector<std::uint64_t>> top10_rows(const core::KnnClassifier& knn,
                                                   const core::ReferenceStore& store,
                                                   const nn::Matrix& queries) {
  const core::SliceScan scan = knn.scan_slice(store, queries, 0, 1);
  std::vector<std::vector<std::uint64_t>> top(scan.candidates.size());
  for (std::size_t q = 0; q < scan.candidates.size(); ++q) {
    std::vector<core::Candidate> candidates = scan.candidates[q];
    std::sort(candidates.begin(), candidates.end());
    const std::size_t n = std::min<std::size_t>(10, candidates.size());
    for (std::size_t i = 0; i < n; ++i)
      top[q].push_back(candidates[i].second >> core::kCandidateClassBits);
  }
  return top;
}

bool is_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % util::kSimdAlignment == 0;
}

}  // namespace

int main() {
  util::Rng rng(515);
  const std::size_t dim = 16;
  const std::vector<Row> rows = make_rows(rng, dim, 12, 12);

  core::ShardedReferenceSet flat(dim, 3);
  for (const Row& row : rows) flat.add(row.embedding, row.label);

  nn::Matrix queries(24, dim);
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    std::vector<float> point = rows[(q * 7) % rows.size()].embedding;
    for (float& x : point) x += static_cast<float>(rng.normal(0.0, 0.2));
    queries.set_row(q, point);
  }

  const core::KnnClassifier knn(15);
  const core::OpenWorldDetector detector{core::OpenWorldConfig{}};
  const auto exact_rankings = knn.rank_batch(flat, queries);
  const std::vector<double> exact_kth = detector.kth_distances(flat, queries);

  // --- 64-byte alignment of the tiles every SIMD kernel loads ---------------
  {
    util::AlignedVector<float> v(193);
    CHECK(is_aligned(v.data()));
    const nn::Matrix m(5, 37);
    CHECK(is_aligned(m.data()));
    for (std::size_t c = 0; c < flat.shard_count(); ++c)
      CHECK(is_aligned(flat.shard_view(c).data));
  }

  // --- P = C reproduces the exact scan bit for bit, at several C ------------
  for (const std::size_t clusters : {std::size_t{1}, std::size_t{4}, std::size_t{9}}) {
    index::IvfConfig config;
    config.clusters = clusters;
    config.probes = 0;  // all clusters
    const index::IvfReferenceStore ivf(flat, config);
    CHECK(ivf.clusters() == clusters);
    CHECK(ivf.size() == flat.size());
    CHECK(ivf.pruned());
    CHECK(ivf.classes() == flat.classes());
    for (std::size_t c = 0; c < ivf.clusters(); ++c)
      CHECK(is_aligned(ivf.cell(c).data.data()));
    check_rankings_identical(exact_rankings, knn.rank_batch(ivf, queries));
    const std::vector<double> ivf_kth = detector.kth_distances(ivf, queries);
    CHECK(ivf_kth.size() == exact_kth.size());
    for (std::size_t q = 0; q < exact_kth.size(); ++q) CHECK(ivf_kth[q] == exact_kth[q]);
    // The scalar path goes through the same probe plan.
    const auto scalar = knn.rank(ivf, queries.row_span(0));
    CHECK(!scalar.empty() && scalar.front().label == exact_rankings[0].front().label);
    CHECK(scalar.front().distance == exact_rankings[0].front().distance);
  }

  // --- seeded k-means: deterministic, and a function of content only -------
  {
    index::IvfConfig config;
    config.clusters = 5;
    const index::IvfReferenceStore a(flat, config);
    const index::IvfReferenceStore b(flat, config);
    CHECK(a.centroids().size() == b.centroids().size());
    for (std::size_t i = 0; i < a.centroids().size(); ++i)
      CHECK(a.centroids()[i] == b.centroids()[i]);

    // Same rows in the same insertion order, different base sharding: the
    // build gathers by global row id, so the result is identical.
    core::ShardedReferenceSet reshard(dim, 7);
    for (const Row& row : rows) reshard.add(row.embedding, row.label);
    const index::IvfReferenceStore c(reshard, config);
    for (std::size_t i = 0; i < a.centroids().size(); ++i)
      CHECK(a.centroids()[i] == c.centroids()[i]);
    for (std::size_t cell = 0; cell < a.clusters(); ++cell)
      CHECK(a.cell(cell).row_ids == c.cell(cell).row_ids);
    config.probes = 2;
    index::IvfReferenceStore pruned_a(flat, config);
    index::IvfReferenceStore pruned_c(reshard, config);
    check_rankings_identical(knn.rank_batch(pruned_a, queries),
                             knn.rank_batch(pruned_c, queries));
  }

  // --- recall@10 at a pinned (C, P) -----------------------------------------
  {
    util::Rng corpus_rng(9102);
    const std::vector<Row> big = make_rows(corpus_rng, dim, 40, 50);  // 2000 rows
    core::ShardedReferenceSet base(dim, 2);
    for (const Row& row : big) base.add(row.embedding, row.label);
    nn::Matrix probes(50, dim);
    for (std::size_t q = 0; q < probes.rows(); ++q) {
      std::vector<float> point = big[(q * 37) % big.size()].embedding;
      for (float& x : point) x += static_cast<float>(corpus_rng.normal(0.0, 0.2));
      probes.set_row(q, point);
    }
    index::IvfConfig config;
    config.clusters = 32;
    config.probes = 8;
    const index::IvfReferenceStore ivf(base, config);
    CHECK(ivf.effective_probes() == 8);
    const auto want = top10_rows(knn, base, probes);
    const auto got = top10_rows(knn, ivf, probes);
    double sum = 0.0;
    for (std::size_t q = 0; q < want.size(); ++q) {
      std::vector<std::uint64_t> w = want[q], g = got[q];
      std::sort(w.begin(), w.end());
      std::sort(g.begin(), g.end());
      std::vector<std::uint64_t> common;
      std::set_intersection(w.begin(), w.end(), g.begin(), g.end(),
                            std::back_inserter(common));
      sum += static_cast<double>(common.size()) / static_cast<double>(w.size());
    }
    const double recall = sum / static_cast<double>(want.size());
    CHECK(recall >= 0.95);
  }

  // --- on-disk round trip: mmap open answers bit-identically ----------------
  const std::string path = temp_path("wf_test_index.wfx");
  index::IvfConfig disk_config;
  disk_config.clusters = 6;
  index::IvfReferenceStore mem(flat, disk_config);
  {
    index::write_index_file(path, mem);
    const std::unique_ptr<core::ReferenceStore> mapped = index::open_index(path);
    CHECK(mapped->size() == mem.size());
    CHECK(mapped->dim() == mem.dim());
    CHECK(mapped->pruned());
    check_rankings_identical(knn.rank_batch(mem, queries), knn.rank_batch(*mapped, queries));
    check_rankings_identical(exact_rankings, knn.rank_batch(*mapped, queries));

    // Pruned probes match the in-memory pruned scan, query by query.
    const std::unique_ptr<core::ReferenceStore> mapped2 = index::open_index(path, 2);
    index::IvfReferenceStore mem2 = mem;
    mem2.set_probes(2);
    check_rankings_identical(knn.rank_batch(mem2, queries), knn.rank_batch(*mapped2, queries));

    // The info reader sees the same shape without touching the data.
    const index::IndexInfo info = index::read_index_info(path);
    CHECK(info.dim == dim);
    CHECK(info.clusters == 6);
    CHECK(info.rows == mem.size());
    CHECK(info.journal_bytes == 0);
  }

  // --- journal appends: mapped tails == in-memory adds ----------------------
  {
    index::IvfReferenceStore churned = mem;
    index::IndexJournalWriter journal(path);
    util::Rng fresh(77);
    for (int i = 0; i < 9; ++i) {
      const std::vector<float> e = random_point(fresh, dim);
      const int label = (i < 3) ? 990 : rows[static_cast<std::size_t>(i)].label;
      churned.add(e, label);
      journal.add(e, label);
    }
    CHECK(std::filesystem::exists(journal.journal_path()));
    const std::unique_ptr<core::ReferenceStore> mapped = index::open_index(path);
    CHECK(mapped->size() == churned.size());
    check_rankings_identical(knn.rank_batch(churned, queries), knn.rank_batch(*mapped, queries));
    const index::IndexInfo info = index::read_index_info(path);
    CHECK(info.journal_adds == 9);
    CHECK(info.journal_bytes > 0);

    // A removal cannot be masked onto the mapping: open falls back to a full
    // load and still answers exactly like the in-memory store.
    journal.remove_class(700);
    churned.remove_class(700);
    const std::unique_ptr<core::ReferenceStore> reloaded = index::open_index(path);
    CHECK(reloaded->size() == churned.size());
    check_rankings_identical(knn.rank_batch(churned, queries),
                             knn.rank_batch(*reloaded, queries));

    // Compaction: rebuild the file, journal gone, answers == in-memory
    // rebuild of the identically-churned store.
    const std::size_t compacted = index::rebuild_index_file(path);
    CHECK(compacted == churned.size());
    CHECK(!std::filesystem::exists(journal.journal_path()));
    churned.rebuild();
    const std::unique_ptr<core::ReferenceStore> rebuilt = index::open_index(path);
    check_rankings_identical(knn.rank_batch(churned, queries),
                             knn.rank_batch(*rebuilt, queries));
  }

  // --- churn accounting drives maybe_rebuild --------------------------------
  {
    index::IvfConfig config;
    config.clusters = 4;
    config.rebuild_churn = 0.25;
    index::IvfReferenceStore store(flat, config);
    CHECK(store.churn() == 0);
    CHECK(!store.maybe_rebuild());
    util::Rng fresh(31);
    const std::size_t threshold = flat.size() / 4;
    for (std::size_t i = 0; i <= threshold; ++i) store.add(random_point(fresh, dim), 701);
    CHECK(store.churn() > threshold);
    CHECK(store.maybe_rebuild());
    CHECK(store.churn() == 0);
    CHECK(!store.maybe_rebuild());
  }

  // --- every supported SIMD mode agrees with scalar -------------------------
  {
    const nn::SimdMode previous = nn::simd_mode();
    util::Rng vec_rng(41);
    const std::vector<float> a = random_point(vec_rng, 259);
    const std::vector<float> b = random_point(vec_rng, 259);
    const float scalar_dot = nn::detail::dot_kernel(nn::SimdMode::kScalar)(a.data(), b.data(),
                                                                           a.size());
    for (const nn::SimdMode mode : nn::supported_simd_modes()) {
      const float mode_dot = nn::detail::dot_kernel(mode)(a.data(), b.data(), a.size());
      CHECK_NEAR(mode_dot, scalar_dot, 1e-6);
      CHECK(mode_dot == scalar_dot);  // same operation order: bit-identical
      CHECK(nn::set_simd_mode(mode));
      check_rankings_identical(exact_rankings, knn.rank_batch(flat, queries));
      check_rankings_identical(exact_rankings, knn.rank_batch(mem, queries));
    }
    nn::set_simd_mode(previous);
  }

  std::filesystem::remove(path);
  return TEST_MAIN_RESULT();
}
