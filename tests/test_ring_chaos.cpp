// Seeded multi-producer chaos test for serve::RingQueue: N producers
// hammering offer() against one consumer draining in waves, with a closer
// thread racing close() into the middle of the stream. Runs under
// ThreadSanitizer in CI, so any missing synchronization in the
// offer/close/pop_wave triangle surfaces as a hard failure, and the
// accounting below pins down the queue's delivery contract:
//
//   * every accepted item is popped exactly once, in FIFO order per ring,
//   * no wave exceeds its max_items bound,
//   * after close() + drain, pop_wave returns empty forever and offer()
//     reports closed — nothing is lost, nothing is invented.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/queue.hpp"
#include "test_common.hpp"
#include "util/rng.hpp"

namespace {

constexpr int kProducers = 4;
constexpr int kOffersPerProducer = 400;

std::uint64_t encode(int producer, int seq) {
  return static_cast<std::uint64_t>(producer) << 32 | static_cast<std::uint32_t>(seq);
}

void run_trial(std::uint64_t seed, std::size_t capacity, std::size_t max_wave) {
  wf::serve::RingQueue<std::uint64_t> queue(capacity);
  CHECK(queue.capacity() == (capacity == 0 ? 1 : capacity));

  std::vector<std::vector<std::uint64_t>> accepted(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  const wf::util::Rng root(seed);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      wf::util::Rng rng = root.fork(static_cast<std::uint64_t>(p));
      for (int seq = 0; seq < kOffersPerProducer; ++seq) {
        const std::uint64_t item = encode(p, seq);
        bool done = false;
        while (!done) {
          switch (queue.offer(item)) {
            case wf::serve::RingQueue<std::uint64_t>::PushOutcome::accepted:
              accepted[p].push_back(item);
              done = true;
              break;
            case wf::serve::RingQueue<std::uint64_t>::PushOutcome::full:
              // Transient backpressure: yield (sometimes twice, to vary the
              // interleaving deterministically per seed) and try again.
              std::this_thread::yield();
              if (rng.bernoulli(0.5)) std::this_thread::yield();
              break;
            case wf::serve::RingQueue<std::uint64_t>::PushOutcome::closed:
              return;  // the closer won the race; stop producing
          }
        }
      }
    });
  }

  // The closer races close() into the producers' stream: sometimes before
  // they finish, sometimes after, depending on the seeded yield count.
  std::thread closer([&] {
    wf::util::Rng rng = root.fork(1000);
    const std::int64_t yields = rng.range(0, 2000);
    for (std::int64_t i = 0; i < yields; ++i) std::this_thread::yield();
    queue.close();
  });

  std::vector<std::uint64_t> popped;
  std::thread consumer([&] {
    wf::util::Rng rng = root.fork(2000);
    while (true) {
      // Vary the wave bound so chunked and drain-everything pops both race
      // the producers; 0 means "no bound" to pop_wave.
      const std::size_t bound = rng.bernoulli(0.3) ? 0 : max_wave;
      const std::vector<std::uint64_t> wave = queue.pop_wave(bound);
      if (wave.empty()) return;  // closed and drained
      if (bound != 0) CHECK(wave.size() <= bound);
      popped.insert(popped.end(), wave.begin(), wave.end());
    }
  });

  for (std::thread& t : producers) t.join();
  closer.join();
  consumer.join();

  // Closed and drained: no stragglers, and the queue stays terminal.
  CHECK(queue.size() == 0);
  CHECK(queue.offer(encode(9, 9)) == wf::serve::RingQueue<std::uint64_t>::PushOutcome::closed);
  CHECK(queue.pop_wave(0).empty());

  // Per-producer FIFO: the single ring preserves arrival order, so each
  // producer's accepted items must appear in `popped` in sequence order.
  for (int p = 0; p < kProducers; ++p) {
    std::vector<std::uint64_t> mine;
    for (const std::uint64_t item : popped)
      if (static_cast<int>(item >> 32) == p) mine.push_back(item);
    CHECK(mine == accepted[p]);
  }

  // Exactly-once delivery: the popped multiset equals the accepted multiset.
  std::vector<std::uint64_t> all_accepted;
  for (const auto& mine : accepted)
    all_accepted.insert(all_accepted.end(), mine.begin(), mine.end());
  std::sort(all_accepted.begin(), all_accepted.end());
  std::sort(popped.begin(), popped.end());
  CHECK(popped == all_accepted);
  CHECK(std::adjacent_find(popped.begin(), popped.end()) == popped.end());
}

}  // namespace

int main() {
  // Tiny rings maximize full/offer contention; larger ones let the closer
  // race a backlog; max_wave varies the consumer's chunking.
  run_trial(0x11, 1, 1);
  run_trial(0x22, 2, 3);
  run_trial(0x33, 7, 5);
  run_trial(0x44, 64, 8);
  run_trial(0x55, 3, 2);
  run_trial(0x66, 16, 0);
  return TEST_MAIN_RESULT();
}
