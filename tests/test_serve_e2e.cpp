// End-to-end serving equivalence: a wf serve daemon answering over real
// loopback sockets must reproduce in-process fingerprint_batch rankings
// bit-identically — for any request batch size, under concurrent clients
// (coalesced batches), and through the scatter/gather coordinator at
// several shard-slice counts. Also: slice-scan + merge equals rank_batch
// in-process, protocol errors come back as ERRR frames, and STOP shuts
// the daemon down cleanly.
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive.hpp"
#include "data/build.hpp"
#include "data/splits.hpp"
#include "netsim/browser.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/coordinator.hpp"
#include "serve/server.hpp"
#include "test_common.hpp"

using namespace wf;

namespace {

bool rankings_equal(const std::vector<std::vector<core::RankedLabel>>& a,
                    const std::vector<std::vector<core::RankedLabel>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (std::size_t r = 0; r < a[i].size(); ++r) {
      if (a[i][r].label != b[i][r].label || a[i][r].votes != b[i][r].votes ||
          a[i][r].distance != b[i][r].distance)
        return false;
    }
  }
  return true;
}

nn::Matrix rows_of(const data::Dataset& dataset, std::size_t begin, std::size_t end) {
  nn::Matrix m(end - begin, dataset.feature_dim());
  for (std::size_t i = begin; i < end; ++i) m.set_row(i - begin, dataset[i].features);
  return m;
}

}  // namespace

int main() {
  // Small world: 10 pages x 10 loads, 7 train / 3 test per class.
  netsim::WikiSiteConfig site_config;
  site_config.n_pages = 10;
  site_config.seed = 33;
  const netsim::Website site = netsim::make_wiki_site(site_config);
  const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();
  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = 10;
  crawl.seed = 91;
  const data::Dataset dataset = data::build_dataset(site, farm, {}, crawl);
  const data::SampleSplit split = data::split_samples(dataset, 7, 5);
  const data::Dataset& test = split.second;

  core::EmbeddingConfig config;
  config.train_iterations = 120;
  core::AdaptiveFingerprinter attacker(config, /*knn_k=*/10, /*n_shards=*/3);
  attacker.train(split.first);
  const auto expected = attacker.fingerprint_batch(test);

  // --- scan_slice + merge_slice_scans == rank_batch, in process -----------
  for (const std::size_t slice_count : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    std::vector<core::SliceScan> slices;
    for (std::size_t slice = 0; slice < slice_count; ++slice)
      slices.push_back(attacker.scan_slice(test, slice, slice_count));
    const auto merged = core::merge_slice_scans(
        attacker.references().id_to_label(), attacker.classifier().k(),
        attacker.references().size(), slices);
    CHECK(rankings_equal(expected, merged));
  }

  // --- single daemon over loopback: any frame batch size ------------------
  {
    serve::Server server(std::make_shared<serve::LocalHandler>(attacker.clone()), {});
    server.start();
    serve::Client client("127.0.0.1", server.port(), 2000);

    const serve::ServerInfo info = client.hello();
    CHECK(info.attacker == "adaptive");
    CHECK(info.n_references == attacker.references().size());
    CHECK(info.knn_k == attacker.classifier().k());
    CHECK(info.classes == attacker.target_classes());

    for (const std::size_t batch : {std::size_t{1}, std::size_t{5}, test.size()}) {
      std::vector<std::vector<core::RankedLabel>> served;
      for (std::size_t begin = 0; begin < test.size(); begin += batch) {
        const std::size_t end = std::min(test.size(), begin + batch);
        serve::Rankings part = client.query(rows_of(test, begin, end));
        for (auto& ranking : part) served.push_back(std::move(ranking));
      }
      CHECK(rankings_equal(expected, served));
    }

    // Concurrent clients: coalesced into shared model batches, every reply
    // still belongs to its own request, bit-identically.
    std::vector<std::thread> clients;
    // vector<char>, not vector<bool>: the threads write disjoint elements,
    // which bit-packing would turn into same-byte data races.
    std::vector<char> ok(test.size(), 0);
    for (std::size_t i = 0; i < test.size(); ++i) {
      clients.emplace_back([&, i] {
        serve::Client mine("127.0.0.1", server.port(), 2000);
        const serve::Rankings part = mine.query_until_accepted(rows_of(test, i, i + 1));
        ok[i] = rankings_equal({expected[i]}, part);
      });
    }
    for (std::thread& t : clients) t.join();
    for (std::size_t i = 0; i < test.size(); ++i) CHECK(ok[i]);
    CHECK(server.stats().requests >= test.size());

    // Live introspection over the wire: a STAT roundtrip returns the global
    // metrics snapshot. The registry is process-wide (shared by every server
    // in this binary), so assert lower bounds, not exact counts.
    {
      const obs::Snapshot live = client.stats();
      const obs::SnapshotEntry* requests = live.find("serve.requests_total");
      CHECK(requests != nullptr && requests->count >= test.size());
      const obs::SnapshotEntry* queries = live.find("serve.queries_total");
      CHECK(queries != nullptr && queries->count >= test.size() * 4);
      const obs::SnapshotEntry* qryb_ms = live.find("serve.handle_ms.qryb");
      CHECK(qryb_ms != nullptr && qryb_ms->kind == obs::InstrumentKind::histogram);
      CHECK(qryb_ms->count >= test.size());
      CHECK(live.find("serve.queue_depth") != nullptr);
      // The STAT handler itself is metered: a second snapshot has seen at
      // least the first roundtrip's handle time.
      const obs::Snapshot again = client.stats();
      const obs::SnapshotEntry* stat_ms = again.find("serve.handle_ms.stat");
      CHECK(stat_ms != nullptr && stat_ms->count >= 1);
    }

    // Unsupported/garbage frames answer ERRR instead of crashing.
    {
      serve::Socket raw = serve::tcp_connect("127.0.0.1", server.port(), 2000);
      serve::send_frame(raw, serve::encode_frame("XXXX"));
      const auto reply = serve::recv_frame(raw);
      CHECK(reply.has_value() && reply->kind == serve::kFrameError);
      const serve::ErrorReply error = serve::read_error(*reply->reader);
      CHECK(!error.retryable);
    }

    // STOP: BYEE reply, then wait() returns and the port closes.
    client.stop_server();
    server.wait();
    server.stop();
    const serve::ServerStats stats = server.stats();
    CHECK(stats.queries >= test.size() * 4);  // 3 sweeps + concurrent singles
    CHECK(stats.batches <= stats.requests);   // coalescing never splits requests
  }

  // --- scatter/gather: sliced backends behind a coordinator ---------------
  for (const std::size_t slice_count : {std::size_t{2}, std::size_t{3}}) {
    std::vector<std::unique_ptr<serve::Server>> backends;
    std::vector<serve::BackendAddress> addresses;
    for (std::size_t slice = 0; slice < slice_count; ++slice) {
      backends.push_back(std::make_unique<serve::Server>(
          std::make_shared<serve::LocalHandler>(attacker.clone(), slice, slice_count),
          serve::ServerConfig{}));
      backends.back()->start();
      addresses.push_back({"127.0.0.1", backends.back()->port()});
    }
    serve::Server coordinator(std::make_shared<serve::CoordinatorHandler>(addresses, 2000),
                              {});
    coordinator.start();

    serve::Client client("127.0.0.1", coordinator.port(), 2000);
    const serve::ServerInfo info = client.hello();
    CHECK(info.slice_count == 1 && info.n_references == attacker.references().size());

    std::vector<std::vector<core::RankedLabel>> served;
    for (std::size_t begin = 0; begin < test.size(); begin += 4) {
      const std::size_t end = std::min(test.size(), begin + 4);
      serve::Rankings part = client.query(rows_of(test, begin, end));
      for (auto& ranking : part) served.push_back(std::move(ranking));
    }
    CHECK(rankings_equal(expected, served));

    // A coordinator refuses to be someone else's shard slice.
    bool threw = false;
    try {
      client.scan(rows_of(test, 0, 1));
    } catch (const serve::ServeError& e) {
      threw = !e.retryable();
    }
    CHECK(threw);

    coordinator.stop();
    for (auto& backend : backends) backend->stop();
  }

  // --- coordinator handshake validation -----------------------------------
  {
    // One backend claiming slice 0/2 cannot stand alone.
    serve::Server half(std::make_shared<serve::LocalHandler>(attacker.clone(), 0, 2), {});
    half.start();
    bool threw = false;
    try {
      serve::CoordinatorHandler bad({{"127.0.0.1", half.port()}}, 2000);
    } catch (const std::runtime_error&) {
      threw = true;
    }
    CHECK(threw);
    half.stop();
  }

  return TEST_MAIN_RESULT();
}
