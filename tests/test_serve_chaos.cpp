// Chaos suite for the serving stack: every fault kind injected by the
// FaultProxy must cost at most the faulted request — each query either
// comes back bit-identical to the in-process answer or raises a classified
// error, and the daemon survives the whole sweep. Plus failover: a killed
// backend fails queries fast with ERRR(unavailable) when partial answers
// are off, degrades them (DGRD meta, covered < total) when they are on,
// and heals back to full bit-identical coverage once the backend revives.
// Plus the graceful drain: a request in flight during stop() still gets
// its reply, and one arriving mid-drain gets ERRR(shutdown), not a cut.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive.hpp"
#include "data/build.hpp"
#include "data/splits.hpp"
#include "netsim/browser.hpp"
#include "serve/client.hpp"
#include "serve/coordinator.hpp"
#include "serve/fault.hpp"
#include "serve/server.hpp"
#include "test_common.hpp"

using namespace wf;

namespace {

using Expected = std::vector<std::vector<core::RankedLabel>>;

bool rankings_equal(const Expected& a, const Expected& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (std::size_t r = 0; r < a[i].size(); ++r) {
      if (a[i][r].label != b[i][r].label || a[i][r].votes != b[i][r].votes ||
          a[i][r].distance != b[i][r].distance)
        return false;
    }
  }
  return true;
}

nn::Matrix rows_of(const data::Dataset& dataset, std::size_t begin, std::size_t end) {
  nn::Matrix m(end - begin, dataset.feature_dim());
  for (std::size_t i = begin; i < end; ++i) m.set_row(i - begin, dataset[i].features);
  return m;
}

void test_names() {
  CHECK(serve::parse_fault_kind("corrupt") == serve::FaultKind::corrupt);
  CHECK(std::string(serve::fault_kind_name(serve::FaultKind::blackhole)) == "blackhole");
  bool threw = false;
  try {
    serve::parse_fault_kind("meteor");
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);
  CHECK(std::string(serve::backend_health_name(serve::BackendHealth::suspect)) == "suspect");
  CHECK(std::string(serve::error_class_name(serve::ErrorClass::unavailable)) == "unavailable");
}

// Every fault kind at a hefty rate against one daemon: answered queries are
// bit-identical, failed ones are classified, and the daemon outlives it all.
void test_fault_sweep(const core::AdaptiveFingerprinter& attacker, const data::Dataset& test,
                      const Expected& expected) {
  serve::ServerConfig server_config;
  server_config.request_timeout_ms = 1000;
  serve::Server server(std::make_shared<serve::LocalHandler>(attacker.clone()), server_config);
  server.start();

  const std::size_t n_queries = std::min<std::size_t>(test.size(), 12);
  const std::vector<serve::FaultKind> kinds = {
      serve::FaultKind::drop, serve::FaultKind::delay, serve::FaultKind::truncate,
      serve::FaultKind::corrupt, serve::FaultKind::blackhole};
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    serve::FaultPlan plan;
    plan.kind = kinds[k];
    plan.rate = 0.2;
    plan.delay_ms = 20;
    plan.seed = 7 + k;
    serve::FaultProxy proxy("127.0.0.1", 0, {"127.0.0.1", server.port()}, plan);

    serve::ClientConfig client_config;
    client_config.timeout_ms = 300;
    serve::Client client("127.0.0.1", proxy.port(), client_config);
    std::size_t answered = 0, classified = 0;
    for (std::size_t i = 0; i < n_queries; ++i) {
      try {
        const serve::Rankings part = client.query(rows_of(test, i, i + 1));
        // Streams can only be cut or stalled by the other kinds, so an
        // answered query is bit-identical. Corruption is the exception: a
        // flipped byte inside a section payload (a distance, a vote) is
        // indistinguishable from data on a checksum-less wire, so there the
        // invariant is weaker — parse or classified error, never a crash.
        if (kinds[k] != serve::FaultKind::corrupt)
          CHECK(rankings_equal({expected[i]}, part));
        ++answered;
      } catch (const serve::ServeError&) {
        ++classified;  // the server answered ERRR with a class
      } catch (const io::IoError&) {
        ++classified;  // transport cut or client-side deadline
      }
    }
    CHECK(answered + classified == n_queries);
    proxy.stop();
    const serve::FaultProxyStats stats = proxy.stats();
    CHECK(stats.connections >= 1);
    CHECK(stats.chunks >= stats.faults);
  }

  // The daemon took the whole sweep without wedging: a direct client still
  // gets the full batch, bit-identically.
  serve::Client direct("127.0.0.1", server.port(), 2000);
  CHECK(rankings_equal(expected, direct.query(rows_of(test, 0, test.size()))));
  server.stop();
}

// Kill one of two shard backends. Strict coordinators fail fast with a
// classified retryable ERRR; --partial ones answer degraded from the live
// slice; both heal to full bit-identical coverage after a revival.
void test_failover(const core::AdaptiveFingerprinter& attacker, const data::Dataset& test,
                   const Expected& expected) {
  std::vector<std::unique_ptr<serve::Server>> backends;
  std::vector<serve::BackendAddress> addresses;
  for (std::size_t slice = 0; slice < 2; ++slice) {
    backends.push_back(std::make_unique<serve::Server>(
        std::make_shared<serve::LocalHandler>(attacker.clone(), slice, 2),
        serve::ServerConfig{}));
    backends.back()->start();
    addresses.push_back({"127.0.0.1", backends.back()->port()});
  }

  serve::CoordinatorConfig coordinator_config;
  coordinator_config.timeout_ms = 1000;
  coordinator_config.retry = {2, 1, 4, 0.5, 11};
  coordinator_config.reconnect = {8, 20, 50, 0.5, 12};
  auto strict = std::make_shared<serve::CoordinatorHandler>(addresses, coordinator_config);
  coordinator_config.allow_partial = true;
  auto partial = std::make_shared<serve::CoordinatorHandler>(addresses, coordinator_config);

  serve::Server front_strict(strict, {});
  serve::Server front_partial(partial, {});
  front_strict.start();
  front_partial.start();
  serve::Client client_strict("127.0.0.1", front_strict.port(), 2000);
  serve::Client client_partial("127.0.0.1", front_partial.port(), 2000);

  // Healthy: both answer full coverage, bit-identical, no DGRD marker.
  const nn::Matrix all = rows_of(test, 0, test.size());
  serve::ReplyMeta meta;
  CHECK(rankings_equal(expected, client_strict.query(all, &meta)));
  CHECK(!meta.degraded && meta.covered_references == meta.total_references);
  CHECK(rankings_equal(expected, client_partial.query(all, &meta)));
  CHECK(!meta.degraded);

  // Kill backend 1 (destruction closes its sockets, so peers see EOF).
  backends[1].reset();

  // Strict: classified retryable failure; two of them take the backend out
  // of rotation, after which queries fail fast without paying any timeout.
  for (int round = 0; round < 2; ++round) {
    bool unavailable = false;
    try {
      client_strict.query(all);
    } catch (const serve::ServeError& e) {
      unavailable = e.retryable() && e.klass() == serve::ErrorClass::unavailable;
    }
    CHECK(unavailable);
  }
  CHECK(strict->status()[1].health == serve::BackendHealth::down);
  {
    const auto t0 = std::chrono::steady_clock::now();
    bool unavailable = false;
    try {
      client_strict.query(all);
    } catch (const serve::ServeError& e) {
      unavailable = e.klass() == serve::ErrorClass::unavailable;
    }
    CHECK(unavailable);
    CHECK(std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(500));
  }

  // Partial: the live slice answers, flagged degraded with its coverage.
  for (int round = 0; round < 2; ++round) {
    const serve::Rankings part = client_partial.query(all, &meta);
    CHECK(part.size() == test.size());
    CHECK(meta.degraded);
    CHECK(meta.covered_references > 0);
    CHECK(meta.covered_references < meta.total_references);
    CHECK(meta.total_references == attacker.references().size());
  }
  CHECK(partial->status()[1].health == serve::BackendHealth::down);

  // Revive slice 1 on the same port; both reconnect loops should pick it
  // up and restore full, bit-identical coverage.
  serve::ServerConfig revived_config;
  revived_config.port = addresses[1].port;
  serve::Server revived(std::make_shared<serve::LocalHandler>(attacker.clone(), 1, 2),
                        revived_config);
  revived.start();
  const auto wait_until_up = [&](serve::CoordinatorHandler& handler) {
    for (int i = 0; i < 400; ++i) {
      if (handler.status()[1].health == serve::BackendHealth::up) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return false;
  };
  CHECK(wait_until_up(*strict));
  CHECK(wait_until_up(*partial));
  CHECK(rankings_equal(expected, client_strict.query(all, &meta)));
  CHECK(!meta.degraded && meta.covered_references == meta.total_references);
  CHECK(rankings_equal(expected, client_partial.query(all, &meta)));
  CHECK(!meta.degraded);

  front_strict.stop();
  front_partial.stop();
}

// Slows the model call down so stop() demonstrably overlaps an in-flight
// request.
class DelayHandler final : public serve::Handler {
 public:
  DelayHandler(std::shared_ptr<serve::Handler> inner, int delay_ms)
      : inner_(std::move(inner)), delay_ms_(delay_ms) {}
  serve::ServerInfo info() const override { return inner_->info(); }
  serve::RankReply rank(const nn::Matrix& queries) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return inner_->rank(queries);
  }
  core::SliceScan scan(const nn::Matrix& queries) override { return inner_->scan(queries); }

 private:
  std::shared_ptr<serve::Handler> inner_;
  int delay_ms_;
};

void test_graceful_drain(const core::AdaptiveFingerprinter& attacker, const data::Dataset& test,
                         const Expected& expected) {
  serve::Server server(
      std::make_shared<DelayHandler>(std::make_shared<serve::LocalHandler>(attacker.clone()), 400),
      serve::ServerConfig{});
  server.start();

  serve::Client early("127.0.0.1", server.port(), 2000);
  serve::Client late("127.0.0.1", server.port(), 2000);
  late.hello();  // connection established before the listener closes

  std::atomic<bool> got_reply{false};
  std::thread in_flight([&] {
    try {
      const serve::Rankings part = early.query(rows_of(test, 0, 1));
      got_reply = rankings_equal({expected[0]}, part);
    } catch (const std::exception&) {
      got_reply = false;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));  // request is in the worker

  std::thread stopper([&] { server.stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // stop() is draining the wave

  // A request arriving mid-drain: explicit retryable shutdown ERRR.
  bool shutdown_seen = false;
  try {
    late.query(rows_of(test, 1, 2));
  } catch (const serve::ServeError& e) {
    shutdown_seen = e.retryable() && e.klass() == serve::ErrorClass::shutdown;
  } catch (const io::IoError&) {
  }
  CHECK(shutdown_seen);

  in_flight.join();
  stopper.join();
  CHECK(got_reply);  // the in-flight request still got its full reply
}

}  // namespace

int main() {
  test_names();

  // Small world shared by every scenario below.
  netsim::WikiSiteConfig site_config;
  site_config.n_pages = 8;
  site_config.seed = 33;
  const netsim::Website site = netsim::make_wiki_site(site_config);
  const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();
  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = 8;
  crawl.seed = 91;
  const data::Dataset dataset = data::build_dataset(site, farm, {}, crawl);
  const data::SampleSplit split = data::split_samples(dataset, 5, 5);
  const data::Dataset& test = split.second;

  core::EmbeddingConfig config;
  config.train_iterations = 100;
  core::AdaptiveFingerprinter attacker(config, /*knn_k=*/10, /*n_shards=*/3);
  attacker.train(split.first);
  const Expected expected = attacker.fingerprint_batch(test);

  test_fault_sweep(attacker, test, expected);
  test_failover(attacker, test, expected);
  test_graceful_drain(attacker, test, expected);
  return TEST_MAIN_RESULT();
}
