#pragma once

// Tiny assertion harness for the ctest suite: each test file is a
// standalone binary; a failed CHECK prints the location and the binary
// exits nonzero.
#include <cmath>
#include <iostream>

namespace wf::test {
inline int failures = 0;
}

#define CHECK(cond)                                                              \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::cerr << "CHECK failed at " << __FILE__ << ":" << __LINE__ << ": "     \
                << #cond << "\n";                                                \
      ++wf::test::failures;                                                      \
    }                                                                            \
  } while (0)

#define CHECK_NEAR(a, b, tol)                                                    \
  do {                                                                           \
    const double _va = (a), _vb = (b);                                           \
    if (!(std::fabs(_va - _vb) <= (tol))) {                                      \
      std::cerr << "CHECK_NEAR failed at " << __FILE__ << ":" << __LINE__        \
                << ": " << #a << " = " << _va << " vs " << #b << " = " << _vb    \
                << " (tol " << (tol) << ")\n";                                   \
      ++wf::test::failures;                                                      \
    }                                                                            \
  } while (0)

#define TEST_MAIN_RESULT()                                                       \
  (wf::test::failures == 0                                                       \
       ? (std::cout << "OK\n", 0)                                                \
       : (std::cerr << wf::test::failures << " check(s) failed\n", 1))
