// Packet-level transport simulator: disabled-mode equivalence with the
// pre-transport simulator (golden fingerprints), segmentation payload
// conservation, loss/retransmit determinism, ACK/overhead structure, and
// HTTP/2 interleaving vs HTTP/1.1 ordering.
#include <cstring>
#include <set>
#include <vector>

#include "netsim/browser.hpp"
#include "netsim/connection.hpp"
#include "netsim/http2.hpp"
#include "netsim/transport.hpp"
#include "netsim/website.hpp"
#include "test_common.hpp"
#include "trace/sequence.hpp"

namespace {

using namespace wf;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t capture_hash(const netsim::PacketCapture& c) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const netsim::Record& r : c.records) {
    std::uint64_t tbits;
    std::memcpy(&tbits, &r.time_ms, sizeof(tbits));
    h = fnv1a(h, &tbits, sizeof(tbits));
    const std::uint8_t dir = static_cast<std::uint8_t>(r.direction);
    h = fnv1a(h, &dir, sizeof(dir));
    h = fnv1a(h, &r.wire_bytes, sizeof(r.wire_bytes));
    h = fnv1a(h, &r.server, sizeof(r.server));
  }
  return h;
}

bool captures_equal(const netsim::PacketCapture& a, const netsim::PacketCapture& b) {
  if (a.tls != b.tls || a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const netsim::Record& ra = a.records[i];
    const netsim::Record& rb = b.records[i];
    if (ra.time_ms != rb.time_ms || ra.direction != rb.direction ||
        ra.wire_bytes != rb.wire_bytes || ra.server != rb.server)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  using netsim::Direction;

  // --- Disabled transport reproduces the pre-PR record-level simulator
  // bit-identically (goldens recorded from the pre-transport build).
  {
    netsim::WikiSiteConfig sc;
    sc.n_pages = 6;
    sc.seed = 17;
    const netsim::Website site = netsim::make_wiki_site(sc);
    const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();
    util::Rng rng(123);
    const netsim::PacketCapture c =
        netsim::load_page(site, farm, 2, netsim::BrowserConfig{}, rng);
    CHECK(c.records.size() == 87);
    CHECK(c.total_bytes() == 869390);
    CHECK(capture_hash(c) == 0xad7ea93aa41b393cull);
  }
  {
    netsim::WikiSiteConfig sc;
    sc.n_pages = 6;
    sc.seed = 17;
    sc.tls = netsim::TlsVersion::kTls13;
    const netsim::Website site = netsim::make_wiki_site(sc);
    const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();
    netsim::BrowserConfig bc;
    bc.record_padding = {netsim::RecordPaddingPolicy::Kind::kRandom, 256};
    util::Rng rng(321);
    const netsim::PacketCapture c = netsim::load_page(site, farm, 4, bc, rng);
    CHECK(c.records.size() == 97);
    CHECK(c.total_bytes() == 1172378);
    CHECK(capture_hash(c) == 0xc9c34813cbbeb8ddull);
  }
  {
    netsim::GithubSiteConfig sc;
    sc.n_pages = 5;
    sc.seed = 9;
    const netsim::Website site = netsim::make_github_site(sc);
    const netsim::ServerFarm farm = netsim::ServerFarm::for_github();
    util::Rng rng(777);
    const netsim::PacketCapture c =
        netsim::load_page(site, farm, 3, netsim::BrowserConfig{}, rng);
    CHECK(c.records.size() == 111);
    CHECK(c.total_bytes() == 1214417);
    CHECK(capture_hash(c) == 0xc8a70ae4589c1aabull);
  }

  // --- TcpConnection: sum of data payloads equals the bytes handed in,
  // with and without loss; every packet fits in MSS + headers.
  {
    netsim::TransportConfig tc;
    tc.enabled = true;
    const netsim::Server server{20.0, 4.0, 100.0};
    for (const double loss : {0.0, 0.3}) {
      netsim::TransportConfig cfg = tc;
      cfg.loss_probability = loss;
      netsim::TcpConnection conn(cfg, server, 0);
      util::Rng rng(42);
      std::vector<netsim::Record> out;
      const std::uint32_t kBytes[] = {100'000, 1, 1460, 1461, 37'777};
      std::uint64_t fed = 0;
      for (const std::uint32_t b : kBytes) {
        conn.send_record(Direction::kIncoming, b, rng, out);
        fed += b;
      }
      std::uint64_t observed = 0;
      for (const netsim::Record& r : out) {
        CHECK(r.wire_bytes <= cfg.mss + cfg.packet_overhead);
        CHECK(r.wire_bytes >= cfg.packet_overhead);
        if (r.direction == Direction::kIncoming)
          observed += r.wire_bytes - cfg.packet_overhead;
        else
          CHECK(r.wire_bytes == cfg.packet_overhead);  // pure ACK
      }
      CHECK(observed == fed);
      CHECK(conn.data_packets() ==
            static_cast<std::uint64_t>(69 + 1 + 1 + 2 + 26));  // ceil(bytes/mss) each
    }
  }

  // --- Loss/retransmit determinism: identical captures for one seed,
  // different packet timings for another.
  {
    netsim::WikiSiteConfig sc;
    sc.n_pages = 4;
    sc.seed = 5;
    const netsim::Website site = netsim::make_wiki_site(sc);
    const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();
    netsim::BrowserConfig bc;
    bc.transport.enabled = true;
    bc.transport.loss_probability = 0.2;
    util::Rng rng_a(9001), rng_b(9001), rng_c(9002);
    const netsim::PacketCapture a = netsim::load_page(site, farm, 1, bc, rng_a);
    const netsim::PacketCapture b = netsim::load_page(site, farm, 1, bc, rng_b);
    const netsim::PacketCapture c = netsim::load_page(site, farm, 1, bc, rng_c);
    CHECK(captures_equal(a, b));
    CHECK(!captures_equal(a, c));
    CHECK(a.records.size() > 50);  // packet-level: far more wire units

    // Loss delays retransmitted segments by whole RTOs: the lossy load's
    // last packet lands later than the loss-free load's (at 20% loss some
    // of the hundreds of segments always retransmit).
    netsim::BrowserConfig clean = bc;
    clean.transport.loss_probability = 0.0;
    util::Rng rng_d(9001);
    const netsim::PacketCapture d = netsim::load_page(site, farm, 1, clean, rng_d);
    CHECK(!d.records.empty() && !a.records.empty());
    CHECK(a.records.back().time_ms > d.records.back().time_ms + bc.transport.rto_ms / 2.0);
  }

  // --- HTTP/1.1 ordering vs HTTP/2 interleaving (record planners).
  {
    const std::vector<std::uint32_t> responses = {30'000, 20'000, 5'000};
    const auto h1 = netsim::plan_http1(responses, 16'384);
    // Streams appear in order, each completed before the next starts.
    int current = 0;
    std::uint64_t h1_bytes = 0;
    for (const netsim::RecordPlan& p : h1) {
      CHECK(p.stream >= current);
      current = p.stream;
      h1_bytes += p.payload;
    }
    CHECK(h1_bytes == 55'000);
    CHECK(h1.back().last);

    const auto h2 = netsim::plan_http2(responses, 8'192, 9);
    // Round-robin: the first three DATA frames hit three distinct streams.
    CHECK(h2.size() >= 3);
    CHECK(h2[0].stream == 0 && h2[1].stream == 1 && h2[2].stream == 2);
    // Stream 0 still has data after stream 2 finished -> true interleaving.
    bool interleaved = false;
    bool stream2_done = false;
    for (const netsim::RecordPlan& p : h2) {
      if (p.stream == 2 && p.last) stream2_done = true;
      else if (stream2_done && p.stream == 0) interleaved = true;
    }
    CHECK(interleaved);
    std::uint64_t h2_bytes = 0;
    for (const netsim::RecordPlan& p : h2) h2_bytes += p.payload - 9;
    CHECK(h2_bytes == 55'000);

    // End-to-end: HTTP/2 multiplexing produces more, smaller wire units on
    // the shared connection than HTTP/1.1 for the same page.
    netsim::WikiSiteConfig sc;
    sc.n_pages = 4;
    sc.seed = 5;
    const netsim::Website site = netsim::make_wiki_site(sc);
    const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();
    netsim::BrowserConfig bc;
    bc.transport.enabled = true;
    bc.transport.http = netsim::HttpVersion::kHttp1;
    util::Rng rng_1(64), rng_2(64);
    const netsim::PacketCapture h1_cap = netsim::load_page(site, farm, 2, bc, rng_1);
    bc.transport.http = netsim::HttpVersion::kHttp2;
    const netsim::PacketCapture h2_cap = netsim::load_page(site, farm, 2, bc, rng_2);
    CHECK(!captures_equal(h1_cap, h2_cap));
    CHECK(h1_cap.records.size() > 0 && h2_cap.records.size() > 0);
  }

  // --- kAuto resolves the HTTP version per Website (github defaults to
  // HTTP/2, wiki to HTTP/1.1).
  {
    netsim::GithubSiteConfig gc;
    gc.n_pages = 3;
    const netsim::Website github = netsim::make_github_site(gc);
    CHECK(github.http == netsim::HttpVersion::kHttp2);
    netsim::WikiSiteConfig wc;
    wc.n_pages = 3;
    const netsim::Website wiki = netsim::make_wiki_site(wc);
    CHECK(wiki.http == netsim::HttpVersion::kHttp1);
  }

  // --- Packet reassembly in the encoder: coalescing merges consecutive
  // same-direction same-server packets, and a segmented record coalesces
  // back to one logical unit.
  {
    netsim::PacketCapture packets;
    const auto rec = [](double t, Direction d, std::uint32_t bytes, int server) {
      netsim::Record r;
      r.time_ms = t;
      r.direction = d;
      r.wire_bytes = bytes;
      r.server = server;
      return r;
    };
    packets.records = {
        rec(0.0, Direction::kOutgoing, 400, 0),
        rec(1.0, Direction::kIncoming, 1500, 0),
        rec(1.1, Direction::kIncoming, 1500, 0),
        rec(1.2, Direction::kIncoming, 1100, 0),
        rec(1.3, Direction::kOutgoing, 40, 0),
        rec(2.0, Direction::kIncoming, 1500, 1),
    };
    trace::SequenceOptions flat;
    flat.quantum = 1;
    trace::SequenceOptions merged = flat;
    merged.coalesce_packets = true;
    const std::vector<float> f = trace::encode_capture(packets, merged);
    // One merged incoming main-host unit of 4100 B (the 40 B pure ACK is
    // transport chrome: dropped, and it does not break the run).
    netsim::PacketCapture whole;
    whole.records = {rec(0.0, Direction::kOutgoing, 400, 0),
                     rec(1.0, Direction::kIncoming, 4100, 0),
                     rec(2.0, Direction::kIncoming, 1500, 1)};
    CHECK(f == trace::encode_capture(whole, flat));
    CHECK(f != trace::encode_capture(packets, flat));
  }

  return TEST_MAIN_RESULT();
}
