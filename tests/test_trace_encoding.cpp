// Fig.-4 trace encoding: determinism, dimensionality, routing and
// quantization.
#include "trace/sequence.hpp"

#include "test_common.hpp"

namespace {

wf::netsim::Record record(double t, wf::netsim::Direction dir, std::uint32_t bytes, int server) {
  wf::netsim::Record r;
  r.time_ms = t;
  r.direction = dir;
  r.wire_bytes = bytes;
  r.server = server;
  return r;
}

}  // namespace

int main() {
  using namespace wf;
  using netsim::Direction;

  netsim::PacketCapture capture;
  capture.records = {
      record(0.0, Direction::kOutgoing, 300, 0),
      record(1.0, Direction::kIncoming, 4000, 0),
      record(2.0, Direction::kIncoming, 9000, 1),
      record(3.0, Direction::kOutgoing, 350, 1),
      record(4.0, Direction::kIncoming, 1200, 2),
  };

  trace::SequenceOptions seq3;
  CHECK(seq3.feature_dim() ==
        static_cast<std::size_t>(seq3.n_sequences) * static_cast<std::size_t>(seq3.timesteps));

  const std::vector<float> f3 = trace::encode_capture(capture, seq3);
  CHECK(f3.size() == seq3.feature_dim());
  // Deterministic: same capture, same options, same features.
  CHECK(f3 == trace::encode_capture(capture, seq3));

  // Routing: 2 outgoing records in sequence 0, 1 incoming main-host record
  // in sequence 1, 2 incoming other-host records in sequence 2.
  const std::size_t t = static_cast<std::size_t>(seq3.timesteps);
  CHECK(f3[0] > 0.0f && f3[1] > 0.0f && f3[2] == 0.0f);
  CHECK(f3[t] > 0.0f && f3[t + 1] == 0.0f);
  CHECK(f3[2 * t] > 0.0f && f3[2 * t + 1] > 0.0f && f3[2 * t + 2] == 0.0f);

  // 2-sequence directional encoding merges all incoming records.
  trace::SequenceOptions seq2 = seq3;
  seq2.n_sequences = 2;
  const std::vector<float> f2 = trace::encode_capture(capture, seq2);
  CHECK(f2.size() == seq2.feature_dim());
  CHECK(f2[t] > 0.0f && f2[t + 1] > 0.0f && f2[t + 2] > 0.0f && f2[t + 3] == 0.0f);

  // Quantization: sizes within the same quantum bucket encode identically,
  // different buckets differ.
  // Ceil-quantization buckets with quantum 1024: (0,1024], (1024,2048], ...
  netsim::PacketCapture a, b, c;
  a.records = {record(0.0, Direction::kIncoming, 1001, 0)};
  b.records = {record(0.0, Direction::kIncoming, 1000, 0)};
  c.records = {record(0.0, Direction::kIncoming, 2500, 0)};
  trace::SequenceOptions q;
  q.quantum = 1024;
  CHECK(trace::encode_capture(a, q) == trace::encode_capture(b, q));
  CHECK(trace::encode_capture(a, q) != trace::encode_capture(c, q));

  // quantum = 1 distinguishes nearby sizes.
  trace::SequenceOptions fine;
  fine.quantum = 1;
  CHECK(trace::encode_capture(a, fine) != trace::encode_capture(b, fine));

  // Larger records encode to larger values; everything stays in [0, 1].
  const std::vector<float> fa = trace::encode_capture(a, q);
  const std::vector<float> fc = trace::encode_capture(c, q);
  const std::size_t in0 = static_cast<std::size_t>(q.timesteps);
  CHECK(fc[in0] > fa[in0]);
  for (const float v : f3) CHECK(v >= 0.0f && v <= 1.0f);

  // Overflow beyond `timesteps` records per sequence is dropped, not UB.
  netsim::PacketCapture big;
  for (int i = 0; i < 500; ++i) big.records.push_back(record(i, Direction::kIncoming, 700, 0));
  const std::vector<float> fbig = trace::encode_capture(big, seq3);
  CHECK(fbig.size() == seq3.feature_dim());

  // --- Edge cases: empty capture, single-record capture, all records on
  // one direction — full-width feature vectors, no UB, and the untouched
  // slots are explicit zeros rather than silently reused memory.
  {
    const netsim::PacketCapture empty;
    for (const bool coalesce : {false, true}) {
      trace::SequenceOptions opts = seq3;
      opts.coalesce_packets = coalesce;
      const std::vector<float> fe = trace::encode_capture(empty, opts);
      CHECK(fe.size() == opts.feature_dim());
      for (const float v : fe) CHECK(v == 0.0f);
    }

    netsim::PacketCapture single;
    single.records = {record(0.0, Direction::kIncoming, 900, 0)};
    for (const bool coalesce : {false, true}) {
      trace::SequenceOptions opts = seq3;
      opts.coalesce_packets = coalesce;
      const std::vector<float> fs = trace::encode_capture(single, opts);
      CHECK(fs.size() == opts.feature_dim());
      CHECK(fs[t] > 0.0f);  // the one record lands in sequence 1...
      std::size_t nonzero = 0;
      for (const float v : fs) nonzero += v > 0.0f ? 1 : 0;
      CHECK(nonzero == 1);  // ...and nowhere else
    }

    netsim::PacketCapture one_way;
    for (int i = 0; i < 5; ++i)
      one_way.records.push_back(record(i, Direction::kOutgoing, 500 + 100 * i, i % 3));
    const std::vector<float> fo = trace::encode_capture(one_way, seq3);
    CHECK(fo.size() == seq3.feature_dim());
    for (std::size_t i = 0; i < 5; ++i) CHECK(fo[i] > 0.0f);
    // Both incoming sequences stay all-zero.
    for (std::size_t i = t; i < 3 * t; ++i) CHECK(fo[i] == 0.0f);
  }

  return TEST_MAIN_RESULT();
}
