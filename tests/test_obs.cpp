// wf::obs: counter/gauge basics, histogram bucket + quantile exactness vs a
// sorted-vector oracle, registry kind checks, multi-threaded counter/span
// recording (exercised under the TSan preset), and snapshot determinism
// (same seed -> byte-identical CSV).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_common.hpp"
#include "util/rng.hpp"

using wf::obs::Counter;
using wf::obs::Gauge;
using wf::obs::Histogram;
using wf::obs::InstrumentKind;
using wf::obs::Registry;
using wf::obs::Snapshot;
using wf::obs::SnapshotEntry;
using wf::obs::Span;

namespace {

// The formula the obs::Histogram contract promises: the exact percentile
// math eval/exp_serve and eval/exp_robust used before the port.
double oracle_quantile(std::vector<double> sorted, double p) {
  std::sort(sorted.begin(), sorted.end());
  return sorted[static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1))];
}

std::string file_contents(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void test_counter_gauge() {
  Counter counter;
  CHECK(counter.value() == 0);
  counter.inc();
  counter.inc(41);
  CHECK(counter.value() == 42);
  counter.reset();
  CHECK(counter.value() == 0);

  Gauge gauge;
  gauge.set(7);
  gauge.add(-10);
  CHECK(gauge.value() == -3);
}

void test_histogram_exact_quantiles() {
  Histogram hist;
  CHECK(hist.count() == 0);
  CHECK(hist.quantile(0.5) == 0.0);  // empty: a defined zero, not UB

  wf::util::Rng rng(1234);
  std::vector<double> samples;
  samples.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0.01, 5000.0);
    samples.push_back(v);
    hist.record(v);
  }

  CHECK(hist.count() == samples.size());
  CHECK(hist.exact());
  CHECK(hist.min() == *std::min_element(samples.begin(), samples.end()));
  CHECK(hist.max() == *std::max_element(samples.begin(), samples.end()));
  double sum = 0.0;
  for (const double v : samples) sum += v;
  CHECK_NEAR(hist.sum(), sum, 1e-6);

  // Quantiles must be bit-identical to the sorted-vector oracle — this is
  // what keeps the exp_serve/exp_robust CSVs unchanged after the port.
  for (const double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
    CHECK(hist.quantile(p) == oracle_quantile(samples, p));

  // Bucket counts must agree with manual bucketing against bounds().
  const std::vector<double>& bounds = Histogram::bounds();
  std::vector<std::uint64_t> expected(bounds.size() + 1, 0);
  for (const double v : samples) {
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
    ++expected[static_cast<std::size_t>(it - bounds.begin())];
  }
  CHECK(hist.bucket_counts() == expected);

  hist.reset();
  CHECK(hist.count() == 0);
  CHECK(hist.quantile(0.99) == 0.0);
}

void test_histogram_overflow_degrades() {
  Histogram hist;
  // Past the retention capacity quantiles degrade to bucket upper bounds;
  // they must stay finite, ordered and within [min, max]-ish bucket range.
  const std::size_t n = Histogram::kSampleCapacity + 100;
  wf::util::Rng rng(99);
  for (std::size_t i = 0; i < n; ++i) hist.record(rng.uniform(0.5, 80.0));
  CHECK(hist.count() == n);
  CHECK(!hist.exact());
  const double p50 = hist.quantile(0.5);
  const double p99 = hist.quantile(0.99);
  CHECK(p50 > 0.0);
  CHECK(p50 <= p99);
  // A bucket upper bound overshoots by at most 2x: with samples <= 80 the
  // answer can never exceed the first bound past 80 (0.001 * 2^17).
  CHECK(p99 <= 0.001 * 131072.0);
  std::uint64_t total = 0;
  for (const std::uint64_t c : hist.bucket_counts()) total += c;
  CHECK(total == n);
}

void test_registry() {
  Registry registry;
  Counter& c = registry.counter("a.requests");
  CHECK(&registry.counter("a.requests") == &c);  // same name -> same instance
  registry.gauge("b.depth").set(3);
  registry.histogram("c.latency").record(1.5);

  bool threw = false;
  try {
    registry.gauge("a.requests");  // kind mismatch must throw
  } catch (const std::logic_error&) {
    threw = true;
  }
  CHECK(threw);

  c.inc(5);
  const Snapshot snapshot = registry.snapshot();
  CHECK(snapshot.entries.size() == 3);
  // Deterministic order: sorted by name.
  CHECK(snapshot.entries[0].name == "a.requests");
  CHECK(snapshot.entries[1].name == "b.depth");
  CHECK(snapshot.entries[2].name == "c.latency");
  CHECK(snapshot.find("a.requests") != nullptr);
  CHECK(snapshot.find("a.requests")->count == 5);
  CHECK(snapshot.find("b.depth")->value == 3.0);
  CHECK(snapshot.find("c.latency")->kind == InstrumentKind::histogram);
  CHECK(snapshot.find("c.latency")->buckets.size() == Histogram::kBucketCount + 1);
  CHECK(snapshot.find("missing") == nullptr);

  registry.reset();
  CHECK(registry.snapshot().find("a.requests")->count == 0);
}

void test_multithreaded_counters() {
  Registry registry;
  Counter& counter = registry.counter("mt.hits");
  Histogram& hist = registry.histogram("mt.latency");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.inc();
        hist.record(static_cast<double>(t) + 0.5);
      }
    });
  for (std::thread& thread : threads) thread.join();
  CHECK(counter.value() == static_cast<std::uint64_t>(kThreads) * kPerThread);
  CHECK(hist.count() == static_cast<std::uint64_t>(kThreads) * kPerThread);
}

void test_spans() {
  const bool was_enabled = wf::obs::enabled();
  wf::obs::set_enabled(false);
  wf::obs::clear_spans();
  {
    const Span off("obs_test_disabled");
  }
  CHECK(wf::obs::recent_spans().empty());  // disabled spans record nothing

  wf::obs::set_enabled(true);
  {
    const Span outer("obs_test_outer");
    const Span inner("obs_test_inner");  // nested: one depth below outer
  }
  std::vector<wf::obs::SpanRecord> spans = wf::obs::recent_spans();
  CHECK(spans.size() == 2);
  // Completion order: inner closes first, and nests one level deeper.
  CHECK(spans[0].name == "obs_test_inner");
  CHECK(spans[0].depth == 1);
  CHECK(spans[1].name == "obs_test_outer");
  CHECK(spans[1].depth == 0);
  CHECK(spans[0].sequence < spans[1].sequence);
  // Every span also lands in the global "span.<name>" histogram.
  const Snapshot global = Registry::global().snapshot();
  CHECK(global.find("span.obs_test_outer") != nullptr);
  CHECK(global.find("span.obs_test_outer")->count >= 1);

  // Multi-threaded span recording: per-thread rings, ordinals and
  // sequences must stay consistent under concurrency (TSan preset).
  wf::obs::clear_spans();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 300;  // > ring capacity: exercises wrap
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const Span span("obs_test_mt");
      }
    });
  for (std::thread& thread : threads) thread.join();
  spans = wf::obs::recent_spans();
  // Each thread keeps its newest kSpanRingCapacity spans. The main thread's
  // ring also holds earlier spans of this test, so bound loosely.
  CHECK(spans.size() >= kThreads * wf::obs::kSpanRingCapacity);
  std::uint64_t last_thread = 0;
  std::uint64_t last_sequence = 0;
  bool ordered = true;
  for (const wf::obs::SpanRecord& span : spans) {
    if (span.thread == last_thread && !(last_sequence <= span.sequence)) ordered = false;
    last_thread = span.thread;
    last_sequence = span.sequence;
  }
  CHECK(ordered);  // merged output sorted by (thread, sequence)

  wf::obs::clear_spans();
  wf::obs::set_enabled(was_enabled);
}

void test_snapshot_determinism() {
  // Two registries fed the same seeded stream must render byte-identical
  // CSVs (sorted names, fixed formatting) — the snapshot path is part of
  // the determinism contract.
  const std::string path_a = "obs_snapshot_a.csv";
  const std::string path_b = "obs_snapshot_b.csv";
  for (const std::string& path : {path_a, path_b}) {
    Registry registry;
    wf::util::Rng rng(777);
    for (int i = 0; i < 100; ++i) {
      registry.counter("z.events").inc(static_cast<std::uint64_t>(rng.uniform(0, 5)));
      registry.histogram("a.latency").record(rng.uniform(0.1, 40.0));
      registry.gauge("m.depth").set(i);
    }
    wf::obs::snapshot_table(registry.snapshot()).write_csv(path);
  }
  const std::string a = file_contents(path_a);
  CHECK(!a.empty());
  CHECK(a == file_contents(path_b));
  CHECK(a.find("a.latency") < a.find("m.depth"));
  CHECK(a.find("m.depth") < a.find("z.events"));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace

int main() {
  test_counter_gauge();
  test_histogram_exact_quantiles();
  test_histogram_overflow_degrades();
  test_registry();
  test_multithreaded_counters();
  test_spans();
  test_snapshot_determinism();
  return TEST_MAIN_RESULT();
}
