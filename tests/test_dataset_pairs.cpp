// Dataset container semantics and PairGenerator contracts.
#include "data/dataset.hpp"
#include "data/pairs.hpp"

#include "test_common.hpp"

int main() {
  using namespace wf;

  data::Dataset dataset(3);
  for (int c = 0; c < 4; ++c)
    for (int s = 0; s < 5; ++s)
      dataset.add({{static_cast<float>(c), static_cast<float>(s), 1.0f}, c * 10});

  CHECK(dataset.size() == 20);
  CHECK(dataset.feature_dim() == 3);
  CHECK(dataset.classes() == std::vector<int>({0, 10, 20, 30}));
  CHECK(dataset.n_classes() == 4);

  const data::Dataset only20 = dataset.filter([](int l) { return l == 20; });
  CHECK(only20.size() == 5);
  CHECK(only20.classes() == std::vector<int>({20}));

  const nn::Matrix m = dataset.to_matrix();
  CHECK(m.rows() == 20 && m.cols() == 3);
  CHECK(m(0, 0) == 0.0f && m(19, 0) == 3.0f);
  CHECK(dataset.labels_of().size() == 20);

  // Width mismatch is rejected.
  bool threw = false;
  try {
    dataset.add({{1.0f}, 0});
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  CHECK(threw);

  // PairGenerator: positives share a label, negatives don't; deterministic.
  data::PairGenerator gen(dataset, data::PairStrategy::kRandom, 77);
  int positives = 0, negatives = 0;
  for (int i = 0; i < 400; ++i) {
    const data::SamplePair p = gen.next();
    if (p.positive) {
      CHECK(dataset[p.a].label == dataset[p.b].label);
      CHECK(p.a != p.b);  // 5 samples per class: a distinct partner exists
      ++positives;
    } else {
      CHECK(dataset[p.a].label != dataset[p.b].label);
      ++negatives;
    }
  }
  CHECK(positives == 200 && negatives == 200);

  data::PairGenerator gen_a(dataset, data::PairStrategy::kRandom, 5);
  data::PairGenerator gen_b(dataset, data::PairStrategy::kRandom, 5);
  for (int i = 0; i < 50; ++i) {
    const data::SamplePair pa = gen_a.next();
    const data::SamplePair pb = gen_b.next();
    CHECK(pa.a == pb.a && pa.b == pb.b && pa.positive == pb.positive);
  }

  // Hard-negative strategy still yields valid negatives, and triplets obey
  // the anchor/positive/negative label contract.
  data::PairGenerator hard(dataset, data::PairStrategy::kHardNegative, 8);
  for (int i = 0; i < 200; ++i) {
    const data::SamplePair p = hard.next();
    if (!p.positive) CHECK(dataset[p.a].label != dataset[p.b].label);
    const data::SampleTriplet t = hard.next_triplet();
    CHECK(dataset[t.anchor].label == dataset[t.positive].label);
    CHECK(dataset[t.anchor].label != dataset[t.negative].label);
  }

  return TEST_MAIN_RESULT();
}
