// util::Env: live environment parsing, clamping, and CLI overrides.
#include "util/env.hpp"

#include <cstdlib>

#include "test_common.hpp"

using wf::util::Env;

int main() {
  // Defaults with a clean environment.
  unsetenv("WF_SMOKE");
  unsetenv("WF_THREADS");
  unsetenv("WF_SHARDS");
  unsetenv("WF_RESULTS_DIR");
  CHECK(!Env::smoke());
  CHECK(Env::threads() == 0);
  CHECK(Env::shards() == 0);
  CHECK(Env::results_dir() == "results");

  // Live reads: flipping the environment between calls is visible.
  setenv("WF_SMOKE", "1", 1);
  CHECK(Env::smoke());
  unsetenv("WF_SMOKE");
  CHECK(!Env::smoke());

  // Falsy spellings must not enable smoke mode (regression: any set
  // WF_SMOKE, including WF_SMOKE=0, used to count as true).
  for (const char* falsy : {"0", "false", "FALSE", "off", "OFF", "no", "No"}) {
    setenv("WF_SMOKE", falsy, 1);
    CHECK(!Env::smoke());
  }
  for (const char* truthy : {"1", "true", "on", "yes", ""}) {
    setenv("WF_SMOKE", truthy, 1);
    CHECK(Env::smoke());
  }
  unsetenv("WF_SMOKE");

  // Parsing and clamping.
  setenv("WF_THREADS", "3", 1);
  CHECK(Env::threads() == 3);
  setenv("WF_THREADS", "100000", 1);
  CHECK(Env::threads() == 512);
  setenv("WF_THREADS", "0", 1);
  CHECK(Env::threads() == 0);  // invalid -> unset, caller falls back
  setenv("WF_THREADS", "garbage", 1);
  CHECK(Env::threads() == 0);
  // Trailing garbage is rejected too (regression: "4x" used to silently
  // parse as 4), with a warning naming the variable and an auto fallback.
  setenv("WF_THREADS", "4x", 1);
  CHECK(Env::threads() == 0);
  setenv("WF_THREADS", "12 cores", 1);
  CHECK(Env::threads() == 0);
  unsetenv("WF_THREADS");

  setenv("WF_SHARDS", "7", 1);
  CHECK(Env::shards() == 7);
  setenv("WF_SHARDS", "100000", 1);
  CHECK(Env::shards() == 4096);
  setenv("WF_SHARDS", "-2", 1);
  CHECK(Env::shards() == 0);
  unsetenv("WF_SHARDS");

  setenv("WF_RESULTS_DIR", "/tmp/wf-out", 1);
  CHECK(Env::results_dir() == "/tmp/wf-out");
  setenv("WF_RESULTS_DIR", "", 1);
  CHECK(Env::results_dir() == "results");  // empty value -> default
  unsetenv("WF_RESULTS_DIR");

  // Overrides beat the environment.
  setenv("WF_SHARDS", "7", 1);
  Env::override_shards(3);
  CHECK(Env::shards() == 3);
  unsetenv("WF_SHARDS");
  CHECK(Env::shards() == 3);

  setenv("WF_RESULTS_DIR", "/tmp/wf-env", 1);
  Env::override_results_dir("cli-out");
  CHECK(Env::results_dir() == "cli-out");
  unsetenv("WF_RESULTS_DIR");

  Env::override_smoke(true);
  CHECK(Env::smoke());
  Env::override_threads(9);
  CHECK(Env::threads() == 9);

  // log_effective only prints once; calling twice must be harmless.
  Env::log_effective();
  Env::log_effective();

  return TEST_MAIN_RESULT();
}
