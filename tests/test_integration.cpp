// Integration: the full provision -> initialize -> fingerprint pipeline on
// a quickstart-sized world (8 pages x 8 loads, short training) must beat
// the random-guess baseline by a wide margin, deterministically.
#include "core/adaptive.hpp"
#include "data/splits.hpp"
#include "netsim/browser.hpp"

#include "test_common.hpp"

int main() {
  using namespace wf;

  netsim::WikiSiteConfig site_config;
  site_config.n_pages = 8;
  site_config.seed = 17;
  const netsim::Website site = netsim::make_wiki_site(site_config);
  const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();

  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = 8;
  crawl.seed = 23;
  const data::Dataset dataset = data::build_dataset(site, farm, {}, crawl);
  CHECK(dataset.size() == 64);
  CHECK(dataset.n_classes() == 8);

  const data::SampleSplit split = data::split_samples(dataset, 6, 5);
  CHECK(split.first.size() == 48);
  CHECK(split.second.size() == 16);

  core::EmbeddingConfig config;
  config.train_iterations = 250;  // short schedule, CI-friendly
  core::AdaptiveFingerprinter attacker(config, /*knn_k=*/10);
  const core::TrainStats stats = attacker.provision(split.first);
  CHECK(stats.iterations == 250);
  CHECK(stats.pair_accuracy > 0.6);  // pairs are learnable well within budget
  attacker.initialize(split.first);
  CHECK(attacker.references().size() == split.first.size());

  const core::EvaluationResult eval = attacker.evaluate(split.second, 3);
  // Random top-1 on 8 classes is 12.5%; require a wide margin above it.
  CHECK(eval.curve.top(1) > 0.5);
  CHECK(eval.curve.top(3) >= eval.curve.top(1));

  // fingerprint() returns a full ranking whose best guess matches evaluate.
  const std::vector<core::RankedLabel> ranking = attacker.fingerprint(split.second[0].features);
  CHECK(ranking.size() == 8);

  // Determinism: a second attacker built identically agrees exactly.
  core::AdaptiveFingerprinter twin(config, 10);
  twin.provision(split.first);
  twin.initialize(split.first);
  const core::EvaluationResult twin_eval = twin.evaluate(split.second, 3);
  CHECK_NEAR(twin_eval.curve.top(1), eval.curve.top(1), 1e-12);

  // Adaptation hook: re-crawl page 3 and swap its references (same count as
  // the original 6 per class, so k-NN voting stays balanced). The refreshed
  // class must be recognized and overall accuracy must not degrade.
  const int page = 3;
  data::DatasetBuildOptions recrawl;
  recrawl.samples_per_class = 6;
  recrawl.seed = 777;
  const data::Dataset fresh = data::build_dataset(site, farm, {page}, recrawl);
  attacker.adapt_class(page, fresh);
  CHECK(attacker.references().size() == split.first.size());
  CHECK(attacker.probe_class_accuracy(page, fresh) > 0.5);
  CHECK(attacker.evaluate(split.second, 3).curve.top(1) >= eval.curve.top(1) - 0.25);

  return TEST_MAIN_RESULT();
}
