// ThreadPool: full coverage of the index range, exception propagation,
// graceful nesting, WF_THREADS resolution, and clean drain on destruction.
#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "test_common.hpp"

int main() {
  using wf::util::ThreadPool;

  // Every index visited exactly once, results land in their own slots.
  {
    ThreadPool pool(4);
    CHECK(pool.size() == 4);
    const std::size_t n = 10'000;
    std::vector<int> visits(n, 0);
    pool.parallel_for(0, n, [&](std::size_t i) { ++visits[i]; });
    bool all_once = true;
    for (const int v : visits) all_once = all_once && (v == 1);
    CHECK(all_once);
  }

  // A size-1 pool runs inline and serially.
  {
    ThreadPool serial(1);
    CHECK(serial.size() == 1);
    std::vector<std::size_t> order;
    serial.parallel_for(0, 100, [&](std::size_t i) { order.push_back(i); });
    CHECK(order.size() == 100);
    bool in_order = true;
    for (std::size_t i = 0; i < order.size(); ++i) in_order = in_order && (order[i] == i);
    CHECK(in_order);
  }

  // parallel_blocks covers [begin, end) with disjoint blocks.
  {
    ThreadPool pool(3);
    std::vector<int> visits(1000, 0);
    pool.parallel_blocks(0, visits.size(), 64, [&](std::size_t lo, std::size_t hi) {
      CHECK(lo < hi);
      for (std::size_t i = lo; i < hi; ++i) ++visits[i];
    });
    bool all_once = true;
    for (const int v : visits) all_once = all_once && (v == 1);
    CHECK(all_once);
  }

  // Exceptions propagate to the caller, and the pool stays usable after.
  {
    ThreadPool pool(4);
    bool caught = false;
    try {
      pool.parallel_for(0, 1000, [](std::size_t i) {
        if (i == 437) throw std::runtime_error("boom");
      });
    } catch (const std::runtime_error& e) {
      caught = std::string(e.what()) == "boom";
    }
    CHECK(caught);
    std::atomic<int> count{0};
    pool.parallel_for(0, 256, [&](std::size_t) { ++count; });
    CHECK(count.load() == 256);
  }

  // Nested parallel_for must not deadlock (inner call runs inline).
  {
    ThreadPool pool(4);
    std::atomic<int> total{0};
    pool.parallel_for(0, 8, [&](std::size_t) {
      pool.parallel_for(0, 8, [&](std::size_t) { ++total; });
    });
    CHECK(total.load() == 64);
  }

  // Empty and single-element ranges.
  {
    ThreadPool pool(2);
    int calls = 0;
    pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
    CHECK(calls == 0);
    pool.parallel_for(7, 8, [&](std::size_t i) { calls += static_cast<int>(i); });
    CHECK(calls == 7);
  }

  // WF_THREADS resolves the default count; invalid values fall back.
  {
    setenv("WF_THREADS", "3", 1);
    CHECK(ThreadPool::default_thread_count() == 3);
    setenv("WF_THREADS", "0", 1);
    CHECK(ThreadPool::default_thread_count() >= 1);
    unsetenv("WF_THREADS");
    CHECK(ThreadPool::default_thread_count() >= 1);
  }

  // Destruction drains pending shards (scoped pools above already exercise
  // the join path; a fresh pool destroyed immediately must not hang).
  { ThreadPool pool(8); }

  return TEST_MAIN_RESULT();
}
