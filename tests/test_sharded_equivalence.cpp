// The sharded reference store is an exact drop-in for the unsharded scan:
// for shard counts 1, 2 and 7, rank()/rank_batch() and kth_distances() are
// bit-identical to the ReferenceSet path, before and after probe-and-swap
// (remove_class + re-add), and AdaptiveFingerprinter's sharded swap keeps
// class ids fresh.
#include <cmath>
#include <vector>

#include "core/knn.hpp"
#include "core/openworld.hpp"
#include "core/sharded_reference_set.hpp"
#include "nn/matrix.hpp"
#include "test_common.hpp"
#include "util/rng.hpp"

namespace {

using namespace wf;

std::vector<float> random_point(util::Rng& rng, std::size_t dim, double spread = 1.0) {
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng.normal(0.0, spread));
  return v;
}

// Rankings must agree exactly: same labels, same votes, bitwise-equal
// per-class nearest distances.
void check_rankings_identical(const std::vector<core::RankedLabel>& a,
                              const std::vector<core::RankedLabel>& b) {
  CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    CHECK(a[i].label == b[i].label);
    CHECK(a[i].votes == b[i].votes);
    CHECK(a[i].distance == b[i].distance);  // bit-identical, no tolerance
  }
}

struct Row {
  std::vector<float> embedding;
  int label;
};

// Clustered rows with deliberate duplicates so distance ties exercise the
// (dist, insertion-id) tie-break across shard boundaries.
std::vector<Row> make_rows(util::Rng& rng, std::size_t dim, int n_classes, int per_class) {
  std::vector<Row> rows;
  for (int c = 0; c < n_classes; ++c) {
    const std::vector<float> center = random_point(rng, dim);
    for (int s = 0; s < per_class; ++s) {
      std::vector<float> e = center;
      if (s % 4 != 0)  // every 4th row is an exact duplicate of the center
        for (float& x : e) x += static_cast<float>(rng.normal(0.0, 0.1));
      rows.push_back({e, 400 + c});
    }
  }
  return rows;
}

}  // namespace

int main() {
  util::Rng rng(29);
  const std::size_t dim = 12;
  const std::vector<Row> rows = make_rows(rng, dim, 9, 14);

  core::ReferenceSet flat(dim);
  for (const Row& r : rows) flat.add(r.embedding, r.label);

  nn::Matrix queries(37, dim);
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    // Mix of cluster-adjacent and far-away queries.
    std::vector<float> v = q % 3 == 0 ? random_point(rng, dim, 3.0) : rows[q * 3].embedding;
    if (q % 3 != 0)
      for (float& x : v) x += static_cast<float>(rng.normal(0.0, 0.05));
    queries.set_row(q, v);
  }

  const core::KnnClassifier knn(17);
  const core::OpenWorldDetector detector({.neighbour = 5, .target_tpr = 0.9});
  const auto flat_rankings = knn.rank_batch(flat, queries);
  const std::vector<double> flat_kth = detector.kth_distances(flat, queries);

  for (const std::size_t n_shards : {1u, 2u, 7u}) {
    core::ShardedReferenceSet sharded(dim, n_shards);
    for (const Row& r : rows) sharded.add(r.embedding, r.label);
    CHECK(sharded.shard_count() == n_shards);
    CHECK(sharded.size() == flat.size());
    CHECK(sharded.classes() == flat.classes());

    // Batched ranking: bit-identical to the unsharded path.
    const auto sharded_rankings = knn.rank_batch(sharded, queries);
    CHECK(sharded_rankings.size() == flat_rankings.size());
    for (std::size_t q = 0; q < queries.rows(); ++q)
      check_rankings_identical(flat_rankings[q], sharded_rankings[q]);

    // Scalar ranking runs the same per-shard kernels.
    for (std::size_t q = 0; q < queries.rows(); q += 5)
      check_rankings_identical(knn.rank(flat, queries.row_span(q)),
                               knn.rank(sharded, queries.row_span(q)));

    // Open-world k-th-neighbour distances: bit-identical merge.
    const std::vector<double> sharded_kth = detector.kth_distances(sharded, queries);
    CHECK(sharded_kth.size() == flat_kth.size());
    for (std::size_t q = 0; q < flat_kth.size(); ++q) CHECK(flat_kth[q] == sharded_kth[q]);

    // Probe-and-swap: drop one class from both stores, re-add fresh rows
    // plus a brand-new class, and require exact agreement again (the swap
    // invariant the adaptive attacker relies on).
    core::ReferenceSet flat2 = flat;
    const int victim = 404;
    flat2.remove_class(victim);
    sharded.remove_class(victim);
    CHECK(sharded.size() == flat2.size());
    util::Rng swap_rng(91);
    std::vector<Row> fresh = make_rows(swap_rng, dim, 1, 10);
    for (Row& r : fresh) r.label = victim;
    fresh.push_back({random_point(swap_rng, dim), 499});  // never-seen class
    for (const Row& r : fresh) {
      flat2.add(r.embedding, r.label);
      sharded.add(r.embedding, r.label);
    }
    CHECK(sharded.classes() == flat2.classes());
    const auto flat2_rankings = knn.rank_batch(flat2, queries);
    const auto sharded2_rankings = knn.rank_batch(sharded, queries);
    for (std::size_t q = 0; q < queries.rows(); ++q)
      check_rankings_identical(flat2_rankings[q], sharded2_rankings[q]);
    const std::vector<double> flat2_kth = detector.kth_distances(flat2, queries);
    const std::vector<double> sharded2_kth = detector.kth_distances(sharded, queries);
    for (std::size_t q = 0; q < flat2_kth.size(); ++q) CHECK(flat2_kth[q] == sharded2_kth[q]);
  }

  // Degenerate layouts: more shards than rows (some shards stay empty).
  {
    core::ShardedReferenceSet tiny(dim, 7);
    core::ReferenceSet tiny_flat(dim);
    for (int i = 0; i < 4; ++i) {
      tiny.add(rows[static_cast<std::size_t>(i)].embedding, rows[static_cast<std::size_t>(i)].label);
      tiny_flat.add(rows[static_cast<std::size_t>(i)].embedding,
                    rows[static_cast<std::size_t>(i)].label);
    }
    const core::KnnClassifier wide(50);  // k far beyond the row count
    for (std::size_t q = 0; q < 6; ++q)
      check_rankings_identical(wide.rank(tiny_flat, queries.row_span(q)),
                               wide.rank(tiny, queries.row_span(q)));
  }

  return TEST_MAIN_RESULT();
}
