// User-journey fingerprinting (§V-A "Multiple requests"): pages loaded
// in one browsing session are not independent — the site's link graph
// constrains them. Feeding the per-page classifier's ranked outputs into
// a hidden Markov model over the link graph (Miller et al. style)
// substantially boosts accuracy over independent per-page decisions.
//
// Build & run:  build/examples/journey_hmm
#include <iostream>

#include "baselines/hmm.hpp"
#include "core/adaptive.hpp"
#include "data/splits.hpp"
#include "netsim/browser.hpp"

using namespace wf;

int main() {
  netsim::WikiSiteConfig site_config;
  site_config.n_pages = 24;
  site_config.links_per_page = 4;  // sparse graph => strong prior
  site_config.seed = 31;
  const netsim::Website site = netsim::make_wiki_site(site_config);
  const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();

  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = 25;
  crawl.seed = 55;
  const data::Dataset dataset = data::build_dataset(site, farm, {}, crawl);
  const data::SampleSplit split = data::split_samples(dataset, 20, 5);

  core::EmbeddingConfig config;
  config.train_iterations = 500;
  core::AdaptiveFingerprinter attacker(config, 40);
  std::cout << "provisioning the per-page classifier...\n";
  attacker.provision(split.first);
  attacker.initialize(split.first);

  const baselines::JourneyHmm hmm(site.links);
  util::Rng rng(91);

  std::size_t independent_hits = 0, hmm_hits = 0, total = 0;
  const int kJourneys = 30;
  const std::size_t kJourneyLength = 10;

  for (int j = 0; j < kJourneys; ++j) {
    // The victim walks the link graph; the attacker sniffs each load.
    const std::vector<int> truth =
        hmm.random_walk(static_cast<int>(rng.index(site.pages.size())), kJourneyLength, rng);

    std::vector<std::vector<core::RankedLabel>> emissions;
    emissions.reserve(truth.size());
    for (const int page : truth) {
      const netsim::PacketCapture capture =
          netsim::load_page(site, farm, page, netsim::BrowserConfig{}, rng);
      emissions.push_back(
          attacker.fingerprint(trace::encode_capture(capture, crawl.sequence)));
    }

    const std::vector<int> decoded = hmm.viterbi(emissions);
    for (std::size_t t = 0; t < truth.size(); ++t) {
      ++total;
      if (!emissions[t].empty() && emissions[t].front().label == truth[t]) ++independent_hits;
      if (decoded[t] == truth[t]) ++hmm_hits;
    }
  }

  util::Table table({"Decoder", "Per-page accuracy"});
  table.add_row({"independent top-1",
                 util::Table::pct(static_cast<double>(independent_hits) /
                                  static_cast<double>(total))});
  table.add_row({"HMM Viterbi over link graph",
                 util::Table::pct(static_cast<double>(hmm_hits) / static_cast<double>(total))});
  std::cout << "\n";
  table.print(std::to_string(kJourneys) + " journeys of " + std::to_string(kJourneyLength) +
              " pageloads:");
  std::cout << "\nThe HMM exploits the link structure: an unlikely per-page guess that\n"
               "doesn't fit the journey is overridden by the graph prior (§V-A).\n";
  return 0;
}
