// Adaptation in action (§IV-C): a long-running surveillance deployment
// watches a website whose pages keep changing. Without adaptation the
// classifier decays; with the reference-swap adaptation (no retraining)
// it recovers — the paper's operational-cost headline.
//
// The monitored site drifts in 4 "epochs" of growing content churn.
// At each epoch we report accuracy (a) frozen, (b) adapted via
// probe-and-swap with the accuracy threshold of §IV-C.
//
// Build & run:  build/examples/adaptive_monitoring
#include <iostream>

#include "core/adaptive.hpp"
#include "data/splits.hpp"
#include "netsim/browser.hpp"

using namespace wf;

namespace {

data::Dataset crawl(const netsim::Website& site, const netsim::ServerFarm& farm,
                    int samples_per_class, std::uint64_t seed) {
  data::DatasetBuildOptions opt;
  opt.samples_per_class = samples_per_class;
  opt.seed = seed;
  return data::build_dataset(site, farm, {}, opt);
}

}  // namespace

int main() {
  netsim::WikiSiteConfig site_config;
  site_config.n_pages = 24;
  site_config.seed = 11;
  netsim::Website site = netsim::make_wiki_site(site_config);
  const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();

  std::cout << "provisioning on the initial site contents...\n";
  const data::Dataset initial = crawl(site, farm, 25, 1000);
  const data::SampleSplit split = data::split_samples(initial, 20, 5);

  core::EmbeddingConfig config;
  config.train_iterations = 500;
  core::AdaptiveFingerprinter frozen(config, 40);
  frozen.provision(split.first);
  frozen.initialize(split.first);

  // The adaptive deployment shares the SAME trained model (no retraining
  // ever happens); only its reference set will be refreshed.
  core::AdaptiveFingerprinter adaptive(config, 40);
  adaptive.provision(split.first);  // deterministic: same seed, same model
  adaptive.initialize(split.first);

  util::Table table({"Epoch", "Content churn", "Frozen top-1", "Adapted top-1",
                     "Pages refreshed"});
  constexpr double kProbeThreshold = 0.5;  // §IV-C accuracy threshold

  double cumulative_drift[] = {0.0, 0.25, 0.5, 0.8};
  for (int epoch = 0; epoch < 4; ++epoch) {
    if (epoch > 0) netsim::apply_content_drift(site, cumulative_drift[epoch], 900 + epoch);

    // Fresh traffic from the drifted site: what the victim generates now.
    const data::Dataset live = crawl(site, farm, 8, 2000 + epoch);

    // Frozen deployment: classify as-is.
    const double frozen_top1 = frozen.evaluate(live, 1).curve.top(1);

    // Adaptive deployment: probe each page with a couple of fresh loads;
    // refresh the reference samples of pages that fell below threshold.
    int refreshed = 0;
    for (const int page : live.classes()) {
      const data::Dataset probe = live.filter([page](int l) { return l == page; });
      if (adaptive.probe_class_accuracy(page, probe) < kProbeThreshold) {
        const data::Dataset fresh = crawl(site, farm, 20, 3000 + epoch * 100 + page)
                                        .filter([page](int l) { return l == page; });
        adaptive.adapt_class(page, fresh);  // embed + swap, no retraining
        ++refreshed;
      }
    }
    const double adapted_top1 = adaptive.evaluate(live, 1).curve.top(1);

    table.add_row({std::to_string(epoch),
                   util::Table::pct(cumulative_drift[epoch], 0),
                   util::Table::pct(frozen_top1), util::Table::pct(adapted_top1),
                   std::to_string(refreshed)});
  }

  std::cout << "\n";
  table.print("Distributional shift: frozen vs adaptive deployment");
  std::cout << "\nNote: the adaptive deployment never retrains its embedding model —\n"
               "adaptation is embedding + reference swap only (§IV-C).\n";
  return 0;
}
