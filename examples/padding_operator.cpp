// A website operator's view (§VII): which padding countermeasure should
// my site deploy? Compares TLS 1.3 record policies and trace-level
// defenses against a trained adaptive adversary, reporting attacker
// accuracy vs bandwidth overhead — including the per-website
// anonymity-set strategy the paper proposes for larger sites.
//
// Build & run:  build/examples/padding_operator
#include <iostream>

#include "core/adaptive.hpp"
#include "data/splits.hpp"
#include "netsim/browser.hpp"
#include "trace/defense.hpp"

using namespace wf;

int main() {
  netsim::WikiSiteConfig site_config;
  site_config.n_pages = 24;
  site_config.tls = netsim::TlsVersion::kTls13;  // record padding needs 1.3
  site_config.seed = 21;
  const netsim::Website site = netsim::make_wiki_site(site_config);
  const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();

  // The adversary first provisions against the unpadded site.
  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = 25;
  crawl.seed = 77;
  const data::CaptureCorpus plain = data::collect_captures(site, farm, {}, crawl);
  const data::Dataset plain_traces = data::encode_corpus(plain, crawl.sequence);
  const data::SampleSplit split = data::split_samples(plain_traces, 20, 5);

  core::EmbeddingConfig config;
  config.train_iterations = 500;
  core::AdaptiveFingerprinter attacker(config, 40);
  std::cout << "training the adversary on unpadded traffic...\n";
  attacker.provision(split.first);
  attacker.initialize(split.first);

  util::Table table({"Countermeasure", "Attacker top-1", "Attacker top-3", "BW overhead"});
  std::uint64_t baseline_bytes = 0;
  for (const auto& c : plain.captures) baseline_bytes += c.total_bytes();

  auto evaluate_corpus = [&](const std::string& name, const data::CaptureCorpus& corpus,
                             const trace::FixedLengthDefense* fl, double overhead) {
    const data::Dataset traces = data::encode_corpus(corpus, crawl.sequence, fl, 9);
    const data::SampleSplit s = data::split_samples(traces, 20, 5);
    const core::EvaluationResult r = attacker.evaluate(s.second, 5);
    table.add_row({name, util::Table::pct(r.curve.top(1)), util::Table::pct(r.curve.top(3)),
                   util::Table::pct(overhead, 0)});
  };

  evaluate_corpus("none", plain, nullptr, 0.0);

  // TLS 1.3 record padding policies (RFC 8446 §5.4 mechanism).
  struct Policy {
    const char* name;
    netsim::RecordPaddingPolicy policy;
  };
  for (const Policy& p :
       {Policy{"record: random 0-255 B", {netsim::RecordPaddingPolicy::Kind::kRandom, 256}},
        Policy{"record: pad-to-4096 B",
               {netsim::RecordPaddingPolicy::Kind::kPadToMultiple, 4096}},
        Policy{"record: fixed 16 KiB",
               {netsim::RecordPaddingPolicy::Kind::kFixedRecord, 16384}}}) {
    data::DatasetBuildOptions padded_crawl = crawl;
    padded_crawl.browser.record_padding = p.policy;
    const data::CaptureCorpus corpus = data::collect_captures(site, farm, {}, padded_crawl);
    std::uint64_t bytes = 0;
    for (const auto& c : corpus.captures) bytes += c.total_bytes();
    const double overhead =
        static_cast<double>(bytes) / static_cast<double>(baseline_bytes) - 1.0;
    evaluate_corpus(p.name, corpus, nullptr, overhead);
  }

  // Trace-level fixed-length padding (strongest, most expensive).
  {
    const trace::FixedLengthDefense fl = trace::FixedLengthDefense::fit(plain.captures);
    evaluate_corpus("trace: fixed-length (site max)", plain, &fl,
                    fl.bandwidth_overhead(plain.captures));
  }

  // Anonymity sets: pad within groups of 6 pages only (§VII proposal).
  {
    const trace::AnonymitySetDefense anon =
        trace::AnonymitySetDefense::fit(plain.captures, plain.labels, 6);
    util::Rng rng(13);
    data::Dataset traces(crawl.sequence.feature_dim());
    for (std::size_t i = 0; i < plain.captures.size(); ++i) {
      const netsim::PacketCapture padded = anon.apply(plain.captures[i], plain.labels[i], rng);
      traces.add({trace::encode_capture(padded, crawl.sequence), plain.labels[i]});
    }
    const data::SampleSplit s = data::split_samples(traces, 20, 5);
    const core::EvaluationResult r = attacker.evaluate(s.second, 5);
    table.add_row({"trace: anonymity sets of 6", util::Table::pct(r.curve.top(1)),
                   util::Table::pct(r.curve.top(3)),
                   util::Table::pct(anon.bandwidth_overhead(plain.captures, plain.labels), 0)});
  }

  std::cout << "\n";
  table.print("Countermeasure menu for a 24-page TLS 1.3 website");
  std::cout << "\nReading guide: lower attacker accuracy is better for the operator;\n"
               "overheads compound across every page load the site serves (§VII).\n";
  return 0;
}
