// Quickstart: the complete adaptive-fingerprinting loop on a small
// simulated website, through the public core::Attacker interface.
//
//   1. Generate a website and crawl labeled traffic traces.
//   2. Train: embedding model on positive/negative pairs + reference set.
//   3. Fingerprint: classify a "victim" page load the attacker observes.
//   4. Persist: save the trained attacker, reload it, verify the reloaded
//      copy ranks identically — train once, redeploy anywhere.
//
// Build & run:  build/examples/quickstart
#include <cstdio>
#include <iostream>
#include <memory>

#include "core/adaptive.hpp"
#include "data/splits.hpp"
#include "io/serialize.hpp"
#include "netsim/browser.hpp"

using namespace wf;

int main() {
  // A 20-page website, Wikipedia-like: shared theme, per-page content.
  netsim::WikiSiteConfig site_config;
  site_config.n_pages = 20;
  site_config.seed = 1;
  const netsim::Website site = netsim::make_wiki_site(site_config);
  const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();

  // The adversary crawls every page 25 times ("data collection").
  std::cout << "crawling " << site.pages.size() << " pages x 25 loads...\n";
  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = 25;
  crawl.seed = 42;
  const data::Dataset dataset = data::build_dataset(site, farm, {}, crawl);
  const data::SampleSplit split = data::split_samples(dataset, 20, /*seed=*/5);

  // Train the attack (Table I architecture, scaled-down schedule) behind
  // the polymorphic Attacker interface — swap in eval::attacker_factory
  // names like "forest" or "kfp-knn" to compare systems.
  core::EmbeddingConfig model_config;
  model_config.train_iterations = 500;
  std::unique_ptr<core::Attacker> attacker =
      std::make_unique<core::AdaptiveFingerprinter>(model_config, /*knn_k=*/40);
  std::cout << "training the embedding model...\n";
  const core::TrainStats stats = attacker->train(split.first);
  std::cout << "  contrastive loss " << stats.final_loss << ", pair accuracy "
            << util::Table::pct(stats.pair_accuracy) << " in "
            << util::Table::num(stats.seconds, 1) << "s\n";

  // The victim loads page 7; the attacker sniffs and classifies it.
  util::Rng victim_rng(777);
  const netsim::PacketCapture sniffed =
      netsim::load_page(site, farm, /*page_id=*/7, netsim::BrowserConfig{}, victim_rng);
  data::Dataset observed(dataset.feature_dim());
  observed.add({trace::encode_capture(sniffed, trace::SequenceOptions{}), 7});
  const auto ranking = attacker->fingerprint_batch(observed).front();

  std::cout << "\nvictim loaded page 7; attacker's top guesses:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranking.size()); ++i)
    std::cout << "  #" << i + 1 << ": page " << ranking[i].label << "  (" << ranking[i].votes
              << " votes)\n";

  // Held-out accuracy over all pages.
  const core::EvaluationResult eval = attacker->evaluate(split.second, 5);
  std::cout << "\nheld-out accuracy: top-1 " << util::Table::pct(eval.curve.top(1)) << ", top-3 "
            << util::Table::pct(eval.curve.top(3)) << "\n";

  // Train once, persist, redeploy: the reloaded attacker must reproduce
  // the evaluation exactly (wf::io round trips are bit-identical).
  const std::string model_path = "quickstart_model.wf";
  attacker->save(model_path);
  const std::unique_ptr<core::Attacker> reloaded = io::load_attacker(model_path);
  const core::EvaluationResult again = reloaded->evaluate(split.second, 5);
  std::cout << "reloaded from " << model_path << ": top-1 "
            << util::Table::pct(again.curve.top(1))
            << (again.curve.top(1) == eval.curve.top(1) ? " (bit-identical)" : " (MISMATCH!)")
            << "\n";
  std::remove(model_path.c_str());
  return again.curve.top(1) == eval.curve.top(1) ? 0 : 1;
}
