// Quickstart: the complete adaptive-fingerprinting loop on a small
// simulated website, in ~60 lines of library calls.
//
//   1. Generate a website and crawl labeled traffic traces.
//   2. Provision: train the embedding model on positive/negative pairs.
//   3. Initialize: populate the reference set.
//   4. Fingerprint: classify a "victim" page load the attacker observes.
//
// Build & run:  build/examples/quickstart
#include <iostream>

#include "core/adaptive.hpp"
#include "data/splits.hpp"
#include "netsim/browser.hpp"

using namespace wf;

int main() {
  // A 20-page website, Wikipedia-like: shared theme, per-page content.
  netsim::WikiSiteConfig site_config;
  site_config.n_pages = 20;
  site_config.seed = 1;
  const netsim::Website site = netsim::make_wiki_site(site_config);
  const netsim::ServerFarm farm = netsim::ServerFarm::for_wiki();

  // The adversary crawls every page 25 times ("data collection").
  std::cout << "crawling " << site.pages.size() << " pages x 25 loads...\n";
  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = 25;
  crawl.seed = 42;
  const data::Dataset dataset = data::build_dataset(site, farm, {}, crawl);
  const data::SampleSplit split = data::split_samples(dataset, 20, /*seed=*/5);

  // Provision the attack (Table I architecture, scaled-down schedule).
  core::EmbeddingConfig model_config;
  model_config.train_iterations = 500;
  core::AdaptiveFingerprinter attacker(model_config, /*knn_k=*/40);
  std::cout << "training the embedding model...\n";
  const core::TrainStats stats = attacker.provision(split.first);
  std::cout << "  contrastive loss " << stats.final_loss << ", pair accuracy "
            << util::Table::pct(stats.pair_accuracy) << " in "
            << util::Table::num(stats.seconds, 1) << "s\n";
  attacker.initialize(split.first);

  // The victim loads page 7; the attacker sniffs and classifies it.
  util::Rng victim_rng(777);
  const netsim::PacketCapture sniffed =
      netsim::load_page(site, farm, /*page_id=*/7, netsim::BrowserConfig{}, victim_rng);
  const std::vector<float> features = trace::encode_capture(sniffed, trace::SequenceOptions{});
  const auto ranking = attacker.fingerprint(features);

  std::cout << "\nvictim loaded page 7; attacker's top guesses:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranking.size()); ++i)
    std::cout << "  #" << i + 1 << ": page " << ranking[i].label << "  (" << ranking[i].votes
              << " votes)\n";

  // Held-out accuracy over all pages.
  const core::EvaluationResult eval = attacker.evaluate(split.second, 5);
  std::cout << "\nheld-out accuracy: top-1 " << util::Table::pct(eval.curve.top(1)) << ", top-3 "
            << util::Table::pct(eval.curve.top(3)) << "\n";
  return 0;
}
