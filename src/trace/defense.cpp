#include "trace/defense.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace wf::trace {

FixedLengthDefense FixedLengthDefense::fit(const std::vector<netsim::PacketCapture>& corpus) {
  FixedLengthDefense defense;
  for (const netsim::PacketCapture& capture : corpus) {
    std::size_t in_count = 0, out_count = 0;
    for (const netsim::Record& r : capture.records) {
      defense.record_bytes_ = std::max(defense.record_bytes_, r.wire_bytes);
      if (r.direction == netsim::Direction::kIncoming) ++in_count;
      else ++out_count;
    }
    defense.incoming_records_ = std::max(defense.incoming_records_, in_count);
    defense.outgoing_records_ = std::max(defense.outgoing_records_, out_count);
  }
  return defense;
}

netsim::PacketCapture FixedLengthDefense::apply(const netsim::PacketCapture& capture,
                                                util::Rng& rng) const {
  netsim::PacketCapture padded;
  padded.tls = capture.tls;
  padded.records.reserve(incoming_records_ + outgoing_records_);
  std::size_t in_count = 0, out_count = 0;
  double last_time = 0.0;
  for (const netsim::Record& r : capture.records) {
    netsim::Record p = r;
    p.wire_bytes = std::max(p.wire_bytes, record_bytes_);
    padded.records.push_back(p);
    last_time = std::max(last_time, p.time_ms);
    if (r.direction == netsim::Direction::kIncoming) ++in_count;
    else ++out_count;
  }
  // Tail of dummy records up to the fixed per-direction counts, with mildly
  // jittered timing so the tail is not trivially recognizable.
  while (in_count < incoming_records_ || out_count < outgoing_records_) {
    const bool send_in = in_count < incoming_records_ &&
                         (out_count >= outgoing_records_ || rng.bernoulli(0.7));
    last_time += rng.uniform(0.05, 1.2);
    netsim::Record dummy;
    dummy.time_ms = last_time;
    dummy.direction = send_in ? netsim::Direction::kIncoming : netsim::Direction::kOutgoing;
    dummy.wire_bytes = record_bytes_;
    dummy.server = 0;
    padded.records.push_back(dummy);
    if (send_in) ++in_count;
    else ++out_count;
  }
  return padded;
}

double FixedLengthDefense::bandwidth_overhead(
    const std::vector<netsim::PacketCapture>& corpus) const {
  std::uint64_t original = 0;
  const std::uint64_t per_trace =
      static_cast<std::uint64_t>(record_bytes_) * (incoming_records_ + outgoing_records_);
  const std::uint64_t padded = per_trace * corpus.size();
  for (const netsim::PacketCapture& capture : corpus) original += capture.total_bytes();
  if (original == 0) return 0.0;
  return static_cast<double>(padded) / static_cast<double>(original) - 1.0;
}

AnonymitySetDefense AnonymitySetDefense::fit(const std::vector<netsim::PacketCapture>& captures,
                                             const std::vector<int>& labels, int set_size) {
  if (captures.size() != labels.size())
    throw std::invalid_argument("AnonymitySetDefense::fit: captures/labels size mismatch");
  if (set_size < 1) throw std::invalid_argument("AnonymitySetDefense::fit: set_size < 1");

  // Mean volume per class.
  std::map<int, std::pair<double, std::size_t>> volume;
  for (std::size_t i = 0; i < captures.size(); ++i) {
    auto& [sum, count] = volume[labels[i]];
    sum += static_cast<double>(captures[i].total_bytes());
    ++count;
  }
  std::vector<std::pair<double, int>> ordered;  // (mean volume, label)
  ordered.reserve(volume.size());
  for (const auto& [label, acc] : volume)
    ordered.emplace_back(acc.first / static_cast<double>(acc.second), label);
  std::sort(ordered.begin(), ordered.end());

  // Chunk volume-adjacent classes into sets: padding within a set of
  // similarly sized pages is far cheaper than padding to the site maximum.
  AnonymitySetDefense defense;
  const std::size_t n_sets =
      (ordered.size() + static_cast<std::size_t>(set_size) - 1) / static_cast<std::size_t>(set_size);
  std::vector<std::vector<netsim::PacketCapture>> per_set(n_sets);
  for (std::size_t rank = 0; rank < ordered.size(); ++rank)
    defense.set_of_[ordered[rank].second] = static_cast<int>(rank / static_cast<std::size_t>(set_size));
  for (std::size_t i = 0; i < captures.size(); ++i)
    per_set[static_cast<std::size_t>(defense.set_of_.at(labels[i]))].push_back(captures[i]);
  defense.defenses_.reserve(n_sets);
  for (const auto& members : per_set)
    defense.defenses_.push_back(FixedLengthDefense::fit(members));
  return defense;
}

int AnonymitySetDefense::set_of(int label) const {
  const auto it = set_of_.find(label);
  return it == set_of_.end() ? -1 : it->second;
}

netsim::PacketCapture AnonymitySetDefense::apply(const netsim::PacketCapture& capture, int label,
                                                 util::Rng& rng) const {
  const int set = set_of(label);
  if (set < 0) return capture;  // unknown page: defense cannot pad it
  return defenses_[static_cast<std::size_t>(set)].apply(capture, rng);
}

double AnonymitySetDefense::bandwidth_overhead(const std::vector<netsim::PacketCapture>& captures,
                                               const std::vector<int>& labels) const {
  std::uint64_t original = 0, padded = 0;
  for (std::size_t i = 0; i < captures.size(); ++i) {
    original += captures[i].total_bytes();
    const int set = set_of(labels[i]);
    if (set < 0) {
      padded += captures[i].total_bytes();
      continue;
    }
    const FixedLengthDefense& d = defenses_[static_cast<std::size_t>(set)];
    padded += static_cast<std::uint64_t>(d.record_bytes()) *
              (d.incoming_records() + d.outgoing_records());
  }
  if (original == 0) return 0.0;
  return static_cast<double>(padded) / static_cast<double>(original) - 1.0;
}

}  // namespace wf::trace
