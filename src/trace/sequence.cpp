#include "trace/sequence.hpp"

#include <cmath>
#include <stdexcept>

namespace wf::trace {

namespace {

// Quantize then log-compress a wire size into (0, 1].
float encode_size(std::uint32_t wire_bytes, std::uint32_t quantum) {
  const std::uint32_t q = std::max<std::uint32_t>(1, quantum);
  const std::uint64_t quantized = (static_cast<std::uint64_t>(wire_bytes) + q - 1) / q * q;
  // 2^18 B comfortably exceeds the largest padded TLS record.
  constexpr double kLogCap = 12.5;  // ~log1p(2^18)
  const double v = std::log1p(static_cast<double>(quantized)) / kLogCap;
  return static_cast<float>(v < 1.0 ? v : 1.0);
}

}  // namespace

std::vector<float> encode_capture(const netsim::PacketCapture& capture,
                                  const SequenceOptions& options) {
  if (options.n_sequences != 2 && options.n_sequences != 3)
    throw std::invalid_argument("encode_capture: n_sequences must be 2 or 3");
  const std::size_t t = static_cast<std::size_t>(options.timesteps);
  std::vector<float> features(options.feature_dim(), 0.0f);
  std::vector<std::size_t> cursor(static_cast<std::size_t>(options.n_sequences), 0);

  for (const netsim::Record& record : capture.records) {
    std::size_t seq;
    if (record.direction == netsim::Direction::kOutgoing) {
      seq = 0;
    } else if (options.n_sequences == 2) {
      seq = 1;
    } else {
      seq = record.server == 0 ? 1 : 2;  // main host vs everything else
    }
    if (cursor[seq] >= t) continue;
    features[seq * t + cursor[seq]] = encode_size(record.wire_bytes, options.quantum);
    ++cursor[seq];
  }
  return features;
}

}  // namespace wf::trace
