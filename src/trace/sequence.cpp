#include "trace/sequence.hpp"

#include <cmath>
#include <stdexcept>

namespace wf::trace {

namespace {

// Quantize then log-compress a wire size into (0, 1].
float encode_size(std::uint32_t wire_bytes, std::uint32_t quantum) {
  const std::uint32_t q = std::max<std::uint32_t>(1, quantum);
  const std::uint64_t quantized = (static_cast<std::uint64_t>(wire_bytes) + q - 1) / q * q;
  // 2^18 B comfortably exceeds the largest padded TLS record.
  constexpr double kLogCap = 12.5;  // ~log1p(2^18)
  const double v = std::log1p(static_cast<double>(quantized)) / kLogCap;
  return static_cast<float>(v < 1.0 ? v : 1.0);
}

}  // namespace

std::vector<float> encode_capture(const netsim::PacketCapture& capture,
                                  const SequenceOptions& options) {
  if (options.n_sequences != 2 && options.n_sequences != 3)
    throw std::invalid_argument("encode_capture: n_sequences must be 2 or 3");
  const std::size_t t = static_cast<std::size_t>(options.timesteps);
  std::vector<float> features(options.feature_dim(), 0.0f);
  std::vector<std::size_t> cursor(static_cast<std::size_t>(options.n_sequences), 0);

  const auto route = [&](netsim::Direction direction, int server, std::uint64_t wire_bytes) {
    std::size_t seq;
    if (direction == netsim::Direction::kOutgoing) {
      seq = 0;
    } else if (options.n_sequences == 2) {
      seq = 1;
    } else {
      seq = server == 0 ? 1 : 2;  // main host vs everything else
    }
    if (cursor[seq] >= t) return;
    const std::uint32_t capped = wire_bytes > 0xffffffffull
                                     ? 0xffffffffu
                                     : static_cast<std::uint32_t>(wire_bytes);
    features[seq * t + cursor[seq]] = encode_size(capped, options.quantum);
    ++cursor[seq];
  };

  if (!options.coalesce_packets) {
    for (const netsim::Record& record : capture.records)
      route(record.direction, record.server, record.wire_bytes);
    return features;
  }

  // Reassembly view: merge each run of consecutive packets that share
  // direction and server into one logical record.
  bool open = false;
  netsim::Direction run_dir = netsim::Direction::kOutgoing;
  int run_server = 0;
  std::uint64_t run_bytes = 0;
  for (const netsim::Record& record : capture.records) {
    if (record.wire_bytes < options.coalesce_min_bytes) continue;
    if (open && record.direction == run_dir && record.server == run_server) {
      run_bytes += record.wire_bytes;
      continue;
    }
    if (open) route(run_dir, run_server, run_bytes);
    open = true;
    run_dir = record.direction;
    run_server = record.server;
    run_bytes = record.wire_bytes;
  }
  if (open) route(run_dir, run_server, run_bytes);
  return features;
}

}  // namespace wf::trace
