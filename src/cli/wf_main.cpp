// The single driver binary of the suite:
//
//   wf list                                  enumerate experiments/attackers
//   wf run <exp...|--all> [flags]            run registered experiments
//   wf train --model FILE [flags]            train an attacker, save it
//   wf eval  --model FILE [flags]            reload and evaluate a saved attacker
//   wf serve --model FILE [flags]            resident daemon answering query frames
//   wf query --port P [flags]                evaluate against a running daemon
//   wf stats --port P [--watch]              print a daemon's metrics snapshot
//   wf proxy --port P --upstream H:P [flags] fault-injecting TCP proxy (chaos tests)
//
// Shared flags: --smoke, --out DIR, --threads N, --shards S,
// --attacker NAME. The legacy bench_* binaries are thin shims over the
// same registry, so `wf run exp1` and `bench_exp1_static` emit identical
// CSVs.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive.hpp"
#include "eval/registry.hpp"
#include "index/store.hpp"
#include "io/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/coordinator.hpp"
#include "serve/fault.hpp"
#include "serve/server.hpp"
#include "util/bench_report.hpp"
#include "util/env.hpp"

namespace {

using namespace wf;

struct CliOptions {
  std::vector<std::string> positional;
  std::string attacker = "adaptive";
  std::string model;
  int classes = 0;  // 0: first exp1 class count of the active scenario

  // wf::index flags (wf index build/info/rebuild, wf serve --index).
  std::string index;
  std::size_t clusters = 0;  // 0 = auto (~sqrt(n))
  std::size_t probes = 0;    // 0 = all clusters (exact)
  bool seed_given = false;
  bool all = false;
  bool attacker_given = false;
  bool out_given = false;

  // serve/query flags.
  std::string host = "127.0.0.1";
  int port = 0;  // serve: 0 = ephemeral; query: must be given
  std::size_t slice_index = 0;
  std::size_t slice_count = 1;
  std::size_t queue_capacity = 64;
  std::size_t max_batch = 1024;
  std::size_t query_batch = 32;  // queries per request frame from wf query
  bool coordinator = false;
  bool stop = false;
  std::vector<serve::BackendAddress> backends;

  // Fault-tolerance knobs.
  int timeout_ms = -1;       // -1: WF_SERVE_TIMEOUT_MS, else 30000; 0 disables
  int idle_timeout_ms = 0;   // server-side idle hangup; 0 keeps connections
  bool partial = false;      // coordinator: degraded answers from live slices
  int retries = 8;           // bounded-retry attempts for client/coordinator
  std::string fault_kind = "none";
  double fault_rate = 0.0;
  int fault_delay_ms = 100;

  // Observability knobs.
  int stats_interval_ms = 0;  // serve: periodic metrics log line; 0 disables
  bool watch = false;         // wf stats: poll instead of one-shot
  int interval_ms = 2000;     // wf stats --watch poll period
  long seed = 1;
  serve::BackendAddress upstream;
  bool upstream_given = false;
};

// --timeout-ms wins, then WF_SERVE_TIMEOUT_MS, then the built-in default;
// an explicit 0 disables the deadline end to end.
int effective_timeout_ms(const CliOptions& options) {
  if (options.timeout_ms >= 0) return options.timeout_ms;
  const std::size_t env = util::Env::serve_timeout_ms();
  return env > 0 ? static_cast<int>(env) : 30000;
}

int usage(int code) {
  std::cout <<
      "wf - adaptive webpage fingerprinting driver\n"
      "\n"
      "usage:\n"
      "  wf list                     list experiments and attackers\n"
      "  wf run <exp...> [flags]     run experiments (or --all for the whole suite)\n"
      "  wf train [flags]            crawl, train an attacker, save it to --model\n"
      "  wf eval [flags]             reload --model and evaluate it on the same crawl\n"
      "  wf index build|info|rebuild [flags]  build/inspect/compact an on-disk IVF index\n"
      "  wf serve [flags]            daemon: load --model, answer query frames on TCP\n"
      "  wf query [flags]            evaluate the crawl against a running daemon\n"
      "  wf stats [flags]            fetch and print a running daemon's metrics\n"
      "  wf proxy [flags]            fault-injecting TCP proxy for chaos testing\n"
      "  wf help                     this text\n"
      "\n"
      "index flags (wf index build --model FILE --index OUT):\n"
      "  --index FILE       the on-disk IVFX index file (all index verbs; wf serve)\n"
      "  --clusters C       IVF cluster count for build (0 = auto, ~sqrt(n))\n"
      "  --probes P         clusters probed per query (0 = all: exact rankings)\n"
      "  --seed S           k-means seed for build (default 9041)\n"
      "\n"
      "serve/query flags:\n"
      "  --host H           listen/connect address (default 127.0.0.1)\n"
      "  --port P           TCP port (serve default 0 = ephemeral, printed on start)\n"
      "  --slice I/N        serve shard slice I of N as a scatter/gather backend\n"
      "  --coordinator      serve by fanning out to --backend daemons and merging\n"
      "  --backend H:P      one backend of a coordinator (repeat per shard slice)\n"
      "  --queue N          pending-request ring capacity before backpressure (64)\n"
      "  --max-batch N      max queries coalesced into one model call (1024)\n"
      "  --batch N          queries per request frame sent by wf query (32)\n"
      "  --stop             wf query: ask the daemon to shut down and exit\n"
      "  --timeout-ms T     per-request deadline, server and client side\n"
      "                     (default WF_SERVE_TIMEOUT_MS or 30000; 0 disables)\n"
      "  --idle-timeout-ms T  serve: hang up connections idle for T ms (0: keep)\n"
      "  --retries N        bounded-retry attempts for retryable failures (8)\n"
      "  --partial          coordinator: answer from live slices when backends\n"
      "                     are down, flagging the reply degraded (default: fail)\n"
      "  --stats-interval-ms T  serve: log a metrics summary every T ms (0: off)\n"
      "\n"
      "stats flags (wf stats --port P):\n"
      "  --watch            keep polling every --interval-ms until interrupted\n"
      "  --interval-ms T    poll period for --watch in ms (default 2000)\n"
      "  --out DIR          also write wf_stats.csv and bench_stats.json to DIR\n"
      "\n"
      "proxy flags (wf proxy --port P --upstream H:P):\n"
      "  --upstream H:P     where to forward accepted connections\n"
      "  --fault-kind K     none|drop|delay|truncate|corrupt|blackhole (none)\n"
      "  --fault-rate R     per-chunk fault probability in [0, 1] (0)\n"
      "  --fault-delay-ms T delay per faulted chunk for --fault-kind delay (100)\n"
      "  --seed S           fault schedule seed (1)\n"
      "\n"
      "flags:\n"
      "  --smoke            seconds-scale configuration (same as WF_SMOKE=1)\n"
      "  --out DIR          results directory (same as WF_RESULTS_DIR; default: results)\n"
      "  --threads N        worker threads (same as WF_THREADS; set before first use)\n"
      "  --shards S         reference-set shards (same as WF_SHARDS)\n"
      "  --attacker NAME    attacker to run/train: adaptive | forest | kfp-knn\n"
      "  --model FILE       attacker file for train/eval (wf::io format)\n"
      "  --classes N        train/eval class count (default: the exp1 leading count)\n"
      "\n"
      "`wf train` crawls the exp1 scenario, trains the attacker on the train\n"
      "split, evaluates the held-out split (writes wf_eval.csv + wf_rankings.csv)\n"
      "and saves the model; `wf eval` reloads it and must reproduce both files\n"
      "bit-identically. `wf query` evaluates the same held-out split against a\n"
      "running `wf serve` daemon and writes the same two files — a served\n"
      "deployment is correct iff they diff clean against `wf eval`'s.\n";
  return code;
}

// Parses flags (applying Env overrides immediately) and collects
// positionals. Returns false on a malformed command line.
bool parse_flags(int argc, char** argv, int first, CliOptions& options) {
  const auto value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "wf: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  // Strict integer-in-range parse for flag values the user typed: trailing
  // garbage is an error here, never a silent fallback.
  const auto parse_long = [](const char* v, long min, long max, long& out) {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || parsed < min || parsed > max) return false;
    out = parsed;
    return true;
  };
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      util::Env::override_smoke(true);
    } else if (arg == "--all") {
      options.all = true;
    } else if (arg == "--out") {
      const char* v = value(i, "--out");
      if (v == nullptr) return false;
      util::Env::override_results_dir(v);
      options.out_given = true;
    } else if (arg == "--threads" || arg == "--shards") {
      // Same bounds as the WF_THREADS/WF_SHARDS env vars; a flag the user
      // typed gets an error instead of the env vars' silent fallback.
      const bool threads = arg == "--threads";
      const char* v = value(i, arg == "--threads" ? "--threads" : "--shards");
      if (v == nullptr) return false;
      char* end = nullptr;
      const long parsed = std::strtol(v, &end, 10);
      const long max = threads ? 512 : 4096;
      if (end == v || *end != '\0' || parsed < 1 || parsed > max) {
        std::cerr << "wf: " << arg << " must be an integer in [1, " << max << "]\n";
        return false;
      }
      if (threads) {
        util::Env::override_threads(static_cast<std::size_t>(parsed));
      } else {
        util::Env::override_shards(static_cast<std::size_t>(parsed));
      }
    } else if (arg == "--attacker") {
      const char* v = value(i, "--attacker");
      if (v == nullptr) return false;
      options.attacker = v;
      options.attacker_given = true;
    } else if (arg == "--model") {
      const char* v = value(i, "--model");
      if (v == nullptr) return false;
      options.model = v;
    } else if (arg == "--index") {
      const char* v = value(i, "--index");
      if (v == nullptr) return false;
      options.index = v;
    } else if (arg == "--clusters" || arg == "--probes") {
      const char* v = value(i, arg.c_str());
      if (v == nullptr) return false;
      long parsed = 0;
      if (!parse_long(v, 0, 1 << 24, parsed)) {
        std::cerr << "wf: " << arg << " must be an integer in [0, " << (1 << 24) << "]\n";
        return false;
      }
      if (arg == "--clusters") {
        options.clusters = static_cast<std::size_t>(parsed);
      } else {
        options.probes = static_cast<std::size_t>(parsed);
      }
    } else if (arg == "--classes") {
      const char* v = value(i, "--classes");
      if (v == nullptr) return false;
      char* end = nullptr;
      const long parsed = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 1 || parsed > 100000) {
        std::cerr << "wf: --classes must be an integer in [1, 100000]\n";
        return false;
      }
      options.classes = static_cast<int>(parsed);
    } else if (arg == "--host") {
      const char* v = value(i, "--host");
      if (v == nullptr) return false;
      options.host = v;
    } else if (arg == "--port") {
      const char* v = value(i, "--port");
      if (v == nullptr) return false;
      long port = 0;
      if (!parse_long(v, 0, 65535, port)) {
        std::cerr << "wf: --port must be an integer in [0, 65535]\n";
        return false;
      }
      options.port = static_cast<int>(port);
    } else if (arg == "--slice") {
      const char* v = value(i, "--slice");
      if (v == nullptr) return false;
      const std::string spec = v;
      const std::size_t slash = spec.find('/');
      long index = -1, count = 0;
      if (slash == std::string::npos ||
          !parse_long(spec.substr(0, slash).c_str(), 0, 4095, index) ||
          !parse_long(spec.substr(slash + 1).c_str(), 1, 4096, count) || index >= count) {
        std::cerr << "wf: --slice must be I/N with 0 <= I < N <= 4096\n";
        return false;
      }
      options.slice_index = static_cast<std::size_t>(index);
      options.slice_count = static_cast<std::size_t>(count);
    } else if (arg == "--queue" || arg == "--max-batch" || arg == "--batch") {
      const char* v = value(i, arg.c_str());
      if (v == nullptr) return false;
      long parsed = 0;
      if (!parse_long(v, 1, 1 << 20, parsed)) {
        std::cerr << "wf: " << arg << " must be an integer in [1, " << (1 << 20) << "]\n";
        return false;
      }
      if (arg == "--queue") {
        options.queue_capacity = static_cast<std::size_t>(parsed);
      } else if (arg == "--max-batch") {
        options.max_batch = static_cast<std::size_t>(parsed);
      } else {
        options.query_batch = static_cast<std::size_t>(parsed);
      }
    } else if (arg == "--backend") {
      const char* v = value(i, "--backend");
      if (v == nullptr) return false;
      const std::string spec = v;
      const std::size_t colon = spec.rfind(':');
      long port = 0;
      if (colon == std::string::npos || colon == 0 ||
          !parse_long(spec.substr(colon + 1).c_str(), 1, 65535, port)) {
        std::cerr << "wf: --backend must be HOST:PORT\n";
        return false;
      }
      options.backends.push_back(
          {spec.substr(0, colon), static_cast<std::uint16_t>(port)});
    } else if (arg == "--coordinator") {
      options.coordinator = true;
    } else if (arg == "--stop") {
      options.stop = true;
    } else if (arg == "--partial") {
      options.partial = true;
    } else if (arg == "--timeout-ms" || arg == "--idle-timeout-ms" ||
               arg == "--fault-delay-ms" || arg == "--stats-interval-ms") {
      const char* v = value(i, arg.c_str());
      if (v == nullptr) return false;
      long parsed = 0;
      if (!parse_long(v, 0, 3600000, parsed)) {
        std::cerr << "wf: " << arg << " must be an integer in [0, 3600000]\n";
        return false;
      }
      if (arg == "--timeout-ms") {
        options.timeout_ms = static_cast<int>(parsed);
      } else if (arg == "--idle-timeout-ms") {
        options.idle_timeout_ms = static_cast<int>(parsed);
      } else if (arg == "--stats-interval-ms") {
        options.stats_interval_ms = static_cast<int>(parsed);
      } else {
        options.fault_delay_ms = static_cast<int>(parsed);
      }
    } else if (arg == "--watch") {
      options.watch = true;
    } else if (arg == "--interval-ms") {
      const char* v = value(i, "--interval-ms");
      if (v == nullptr) return false;
      long parsed = 0;
      if (!parse_long(v, 1, 3600000, parsed)) {
        std::cerr << "wf: --interval-ms must be an integer in [1, 3600000]\n";
        return false;
      }
      options.interval_ms = static_cast<int>(parsed);
    } else if (arg == "--retries") {
      const char* v = value(i, "--retries");
      if (v == nullptr) return false;
      long parsed = 0;
      if (!parse_long(v, 1, 10000, parsed)) {
        std::cerr << "wf: --retries must be an integer in [1, 10000]\n";
        return false;
      }
      options.retries = static_cast<int>(parsed);
    } else if (arg == "--seed") {
      const char* v = value(i, "--seed");
      if (v == nullptr) return false;
      long parsed = 0;
      if (!parse_long(v, 0, std::numeric_limits<long>::max(), parsed)) {
        std::cerr << "wf: --seed must be a non-negative integer\n";
        return false;
      }
      options.seed = parsed;
      options.seed_given = true;
    } else if (arg == "--fault-kind") {
      const char* v = value(i, "--fault-kind");
      if (v == nullptr) return false;
      options.fault_kind = v;
    } else if (arg == "--fault-rate") {
      const char* v = value(i, "--fault-rate");
      if (v == nullptr) return false;
      char* end = nullptr;
      const double parsed = std::strtod(v, &end);
      if (end == v || *end != '\0' || parsed < 0.0 || parsed > 1.0) {
        std::cerr << "wf: --fault-rate must be a number in [0, 1]\n";
        return false;
      }
      options.fault_rate = parsed;
    } else if (arg == "--upstream") {
      const char* v = value(i, "--upstream");
      if (v == nullptr) return false;
      const std::string spec = v;
      const std::size_t colon = spec.rfind(':');
      long port = 0;
      if (colon == std::string::npos || colon == 0 ||
          !parse_long(spec.substr(colon + 1).c_str(), 1, 65535, port)) {
        std::cerr << "wf: --upstream must be HOST:PORT\n";
        return false;
      }
      options.upstream = {spec.substr(0, colon), static_cast<std::uint16_t>(port)};
      options.upstream_given = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "wf: unknown flag " << arg << "\n";
      return false;
    } else {
      options.positional.push_back(arg);
    }
  }
  return true;
}

int cmd_list() {
  util::Table table({"Experiment", "Legacy binary", "What it reproduces"});
  for (const eval::Experiment& experiment : eval::experiments())
    table.add_row({experiment.name, experiment.legacy_binary, experiment.description});
  table.print();
  std::cout << "\nattackers (--attacker):";
  for (const std::string& name : eval::attacker_names()) std::cout << " " << name;
  std::cout << "\n";
  return 0;
}

int cmd_run(const CliOptions& options) {
  std::vector<const eval::Experiment*> selected;
  if (options.all) {
    for (const eval::Experiment& experiment : eval::experiments())
      selected.push_back(&experiment);
  } else {
    for (const std::string& name : options.positional) {
      const eval::Experiment* experiment = eval::find_experiment(name);
      if (experiment == nullptr) {
        std::cerr << "wf: unknown experiment \"" << name << "\" (see `wf list`)\n";
        return 1;
      }
      selected.push_back(experiment);
    }
  }
  if (selected.empty()) {
    std::cerr << "wf: nothing to run (name experiments or pass --all)\n";
    return 1;
  }
  const eval::AttackerFactory factory =
      options.attacker_given ? eval::attacker_factory(options.attacker)
                             : eval::AttackerFactory{};
  util::Env::log_effective();
  for (const eval::Experiment* experiment : selected) {
    if (selected.size() > 1)
      std::cout << "\n=== " << experiment->name << ": " << experiment->description
                << " ===\n";
    if (options.attacker_given && !experiment->accepts_attacker)
      util::log_info() << experiment->name << ": fixed attacker roster; --attacker ignored";
    const int code = experiment->run(experiment->accepts_attacker ? factory
                                                                  : eval::AttackerFactory{});
    if (code != 0) return code;
  }
  return 0;
}

// The shared train/eval scenario: the exp1 crawl of the wiki site at
// `classes` classes, split into train/held-out halves. Keeping the seeds
// identical between `wf train` and `wf eval` is what makes the save ->
// load -> evaluate round trip diffable.
struct TrainEvalWorld {
  eval::WikiScenario scenario;
  int classes;
  data::SampleSplit split;

  explicit TrainEvalWorld(int requested_classes) {
    const eval::ScenarioConfig& cfg = scenario.config();
    classes = requested_classes > 0 ? requested_classes : cfg.exp1_class_counts.front();
    data::DatasetBuildOptions crawl;
    crawl.samples_per_class = cfg.samples_per_class;
    crawl.sequence = cfg.seq3;
    crawl.browser = cfg.browser;
    crawl.seed = cfg.crawl_seed + static_cast<std::uint64_t>(classes);
    const data::Dataset dataset = data::build_dataset(scenario.wiki_site(classes),
                                                      scenario.wiki_farm(), {}, crawl);
    split = data::split_samples(dataset, cfg.train_samples_per_class, cfg.split_seed);
  }
};

// The two files every evaluation path emits, from the rankings alone:
// wf_eval.csv (the top-n summary) and wf_rankings.csv (the top 10 guesses
// per query, distances as hexfloats so a diff is a bit-identity check).
// `wf train`, `wf eval` and `wf query` all funnel through here — identical
// rankings therefore produce byte-identical files.
void write_eval_outputs(const std::string& attacker_name,
                        const std::vector<std::vector<core::RankedLabel>>& rankings,
                        const TrainEvalWorld& world) {
  const std::vector<int> labels = world.split.second.labels_of();
  const core::TopNCurve curve = core::curve_from_rankings(rankings, labels, 10);
  util::Table table({"Attacker", "Classes", "Top-1", "Top-3", "Top-5", "Top-10"});
  table.add_row({attacker_name, std::to_string(world.classes), util::Table::pct(curve.top(1)),
                 util::Table::pct(curve.top(3)), util::Table::pct(curve.top(5)),
                 util::Table::pct(curve.top(10))});
  table.print();
  const std::string csv = eval::results_dir() + "/wf_eval.csv";
  table.write_csv(csv);
  std::cout << "CSV written to " << csv << "\n";

  util::Table ranks({"Query", "Rank", "Label", "Votes", "Distance"});
  for (std::size_t q = 0; q < rankings.size(); ++q) {
    for (std::size_t r = 0; r < rankings[q].size() && r < 10; ++r) {
      const core::RankedLabel& entry = rankings[q][r];
      std::ostringstream distance;
      distance << std::hexfloat << entry.distance;
      ranks.add_row({std::to_string(q), std::to_string(r), std::to_string(entry.label),
                     std::to_string(entry.votes), distance.str()});
    }
  }
  const std::string ranks_csv = eval::results_dir() + "/wf_rankings.csv";
  ranks.write_csv(ranks_csv);
  std::cout << "rankings written to " << ranks_csv << "\n";
}

int cmd_train(const CliOptions& options) {
  if (options.model.empty()) {
    std::cerr << "wf: train needs --model FILE\n";
    return 1;
  }
  util::Env::log_effective();
  // Resolve the attacker before the crawl so a bad name fails fast.
  const eval::AttackerFactory factory = eval::attacker_factory(options.attacker);
  TrainEvalWorld world(options.classes);
  const eval::ScenarioConfig& cfg = world.scenario.config();
  const std::unique_ptr<core::Attacker> attacker = factory(cfg.embedding3, cfg);
  util::log_info() << "training \"" << attacker->name() << "\" on " << world.classes
                   << " classes (" << world.split.first.size() << " samples)";
  const core::TrainStats stats = attacker->train(world.split.first);
  std::cout << "trained " << attacker->name() << " in " << util::Table::num(stats.seconds, 1)
            << "s\n\n== held-out evaluation ==\n";
  write_eval_outputs(attacker->name(), attacker->fingerprint_batch(world.split.second), world);
  attacker->save(options.model);
  std::cout << "model saved to " << options.model << "\n";
  return 0;
}

int cmd_eval(const CliOptions& options) {
  if (options.model.empty()) {
    std::cerr << "wf: eval needs --model FILE\n";
    return 1;
  }
  util::Env::log_effective();
  const std::unique_ptr<core::Attacker> attacker = io::load_attacker(options.model);
  util::log_info() << "loaded \"" << attacker->name() << "\" from " << options.model;
  TrainEvalWorld world(options.classes);
  // A bit-identical re-evaluation needs the training crawl: refuse a world
  // whose class set does not match what the model targets, instead of
  // silently scoring it against the wrong site.
  if (attacker->target_classes() != world.split.first.classes()) {
    std::cerr << "wf: model targets " << attacker->target_classes().size()
              << " classes but the crawl has " << world.split.first.classes().size()
              << "; pass the --classes/--smoke used at training time\n";
    return 1;
  }
  std::cout << "== held-out evaluation (reloaded model) ==\n";
  write_eval_outputs(attacker->name(), attacker->fingerprint_batch(world.split.second), world);
  return 0;
}

// wf index build/info/rebuild: the on-disk IVF index life cycle. build
// clusters a saved model's reference set into an IVFX file; info prints its
// header without loading the data; rebuild compacts base + journal in place.
int cmd_index(const CliOptions& options) {
  if (options.positional.empty()) {
    std::cerr << "wf: index needs a verb: build | info | rebuild\n";
    return 1;
  }
  const std::string& verb = options.positional.front();
  if (options.index.empty()) {
    std::cerr << "wf: index " << verb << " needs --index FILE\n";
    return 1;
  }
  if (verb == "build") {
    if (options.model.empty()) {
      std::cerr << "wf: index build needs --model FILE (a saved attacker)\n";
      return 1;
    }
    util::Env::log_effective();
    const std::unique_ptr<core::Attacker> attacker = io::load_attacker(options.model);
    const auto* adaptive = dynamic_cast<const core::AdaptiveFingerprinter*>(attacker.get());
    if (adaptive == nullptr) {
      std::cerr << "wf: attacker \"" << attacker->name()
                << "\" has no reference set to index (use the adaptive attacker)\n";
      return 1;
    }
    index::IvfConfig config;
    config.clusters = options.clusters;
    config.probes = options.probes;
    if (options.seed_given) config.seed = static_cast<std::uint64_t>(options.seed);
    const index::IvfReferenceStore store(adaptive->references(), config);
    index::write_index_file(options.index, store);
    std::cout << "wf index: wrote " << store.size() << " references in " << store.clusters()
              << " clusters (dim " << store.dim() << ", probes "
              << (options.probes == 0 ? std::string("all") : std::to_string(options.probes))
              << ") to " << options.index << "\n";
    return 0;
  }
  if (verb == "info") {
    const index::IndexInfo info = index::read_index_info(options.index);
    util::Table table({"Field", "Value"});
    table.add_row({"dim", std::to_string(info.dim)});
    table.add_row({"clusters", std::to_string(info.clusters)});
    table.add_row({"rows", std::to_string(info.rows)});
    table.add_row({"classes", std::to_string(info.n_class_ids)});
    table.add_row({"default_probes", info.config.probes == 0
                                         ? std::string("all")
                                         : std::to_string(info.config.probes)});
    table.add_row({"kmeans_seed", std::to_string(info.config.seed)});
    table.add_row({"next_row_id", std::to_string(info.next_row_id)});
    table.add_row({"file_bytes", std::to_string(info.file_bytes)});
    table.add_row({"cluster_rows_min", std::to_string(info.min_cluster_rows)});
    table.add_row({"cluster_rows_max", std::to_string(info.max_cluster_rows)});
    table.add_row({"journal_bytes", std::to_string(info.journal_bytes)});
    table.add_row({"journal_adds", std::to_string(info.journal_adds)});
    table.add_row({"journal_removes", std::to_string(info.journal_removes)});
    table.print();
    return 0;
  }
  if (verb == "rebuild") {
    const std::size_t rows = index::rebuild_index_file(options.index);
    std::cout << "wf index: rebuilt " << options.index << " (" << rows
              << " references, journal compacted)\n";
    return 0;
  }
  std::cerr << "wf: unknown index verb \"" << verb << "\" (build | info | rebuild)\n";
  return 1;
}

int cmd_serve(const CliOptions& options) {
  util::Env::log_effective();
  std::shared_ptr<serve::Handler> handler;
  if (options.coordinator) {
    if (!options.model.empty() || options.slice_count > 1) {
      std::cerr << "wf: --coordinator takes --backend daemons, not --model/--slice\n";
      return 1;
    }
    if (options.backends.empty()) {
      std::cerr << "wf: --coordinator needs at least one --backend HOST:PORT\n";
      return 1;
    }
    // Backends may still be binding when the coordinator starts; retry the
    // handshake for a while instead of racing start order.
    serve::CoordinatorConfig coordinator_config;
    coordinator_config.connect_retry_ms = 10000;
    coordinator_config.timeout_ms = effective_timeout_ms(options);
    coordinator_config.allow_partial = options.partial;
    coordinator_config.retry.max_attempts = options.retries;
    handler = std::make_shared<serve::CoordinatorHandler>(options.backends, coordinator_config);
    std::cout << "wf serve: coordinating " << options.backends.size() << " backends"
              << (options.partial ? " (partial answers allowed)" : "") << "\n";
  } else {
    if (options.model.empty()) {
      std::cerr << "wf: serve needs --model FILE (or --coordinator)\n";
      return 1;
    }
    std::unique_ptr<core::Attacker> attacker = io::load_attacker(options.model);
    util::log_info() << "loaded \"" << attacker->name() << "\" from " << options.model;
    if (!options.index.empty()) {
      auto* adaptive = dynamic_cast<core::AdaptiveFingerprinter*>(attacker.get());
      if (adaptive == nullptr) {
        std::cerr << "wf: --index needs the adaptive attacker, not \"" << attacker->name()
                  << "\"\n";
        return 1;
      }
      if (options.slice_count > 1) {
        std::cerr << "wf: --index serves the whole reference set; drop --slice\n";
        return 1;
      }
      // mmap-backed open: O(1) in the data. --probes overrides the file's
      // default; 0 keeps it (and a file built without --probes stays exact,
      // which is what the CI rankings diff against `wf eval` relies on).
      std::shared_ptr<core::ReferenceStore> store =
          index::open_index(options.index, options.probes);
      util::log_info() << "serving references from index " << options.index << " ("
                       << store->size() << " rows)";
      adaptive->set_store(std::move(store));
    }
    handler = std::make_shared<serve::LocalHandler>(std::move(attacker), options.slice_index,
                                                    options.slice_count);
  }

  serve::ServerConfig config;
  config.host = options.host;
  config.port = static_cast<std::uint16_t>(options.port);
  config.queue_capacity = options.queue_capacity;
  config.max_batch = options.max_batch;
  config.request_timeout_ms = effective_timeout_ms(options);
  config.idle_timeout_ms = options.idle_timeout_ms;
  config.stats_interval_ms = options.stats_interval_ms;
  serve::Server server(std::move(handler), config);
  server.start();
  if (options.slice_count > 1)
    std::cout << "wf serve: shard slice " << options.slice_index << "/" << options.slice_count
              << "\n";
  // Scripts wait for this exact line before starting clients; flush it.
  std::cout << "wf serve: listening on " << options.host << ":" << server.port() << "\n"
            << std::flush;
  server.wait();
  server.stop();
  const serve::ServerStats stats = server.stats();
  std::cout << "wf serve: stopped after " << stats.requests << " requests (" << stats.queries
            << " queries in " << stats.batches << " model calls, " << stats.rejected
            << " rejected for backpressure)\n";
  return 0;
}

int cmd_query(const CliOptions& options) {
  if (options.port == 0) {
    std::cerr << "wf: query needs --port P (the daemon's listen port)\n";
    return 1;
  }
  serve::ClientConfig client_config;
  client_config.connect_retry_ms = 10000;
  client_config.timeout_ms = effective_timeout_ms(options);
  client_config.retry.max_attempts = options.retries;
  serve::Client client(options.host, static_cast<std::uint16_t>(options.port), client_config);
  if (options.stop) {
    client.stop_server();
    std::cout << "wf query: daemon at " << options.host << ":" << options.port
              << " stopped\n";
    return 0;
  }
  util::Env::log_effective();
  const serve::ServerInfo info = client.hello();
  util::log_info() << "daemon serves \"" << info.attacker << "\" (" << info.n_references
                   << " references, " << info.classes.size() << " classes)";
  TrainEvalWorld world(options.classes);
  // Same guard as `wf eval`: scoring this crawl against a daemon trained on
  // another world would be silently meaningless.
  if (info.classes != world.split.first.classes()) {
    std::cerr << "wf: daemon targets " << info.classes.size() << " classes but the crawl has "
              << world.split.first.classes().size()
              << "; pass the --classes/--smoke used at training time\n";
    return 1;
  }

  // Stream the held-out split in request frames of --batch queries;
  // backpressure retries until accepted. Rankings are batch-composition
  // independent, so the frame size cannot change the result.
  const data::Dataset& test = world.split.second;
  std::vector<std::vector<core::RankedLabel>> rankings;
  rankings.reserve(test.size());
  std::size_t degraded_batches = 0;
  for (std::size_t begin = 0; begin < test.size(); begin += options.query_batch) {
    const std::size_t end = std::min(test.size(), begin + options.query_batch);
    nn::Matrix batch(end - begin, test.feature_dim());
    for (std::size_t i = begin; i < end; ++i) batch.set_row(i - begin, test[i].features);
    serve::ReplyMeta meta;
    serve::Rankings part = client.query_until_accepted(batch, &meta);
    if (meta.degraded) {
      ++degraded_batches;
      util::log_warn() << "degraded reply: only " << meta.covered_references << " of "
                       << meta.total_references << " references covered";
    }
    if (part.size() != end - begin)
      throw io::IoError("daemon answered " + std::to_string(part.size()) + " rankings for " +
                        std::to_string(end - begin) + " queries");
    for (std::vector<core::RankedLabel>& ranking : part) rankings.push_back(std::move(ranking));
  }
  if (degraded_batches > 0)
    util::log_warn() << degraded_batches
                     << " batch(es) were answered from partial coverage; the written "
                        "rankings are NOT comparable to `wf eval`'s";

  std::cout << "== held-out evaluation (served by " << options.host << ":" << options.port
            << ") ==\n";
  write_eval_outputs(info.attacker, rankings, world);
  return 0;
}

// One STAT roundtrip against a running daemon (or a --watch polling loop):
// print the snapshot table, the recent spans when the daemon traced any,
// and with --out also wf_stats.csv + bench_stats.json for CI to assert on.
int cmd_stats(const CliOptions& options) {
  if (options.port == 0) {
    std::cerr << "wf: stats needs --port P (the daemon's listen port)\n";
    return 1;
  }
  serve::ClientConfig client_config;
  client_config.connect_retry_ms = 10000;
  client_config.timeout_ms = effective_timeout_ms(options);
  serve::Client client(options.host, static_cast<std::uint16_t>(options.port), client_config);
  for (;;) {
    std::vector<obs::SpanRecord> spans;
    const obs::Snapshot snapshot = client.stats(&spans);
    const util::Table table = obs::snapshot_table(snapshot);
    table.print();
    if (!spans.empty()) {
      std::cout << "\nrecent spans (" << spans.size() << "):\n";
      for (const obs::SpanRecord& span : spans)
        std::cout << "  thread " << span.thread << " #" << span.sequence << " "
                  << std::string(static_cast<std::size_t>(span.depth) * 2, ' ') << span.name
                  << " "
                  << util::Table::num(static_cast<double>(span.duration_us) / 1000.0, 3)
                  << " ms\n";
    }
    if (options.out_given) {
      const std::string csv = eval::results_dir() + "/wf_stats.csv";
      table.write_csv(csv);
      util::BenchReport report("stats");
      report.param("host", options.host);
      report.param("port", std::to_string(options.port));
      obs::snapshot_report(snapshot, report);
      report.write(eval::results_dir());
      std::cout << "stats written to " << csv << "\n";
    }
    if (!options.watch) break;
    // Paced polling between snapshots, not a failure-retry loop.
    std::this_thread::sleep_for(  // wf-lint: allow(retry-policy)
        std::chrono::milliseconds(options.interval_ms));
    std::cout << "\n";
  }
  return 0;
}

int cmd_proxy(const CliOptions& options) {
  if (!options.upstream_given) {
    std::cerr << "wf: proxy needs --upstream HOST:PORT\n";
    return 1;
  }
  serve::FaultPlan plan;
  plan.kind = serve::parse_fault_kind(options.fault_kind);
  plan.rate = options.fault_rate;
  plan.delay_ms = options.fault_delay_ms;
  plan.seed = static_cast<std::uint64_t>(options.seed);
  serve::FaultProxy proxy(options.host, static_cast<std::uint16_t>(options.port),
                          options.upstream, plan);
  // Scripts wait for this exact line before starting clients; flush it.
  std::cout << "wf proxy: listening on " << options.host << ":" << proxy.port()
            << " -> " << options.upstream.host << ":" << options.upstream.port
            << " (fault " << serve::fault_kind_name(plan.kind) << " @ " << plan.rate << ")\n"
            << std::flush;
  proxy.wait();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(1);
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") return usage(0);

  CliOptions options;
  if (!parse_flags(argc, argv, 2, options)) return 1;

  try {
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(options);
    if (command == "train") return cmd_train(options);
    if (command == "eval") return cmd_eval(options);
    if (command == "index") return cmd_index(options);
    if (command == "serve") return cmd_serve(options);
    if (command == "query") return cmd_query(options);
    if (command == "stats") return cmd_stats(options);
    if (command == "proxy") return cmd_proxy(options);
  } catch (const std::exception& e) {
    std::cerr << "wf: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "wf: unknown command \"" << command << "\"\n\n";
  return usage(1);
}
