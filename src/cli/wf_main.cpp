// The single driver binary of the suite:
//
//   wf list                                  enumerate experiments/attackers
//   wf run <exp...|--all> [flags]            run registered experiments
//   wf train --model FILE [flags]            train an attacker, save it
//   wf eval  --model FILE [flags]            reload and evaluate a saved attacker
//
// Shared flags: --smoke, --out DIR, --threads N, --shards S,
// --attacker NAME. The legacy bench_* binaries are thin shims over the
// same registry, so `wf run exp1` and `bench_exp1_static` emit identical
// CSVs.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "eval/registry.hpp"
#include "io/serialize.hpp"
#include "util/bench_report.hpp"
#include "util/env.hpp"

namespace {

using namespace wf;

struct CliOptions {
  std::vector<std::string> positional;
  std::string attacker = "adaptive";
  std::string model;
  int classes = 0;  // 0: first exp1 class count of the active scenario
  bool all = false;
  bool attacker_given = false;
};

int usage(int code) {
  std::cout <<
      "wf - adaptive webpage fingerprinting driver\n"
      "\n"
      "usage:\n"
      "  wf list                     list experiments and attackers\n"
      "  wf run <exp...> [flags]     run experiments (or --all for the whole suite)\n"
      "  wf train [flags]            crawl, train an attacker, save it to --model\n"
      "  wf eval [flags]             reload --model and evaluate it on the same crawl\n"
      "  wf help                     this text\n"
      "\n"
      "flags:\n"
      "  --smoke            seconds-scale configuration (same as WF_SMOKE=1)\n"
      "  --out DIR          results directory (same as WF_RESULTS_DIR; default: results)\n"
      "  --threads N        worker threads (same as WF_THREADS; set before first use)\n"
      "  --shards S         reference-set shards (same as WF_SHARDS)\n"
      "  --attacker NAME    attacker to run/train: adaptive | forest | kfp-knn\n"
      "  --model FILE       attacker file for train/eval (wf::io format)\n"
      "  --classes N        train/eval class count (default: the exp1 leading count)\n"
      "\n"
      "`wf train` crawls the exp1 scenario, trains the attacker on the train\n"
      "split, evaluates the held-out split (writes wf_eval.csv) and saves the\n"
      "model; `wf eval` reloads it and must reproduce wf_eval.csv bit-identically.\n";
  return code;
}

// Parses flags (applying Env overrides immediately) and collects
// positionals. Returns false on a malformed command line.
bool parse_flags(int argc, char** argv, int first, CliOptions& options) {
  const auto value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "wf: " << flag << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      util::Env::override_smoke(true);
    } else if (arg == "--all") {
      options.all = true;
    } else if (arg == "--out") {
      const char* v = value(i, "--out");
      if (v == nullptr) return false;
      util::Env::override_results_dir(v);
    } else if (arg == "--threads" || arg == "--shards") {
      // Same bounds as the WF_THREADS/WF_SHARDS env vars; a flag the user
      // typed gets an error instead of the env vars' silent fallback.
      const bool threads = arg == "--threads";
      const char* v = value(i, arg == "--threads" ? "--threads" : "--shards");
      if (v == nullptr) return false;
      char* end = nullptr;
      const long parsed = std::strtol(v, &end, 10);
      const long max = threads ? 512 : 4096;
      if (end == v || *end != '\0' || parsed < 1 || parsed > max) {
        std::cerr << "wf: " << arg << " must be an integer in [1, " << max << "]\n";
        return false;
      }
      if (threads) {
        util::Env::override_threads(static_cast<std::size_t>(parsed));
      } else {
        util::Env::override_shards(static_cast<std::size_t>(parsed));
      }
    } else if (arg == "--attacker") {
      const char* v = value(i, "--attacker");
      if (v == nullptr) return false;
      options.attacker = v;
      options.attacker_given = true;
    } else if (arg == "--model") {
      const char* v = value(i, "--model");
      if (v == nullptr) return false;
      options.model = v;
    } else if (arg == "--classes") {
      const char* v = value(i, "--classes");
      if (v == nullptr) return false;
      char* end = nullptr;
      const long parsed = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 1 || parsed > 100000) {
        std::cerr << "wf: --classes must be an integer in [1, 100000]\n";
        return false;
      }
      options.classes = static_cast<int>(parsed);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "wf: unknown flag " << arg << "\n";
      return false;
    } else {
      options.positional.push_back(arg);
    }
  }
  return true;
}

int cmd_list() {
  util::Table table({"Experiment", "Legacy binary", "What it reproduces"});
  for (const eval::Experiment& experiment : eval::experiments())
    table.add_row({experiment.name, experiment.legacy_binary, experiment.description});
  table.print();
  std::cout << "\nattackers (--attacker):";
  for (const std::string& name : eval::attacker_names()) std::cout << " " << name;
  std::cout << "\n";
  return 0;
}

int cmd_run(const CliOptions& options) {
  std::vector<const eval::Experiment*> selected;
  if (options.all) {
    for (const eval::Experiment& experiment : eval::experiments())
      selected.push_back(&experiment);
  } else {
    for (const std::string& name : options.positional) {
      const eval::Experiment* experiment = eval::find_experiment(name);
      if (experiment == nullptr) {
        std::cerr << "wf: unknown experiment \"" << name << "\" (see `wf list`)\n";
        return 1;
      }
      selected.push_back(experiment);
    }
  }
  if (selected.empty()) {
    std::cerr << "wf: nothing to run (name experiments or pass --all)\n";
    return 1;
  }
  const eval::AttackerFactory factory =
      options.attacker_given ? eval::attacker_factory(options.attacker)
                             : eval::AttackerFactory{};
  util::Env::log_effective();
  for (const eval::Experiment* experiment : selected) {
    if (selected.size() > 1)
      std::cout << "\n=== " << experiment->name << ": " << experiment->description
                << " ===\n";
    if (options.attacker_given && !experiment->accepts_attacker)
      util::log_info() << experiment->name << ": fixed attacker roster; --attacker ignored";
    const int code = experiment->run(experiment->accepts_attacker ? factory
                                                                  : eval::AttackerFactory{});
    if (code != 0) return code;
  }
  return 0;
}

// The shared train/eval scenario: the exp1 crawl of the wiki site at
// `classes` classes, split into train/held-out halves. Keeping the seeds
// identical between `wf train` and `wf eval` is what makes the save ->
// load -> evaluate round trip diffable.
struct TrainEvalWorld {
  eval::WikiScenario scenario;
  int classes;
  data::SampleSplit split;

  explicit TrainEvalWorld(int requested_classes) {
    const eval::ScenarioConfig& cfg = scenario.config();
    classes = requested_classes > 0 ? requested_classes : cfg.exp1_class_counts.front();
    data::DatasetBuildOptions crawl;
    crawl.samples_per_class = cfg.samples_per_class;
    crawl.sequence = cfg.seq3;
    crawl.browser = cfg.browser;
    crawl.seed = cfg.crawl_seed + static_cast<std::uint64_t>(classes);
    const data::Dataset dataset = data::build_dataset(scenario.wiki_site(classes),
                                                      scenario.wiki_farm(), {}, crawl);
    split = data::split_samples(dataset, cfg.train_samples_per_class, cfg.split_seed);
  }
};

void write_eval_table(const core::Attacker& attacker, const TrainEvalWorld& world) {
  const core::EvaluationResult result = attacker.evaluate(world.split.second, 10);
  util::Table table({"Attacker", "Classes", "Top-1", "Top-3", "Top-5", "Top-10"});
  table.add_row({attacker.name(), std::to_string(world.classes),
                 util::Table::pct(result.curve.top(1)), util::Table::pct(result.curve.top(3)),
                 util::Table::pct(result.curve.top(5)),
                 util::Table::pct(result.curve.top(10))});
  table.print();
  const std::string csv = eval::results_dir() + "/wf_eval.csv";
  table.write_csv(csv);
  std::cout << "CSV written to " << csv << "\n";
}

int cmd_train(const CliOptions& options) {
  if (options.model.empty()) {
    std::cerr << "wf: train needs --model FILE\n";
    return 1;
  }
  util::Env::log_effective();
  // Resolve the attacker before the crawl so a bad name fails fast.
  const eval::AttackerFactory factory = eval::attacker_factory(options.attacker);
  TrainEvalWorld world(options.classes);
  const eval::ScenarioConfig& cfg = world.scenario.config();
  const std::unique_ptr<core::Attacker> attacker = factory(cfg.embedding3, cfg);
  util::log_info() << "training \"" << attacker->name() << "\" on " << world.classes
                   << " classes (" << world.split.first.size() << " samples)";
  const core::TrainStats stats = attacker->train(world.split.first);
  std::cout << "trained " << attacker->name() << " in " << util::Table::num(stats.seconds, 1)
            << "s\n\n== held-out evaluation ==\n";
  write_eval_table(*attacker, world);
  attacker->save(options.model);
  std::cout << "model saved to " << options.model << "\n";
  return 0;
}

int cmd_eval(const CliOptions& options) {
  if (options.model.empty()) {
    std::cerr << "wf: eval needs --model FILE\n";
    return 1;
  }
  util::Env::log_effective();
  const std::unique_ptr<core::Attacker> attacker = io::load_attacker(options.model);
  util::log_info() << "loaded \"" << attacker->name() << "\" from " << options.model;
  TrainEvalWorld world(options.classes);
  // A bit-identical re-evaluation needs the training crawl: refuse a world
  // whose class set does not match what the model targets, instead of
  // silently scoring it against the wrong site.
  if (attacker->target_classes() != world.split.first.classes()) {
    std::cerr << "wf: model targets " << attacker->target_classes().size()
              << " classes but the crawl has " << world.split.first.classes().size()
              << "; pass the --classes/--smoke used at training time\n";
    return 1;
  }
  std::cout << "== held-out evaluation (reloaded model) ==\n";
  write_eval_table(*attacker, world);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(1);
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") return usage(0);

  CliOptions options;
  if (!parse_flags(argc, argv, 2, options)) return 1;

  try {
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(options);
    if (command == "train") return cmd_train(options);
    if (command == "eval") return cmd_eval(options);
  } catch (const std::exception& e) {
    std::cerr << "wf: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "wf: unknown command \"" << command << "\"\n\n";
  return usage(1);
}
