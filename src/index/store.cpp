#include "index/store.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/serialize.hpp"
#include "nn/matrix.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace wf::index {

namespace {

// The bulk arrays are written and mapped as raw host memory, so the host
// representation must match the declared on-disk one.
static_assert(sizeof(int) == 4 && sizeof(float) == 4 && sizeof(double) == 8 &&
              sizeof(std::uint64_t) == 8);

void require_little_endian() {
  if (std::endian::native != std::endian::little)
    throw io::IoError("index files are little-endian; this host is not");
}

std::string journal_path_of(const std::string& path) { return path + ".journal"; }

constexpr std::size_t kHeaderBytes = 104;

std::size_t align64(std::size_t offset) { return (offset + 63) & ~std::size_t{63}; }

struct Header {
  std::uint64_t dim = 0;
  std::uint64_t clusters = 0;
  std::uint64_t rows = 0;
  std::uint64_t next_row_id = 0;
  std::uint64_t n_class_ids = 0;
  std::uint64_t default_probes = 0;
  std::uint64_t kmeans_seed = 0;
  std::uint64_t kmeans_iters = 0;
  std::uint64_t sample_per_cluster = 0;
  double rebuild_churn = 0.0;
  std::uint64_t file_bytes = 0;
};

// Byte offset of each array (see the layout comment in index/store.hpp).
struct Layout {
  std::size_t cluster_rows = 0;
  std::size_t id_to_label = 0;
  std::size_t centroids = 0;
  std::size_t data = 0;
  std::size_t sq_norms = 0;
  std::size_t class_ids = 0;
  std::size_t row_ids = 0;
  std::size_t total = 0;
};

Layout layout_of(const Header& h) {
  Layout l;
  l.cluster_rows = align64(kHeaderBytes);
  l.id_to_label = align64(l.cluster_rows + 8 * h.clusters);
  l.centroids = align64(l.id_to_label + 4 * h.n_class_ids);
  l.data = align64(l.centroids + 4 * h.clusters * h.dim);
  l.sq_norms = align64(l.data + 4 * h.rows * h.dim);
  l.class_ids = align64(l.sq_norms + 8 * h.rows);
  l.row_ids = align64(l.class_ids + 4 * h.rows);
  l.total = l.row_ids + 8 * h.rows;
  return l;
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double get_f64(const std::uint8_t* p) {
  const std::uint64_t bits = get_u64(p);
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

// Header parse + every check that does not touch the bulk arrays: magic,
// versions, kind, plausibility caps (a corrupt count must raise IoError, not
// a multi-GiB allocation or an overflowing layout), and the file_bytes pin
// against both the declared layout and the actual mapping size.
Header parse_header(const io::MappedFile& map) {
  require_little_endian();
  if (map.size() < kHeaderBytes)
    throw io::IoError("index file truncated: " + map.path());
  const std::uint8_t* p = map.data();
  if (std::memcmp(p, "WFIO", 4) != 0) throw io::IoError("not a wf::io file (bad magic)");
  const std::uint32_t version = get_u32(p + 4);
  if (version != io::kFormatVersion)
    throw io::IoError("unsupported format version " + std::to_string(version) +
                      " (supported: " + std::to_string(io::kFormatVersion) + ")");
  const std::string kind(reinterpret_cast<const char*>(p + 8), 4);
  if (kind != "IVFX") throw io::IoError("expected a IVFX file, found " + kind);
  const std::uint32_t layout_version = get_u32(p + 12);
  if (layout_version != kIndexLayoutVersion)
    throw io::IoError("unsupported index layout version " + std::to_string(layout_version) +
                      " (supported: " + std::to_string(kIndexLayoutVersion) + ")");
  Header h;
  h.dim = get_u64(p + 16);
  h.clusters = get_u64(p + 24);
  h.rows = get_u64(p + 32);
  h.next_row_id = get_u64(p + 40);
  h.n_class_ids = get_u64(p + 48);
  h.default_probes = get_u64(p + 56);
  h.kmeans_seed = get_u64(p + 64);
  h.kmeans_iters = get_u64(p + 72);
  h.sample_per_cluster = get_u64(p + 80);
  h.rebuild_churn = get_f64(p + 88);
  h.file_bytes = get_u64(p + 96);
  if (h.dim == 0 || h.dim > (std::uint64_t{1} << 20))
    throw io::IoError("index header implausible: dim " + std::to_string(h.dim));
  if (h.clusters == 0 || h.clusters > (std::uint64_t{1} << 24))
    throw io::IoError("index header implausible: clusters " + std::to_string(h.clusters));
  if (h.rows > (std::uint64_t{1} << 40))
    throw io::IoError("index header implausible: rows " + std::to_string(h.rows));
  if (h.n_class_ids > (std::uint64_t{1} << 24))
    throw io::IoError("index header implausible: class ids " + std::to_string(h.n_class_ids));
  const Layout l = layout_of(h);
  if (h.file_bytes != l.total)
    throw io::IoError("index header inconsistent: file_bytes " +
                      std::to_string(h.file_bytes) + " != layout " + std::to_string(l.total));
  if (map.size() != h.file_bytes)
    throw io::IoError("index file truncated: expected " + std::to_string(h.file_bytes) +
                      " bytes, have " + std::to_string(map.size()) + " (" + map.path() + ")");
  return h;
}

struct BaseTables {
  Header header;
  Layout layout;
  const std::uint64_t* cluster_rows = nullptr;
  const int* id_to_label = nullptr;
  const float* centroids = nullptr;
  const float* data = nullptr;
  const double* sq_norms = nullptr;
  const int* class_ids = nullptr;
  const std::uint64_t* row_ids = nullptr;
};

BaseTables base_tables(const io::MappedFile& map) {
  BaseTables t;
  t.header = parse_header(map);
  t.layout = layout_of(t.header);
  const std::uint8_t* base = map.data();
  t.cluster_rows = reinterpret_cast<const std::uint64_t*>(base + t.layout.cluster_rows);
  t.id_to_label = reinterpret_cast<const int*>(base + t.layout.id_to_label);
  t.centroids = reinterpret_cast<const float*>(base + t.layout.centroids);
  t.data = reinterpret_cast<const float*>(base + t.layout.data);
  t.sq_norms = reinterpret_cast<const double*>(base + t.layout.sq_norms);
  t.class_ids = reinterpret_cast<const int*>(base + t.layout.class_ids);
  t.row_ids = reinterpret_cast<const std::uint64_t*>(base + t.layout.row_ids);
  std::uint64_t sum = 0;
  for (std::uint64_t c = 0; c < t.header.clusters; ++c) {
    sum += t.cluster_rows[c];
    if (sum > t.header.rows) throw io::IoError("index cluster rows exceed row count");
  }
  if (sum != t.header.rows) throw io::IoError("index cluster rows do not cover row count");
  return t;
}

// O(rows) pass over the small id tables only (the embedding data stays
// untouched, so open cost is unaffected): every class id must index the
// label table and every row id must precede the recorded next_row_id.
void validate_ids(const BaseTables& t) {
  const auto n_ids = static_cast<std::int64_t>(t.header.n_class_ids);
  for (std::uint64_t i = 0; i < t.header.rows; ++i) {
    const int id = t.class_ids[i];
    if (id < 0 || static_cast<std::int64_t>(id) >= n_ids)
      throw io::IoError("index class id out of range");
    if (t.row_ids[i] >= t.header.next_row_id)
      throw io::IoError("index row id out of range");
  }
}

void raw_write(std::ostream& out, const void* data, std::size_t bytes) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  if (!out) throw io::IoError("write failed");
}

void pad_to(std::ostream& out, std::size_t& offset, std::size_t target) {
  WF_CHECK(target >= offset, "index writer: layout offsets must be monotone");
  static constexpr char kZeros[64] = {};
  while (offset < target) {
    const std::size_t chunk = std::min<std::size_t>(sizeof(kZeros), target - offset);
    raw_write(out, kZeros, chunk);
    offset += chunk;
  }
}

std::int64_t journal_size_or_zero(const std::string& journal_path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(journal_path, ec);
  return ec ? 0 : static_cast<std::int64_t>(size);
}

// Streams the journal (if one exists) through the two callbacks in record
// order. on_add(cluster, label, row_id, sq_norm, embedding); on_remove(label).
// Shared by every journal consumer so they cannot drift: a mid-record EOF is
// an IoError, a clean end between records is the end of the journal.
template <typename OnAdd, typename OnRemove>
void scan_journal(const std::string& journal_path, std::uint64_t dim, std::uint64_t clusters,
                  OnAdd&& on_add, OnRemove&& on_remove) {
  std::ifstream in(journal_path, std::ios::binary);
  if (!in) return;  // no journal: a bare base store
  io::Reader r(in);
  const std::string kind = io::read_header(r);
  if (kind != "IVFJ") throw io::IoError("expected a IVFJ journal, found " + kind);
  const std::uint32_t layout_version = r.u32();
  if (layout_version != kJournalLayoutVersion)
    throw io::IoError("unsupported journal layout version " + std::to_string(layout_version) +
                      " (supported: " + std::to_string(kJournalLayoutVersion) + ")");
  if (r.u64() != dim) throw io::IoError("journal/index dim mismatch: " + journal_path);
  if (r.u64() != clusters)
    throw io::IoError("journal/index cluster count mismatch: " + journal_path);
  std::vector<float> embedding(dim);
  for (;;) {
    if (in.peek() == std::char_traits<char>::eof()) break;
    const std::uint8_t record = r.u8();
    if (record == 1) {
      const std::uint64_t cluster = r.u64();
      const int label = r.i32();
      const std::uint64_t row_id = r.u64();
      const double sq_norm = r.f64();
      for (float& x : embedding) x = r.f32();
      if (cluster >= clusters)
        throw io::IoError("journal add record: cluster out of range");
      on_add(cluster, label, row_id, sq_norm, embedding);
    } else if (record == 2) {
      on_remove(r.i32());
    } else {
      throw io::IoError("unknown journal record kind " + std::to_string(record));
    }
  }
}

// The same margin + strict-less tie-break as the in-memory store's
// nearest_centroid: the journal writer must pick the cluster the live store
// would have picked, or replay diverges.
std::size_t nearest_centroid_of(std::span<const float> row, const float* centroids,
                                const double* norms, std::size_t n, std::size_t dim) {
  thread_local std::vector<float> dots;
  dots.resize(n);
  nn::gemm_nt_serial(row.data(), 1, centroids, n, dim, dots.data());
  std::size_t best = 0;
  double best_margin = norms[0] - 2.0 * static_cast<double>(dots[0]);
  for (std::size_t c = 1; c < n; ++c) {
    const double margin = norms[c] - 2.0 * static_cast<double>(dots[c]);
    if (margin < best_margin) {
      best_margin = margin;
      best = c;
    }
  }
  return best;
}

IvfConfig config_of(const Header& h) {
  IvfConfig config;
  // The stored cluster count is pinned (not the original "0 = auto"), so a
  // rebuild from this file reproduces the same partition width.
  config.clusters = h.clusters;
  config.probes = h.default_probes;
  config.kmeans_iters = h.kmeans_iters;
  config.sample_per_cluster = h.sample_per_cluster;
  config.seed = h.kmeans_seed;
  config.rebuild_churn = h.rebuild_churn;
  return config;
}

}  // namespace

void write_index_file(const std::string& path, const IvfReferenceStore& store) {
  require_little_endian();
  if (store.dim() == 0 || store.clusters() == 0)
    throw io::IoError("cannot write an empty index (no clusters)");
  Header h;
  h.dim = store.dim();
  h.clusters = store.clusters();
  h.rows = store.size();
  h.next_row_id = store.next_row_id();
  h.n_class_ids = store.n_class_ids();
  h.default_probes = store.config().probes;
  h.kmeans_seed = store.config().seed;
  h.kmeans_iters = store.config().kmeans_iters;
  h.sample_per_cluster = store.config().sample_per_cluster;
  h.rebuild_churn = store.config().rebuild_churn;
  const Layout l = layout_of(h);
  h.file_bytes = l.total;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw io::IoError("cannot open " + path + " for writing");
  io::Writer w(out);
  io::write_header(w, "IVFX");
  w.u32(kIndexLayoutVersion);
  w.u64(h.dim);
  w.u64(h.clusters);
  w.u64(h.rows);
  w.u64(h.next_row_id);
  w.u64(h.n_class_ids);
  w.u64(h.default_probes);
  w.u64(h.kmeans_seed);
  w.u64(h.kmeans_iters);
  w.u64(h.sample_per_cluster);
  w.f64(h.rebuild_churn);
  w.u64(h.file_bytes);
  std::size_t offset = kHeaderBytes;

  pad_to(out, offset, l.cluster_rows);
  std::vector<std::uint64_t> cluster_rows(h.clusters);
  for (std::size_t c = 0; c < h.clusters; ++c) cluster_rows[c] = store.cell(c).rows();
  raw_write(out, cluster_rows.data(), 8 * cluster_rows.size());
  offset += 8 * cluster_rows.size();

  pad_to(out, offset, l.id_to_label);
  raw_write(out, store.id_to_label().data(), 4 * store.id_to_label().size());
  offset += 4 * store.id_to_label().size();

  pad_to(out, offset, l.centroids);
  raw_write(out, store.centroids().data(), 4 * store.centroids().size());
  offset += 4 * store.centroids().size();

  pad_to(out, offset, l.data);
  for (std::size_t c = 0; c < h.clusters; ++c) {
    const auto& cell = store.cell(c);
    raw_write(out, cell.data.data(), 4 * cell.data.size());
    offset += 4 * cell.data.size();
  }

  pad_to(out, offset, l.sq_norms);
  for (std::size_t c = 0; c < h.clusters; ++c) {
    const auto& cell = store.cell(c);
    raw_write(out, cell.sq_norms.data(), 8 * cell.sq_norms.size());
    offset += 8 * cell.sq_norms.size();
  }

  pad_to(out, offset, l.class_ids);
  for (std::size_t c = 0; c < h.clusters; ++c) {
    const auto& cell = store.cell(c);
    raw_write(out, cell.class_ids.data(), 4 * cell.class_ids.size());
    offset += 4 * cell.class_ids.size();
  }

  pad_to(out, offset, l.row_ids);
  for (std::size_t c = 0; c < h.clusters; ++c) {
    const auto& cell = store.cell(c);
    raw_write(out, cell.row_ids.data(), 8 * cell.row_ids.size());
    offset += 8 * cell.row_ids.size();
  }
  WF_CHECK(offset == l.total, "index writer: layout/write drift");
  out.flush();
  if (!out) throw io::IoError("write failed: " + path);
}

IvfReferenceStore load_index(const std::string& path) {
  io::MappedFile map(path);
  const BaseTables t = base_tables(map);
  validate_ids(t);
  const std::size_t dim = t.header.dim;

  util::AlignedVector<float> centroids(t.centroids, t.centroids + t.header.clusters * dim);
  std::vector<int> id_to_label(t.id_to_label, t.id_to_label + t.header.n_class_ids);
  std::vector<IvfReferenceStore::Cell> cells(t.header.clusters);
  std::uint64_t off = 0;
  for (std::size_t c = 0; c < t.header.clusters; ++c) {
    const std::uint64_t rows = t.cluster_rows[c];
    IvfReferenceStore::Cell& cell = cells[c];
    cell.data.assign(t.data + off * dim, t.data + (off + rows) * dim);
    cell.sq_norms.assign(t.sq_norms + off, t.sq_norms + off + rows);
    cell.class_ids.assign(t.class_ids + off, t.class_ids + off + rows);
    cell.row_ids.assign(t.row_ids + off, t.row_ids + off + rows);
    cell.labels.resize(rows);
    for (std::uint64_t i = 0; i < rows; ++i)
      cell.labels[i] = id_to_label[static_cast<std::size_t>(cell.class_ids[i])];
    off += rows;
  }

  IvfReferenceStore store =
      IvfReferenceStore::restore(dim, t.header.next_row_id, config_of(t.header),
                                 std::move(centroids), std::move(id_to_label), std::move(cells));
  // Ordered journal replay — the only path that honours remove-class records.
  scan_journal(
      journal_path_of(path), t.header.dim, t.header.clusters,
      [&](std::uint64_t cluster, int label, std::uint64_t row_id, double,
          const std::vector<float>& embedding) {
        store.add_pinned(cluster, label, row_id, {embedding.data(), embedding.size()});
      },
      [&](int label) { store.remove_class(label); });
  detail::index_metrics().journal_bytes->set(journal_size_or_zero(journal_path_of(path)));
  return store;
}

std::unique_ptr<core::ReferenceStore> open_index(const std::string& path, std::size_t probes) {
  std::size_t removals = 0;
  {
    io::MappedFile map(path);
    const Header h = parse_header(map);
    scan_journal(
        journal_path_of(path), h.dim, h.clusters,
        [](std::uint64_t, int, std::uint64_t, double, const std::vector<float>&) {},
        [&](int) { ++removals; });
  }
  if (removals > 0) {
    util::log_warn() << "wf::index: journal for " << path << " holds " << removals
                     << " class removal(s); serving from a full in-memory load "
                        "(run `wf index rebuild` to compact)";
    auto store = std::make_unique<IvfReferenceStore>(load_index(path));
    if (probes != 0) store->set_probes(probes);
    return store;
  }
  return std::make_unique<MappedIndex>(path, probes);
}

std::size_t rebuild_index_file(const std::string& path) {
  IvfReferenceStore store = load_index(path);
  store.rebuild();
  const std::string tmp = path + ".tmp";
  write_index_file(tmp, store);
  std::filesystem::rename(tmp, path);
  std::error_code ec;
  std::filesystem::remove(journal_path_of(path), ec);
  detail::index_metrics().journal_bytes->set(0);
  return store.size();
}

IndexJournalWriter::IndexJournalWriter(const std::string& index_path)
    : journal_path_(journal_path_of(index_path)) {
  io::MappedFile map(index_path);
  const BaseTables t = base_tables(map);
  dim_ = t.header.dim;
  centroids_.assign(t.centroids, t.centroids + t.header.clusters * dim_);
  centroid_norms_.resize(t.header.clusters);
  for (std::size_t c = 0; c < t.header.clusters; ++c)
    centroid_norms_[c] = nn::squared_norm(centroids_.data() + c * dim_, dim_);
  next_row_id_ = t.header.next_row_id;
  // Continue the row-id sequence past anything already journaled, so replay
  // sees the same ids a live in-memory store would have handed out.
  scan_journal(
      journal_path_, dim_, t.header.clusters,
      [&](std::uint64_t, int, std::uint64_t row_id, double, const std::vector<float>&) {
        next_row_id_ = std::max(next_row_id_, row_id + 1);
      },
      [](int) {});
  detail::index_metrics().journal_bytes->set(journal_size_or_zero(journal_path_));
}

void IndexJournalWriter::add(std::span<const float> embedding, int label) {
  if (embedding.size() != dim_)
    throw io::IoError("IndexJournalWriter::add: embedding width mismatch");
  const std::size_t cluster = nearest_centroid_of(embedding, centroids_.data(),
                                                  centroid_norms_.data(),
                                                  centroid_norms_.size(), dim_);
  std::ostringstream buf;
  io::Writer w(buf);
  w.u8(1);
  w.u64(cluster);
  w.i32(label);
  w.u64(next_row_id_);
  w.f64(nn::squared_norm(embedding.data(), dim_));
  for (const float x : embedding) w.f32(x);
  append(buf.str());
  ++next_row_id_;
}

void IndexJournalWriter::remove_class(int label) {
  std::ostringstream buf;
  io::Writer w(buf);
  w.u8(2);
  w.i32(label);
  append(buf.str());
}

void IndexJournalWriter::append(const std::string& record) {
  const bool fresh = journal_size_or_zero(journal_path_) == 0;
  std::ofstream out(journal_path_, std::ios::binary | std::ios::app);
  if (!out) throw io::IoError("cannot open journal " + journal_path_ + " for append");
  io::Writer w(out);
  if (fresh) {
    io::write_header(w, "IVFJ");
    w.u32(kJournalLayoutVersion);
    w.u64(dim_);
    w.u64(centroid_norms_.size());
  }
  raw_write(out, record.data(), record.size());
  out.flush();
  if (!out) throw io::IoError("journal write failed: " + journal_path_);
  out.close();
  detail::index_metrics().journal_bytes->set(journal_size_or_zero(journal_path_));
}

IndexInfo read_index_info(const std::string& path) {
  io::MappedFile map(path);
  const BaseTables t = base_tables(map);
  IndexInfo info;
  info.dim = t.header.dim;
  info.clusters = t.header.clusters;
  info.rows = t.header.rows;
  info.n_class_ids = t.header.n_class_ids;
  info.config = config_of(t.header);
  info.next_row_id = t.header.next_row_id;
  info.file_bytes = t.header.file_bytes;
  info.min_cluster_rows = t.header.rows;
  for (std::uint64_t c = 0; c < t.header.clusters; ++c) {
    info.min_cluster_rows = std::min<std::size_t>(info.min_cluster_rows, t.cluster_rows[c]);
    info.max_cluster_rows = std::max<std::size_t>(info.max_cluster_rows, t.cluster_rows[c]);
  }
  info.journal_bytes = static_cast<std::uint64_t>(journal_size_or_zero(journal_path_of(path)));
  scan_journal(
      journal_path_of(path), t.header.dim, t.header.clusters,
      [&](std::uint64_t, int, std::uint64_t, double, const std::vector<float>&) {
        ++info.journal_adds;
      },
      [&](int) { ++info.journal_removes; });
  return info;
}

MappedIndex::MappedIndex(const std::string& path, std::size_t probes) : map_(path) {
  const auto& metrics = detail::index_metrics();
  probes_total_ = metrics.probes_total;
  clusters_scanned_ = metrics.clusters_scanned;
  rows_scanned_ = metrics.rows_scanned;

  const BaseTables t = base_tables(map_);
  validate_ids(t);
  dim_ = t.header.dim;
  n_clusters_ = t.header.clusters;
  size_ = t.header.rows;
  n_base_ids_ = t.header.n_class_ids;
  probes_ = probes != 0 ? probes : t.header.default_probes;
  cluster_rows_ = t.cluster_rows;
  id_to_label_ = t.id_to_label;
  centroids_ = t.centroids;
  data_ = t.data;
  sq_norms_ = t.sq_norms;
  class_ids_ = t.class_ids;
  row_ids_ = t.row_ids;
  cluster_offsets_.resize(n_clusters_);
  std::uint64_t off = 0;
  for (std::size_t c = 0; c < n_clusters_; ++c) {
    cluster_offsets_[c] = off;
    off += cluster_rows_[c];
  }
  centroid_norms_.resize(n_clusters_);
  for (std::size_t c = 0; c < n_clusters_; ++c)
    centroid_norms_[c] = nn::squared_norm(centroids_ + c * dim_, dim_);

  // Replay journal appends as tail cells; class ids continue the base id
  // space in journal order, exactly like add_pinned() on a loaded store.
  tails_.resize(n_clusters_);
  std::unordered_map<int, int> label_to_id;
  for (std::size_t id = 0; id < n_base_ids_; ++id)
    label_to_id.emplace(id_to_label_[id], static_cast<int>(id));
  scan_journal(
      journal_path_of(path), dim_, n_clusters_,
      [&](std::uint64_t cluster, int label, std::uint64_t row_id, double sq_norm,
          const std::vector<float>& embedding) {
        const auto [it, inserted] = label_to_id.try_emplace(
            label, static_cast<int>(n_base_ids_ + extra_labels_.size()));
        if (inserted) extra_labels_.push_back(label);
        Tail& tail = tails_[cluster];
        tail.data.insert(tail.data.end(), embedding.begin(), embedding.end());
        tail.sq_norms.push_back(sq_norm);
        tail.class_ids.push_back(it->second);
        tail.row_ids.push_back(row_id);
        ++journal_rows_;
        ++size_;
      },
      [&](int) {
        throw io::IoError("journal for " + path +
                          " holds class removals; load in memory or run `wf index rebuild`");
      });
  metrics.journal_bytes->set(journal_size_or_zero(journal_path_of(path)));
}

core::ShardView MappedIndex::shard_view(std::size_t shard) const {
  WF_CHECK(shard < 2 * n_clusters_, "MappedIndex::shard_view: shard out of range");
  if (shard < n_clusters_) {
    const std::uint64_t off = cluster_offsets_[shard];
    return {data_ + off * dim_, sq_norms_ + off, class_ids_ + off, row_ids_ + off,
            static_cast<std::size_t>(cluster_rows_[shard])};
  }
  const Tail& tail = tails_[shard - n_clusters_];
  return {tail.data.data(), tail.sq_norms.data(), tail.class_ids.data(), tail.row_ids.data(),
          tail.sq_norms.size()};
}

int MappedIndex::label_of_id(std::size_t id) const {
  WF_CHECK(id < n_class_ids(), "MappedIndex::label_of_id: id out of range");
  if (id < n_base_ids_) return id_to_label_[id];
  return extra_labels_[id - n_base_ids_];
}

void MappedIndex::probe_shards(std::span<const float> query,
                               std::vector<std::size_t>& out) const {
  out.clear();
  if (n_clusters_ == 0) return;
  WF_CHECK(query.size() == dim_, "MappedIndex::probe_shards: query width mismatch");
  const std::size_t n_probes = probes_ == 0 ? n_clusters_ : std::min(probes_, n_clusters_);
  thread_local std::vector<std::size_t> picked;
  picked.clear();
  if (n_probes >= n_clusters_) {
    for (std::size_t c = 0; c < n_clusters_; ++c) picked.push_back(c);
  } else {
    thread_local std::vector<float> dots;
    thread_local std::vector<std::pair<double, std::size_t>> ranked;
    dots.resize(n_clusters_);
    nn::gemm_nt_serial(query.data(), 1, centroids_, n_clusters_, dim_, dots.data());
    ranked.resize(n_clusters_);
    for (std::size_t c = 0; c < n_clusters_; ++c)
      ranked[c] = {centroid_norms_[c] - 2.0 * static_cast<double>(dots[c]), c};
    // pair's lexicographic < breaks margin ties toward the lower cluster.
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(n_probes),
                      ranked.end());
    for (std::size_t p = 0; p < n_probes; ++p) picked.push_back(ranked[p].second);
  }
  // Each probed cluster scans its mapped base shard plus its journal tail:
  // together they hold exactly the rows an in-memory replay would have
  // merged into cell c, so rankings agree bit for bit.
  std::uint64_t rows = 0;
  for (const std::size_t c : picked) {
    out.push_back(c);
    rows += cluster_rows_[c];
  }
  for (const std::size_t c : picked) {
    const Tail& tail = tails_[c];
    if (!tail.sq_norms.empty()) {
      out.push_back(n_clusters_ + c);
      rows += tail.sq_norms.size();
    }
  }
  probes_total_->inc();
  clusters_scanned_->inc(picked.size());
  rows_scanned_->inc(rows);
}

}  // namespace wf::index
