#include "index/ivf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "io/binary.hpp"
#include "nn/matrix.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wf::index {

namespace detail {

const IndexMetrics& index_metrics() {
  static const IndexMetrics metrics = {
      &obs::Registry::global().counter("index.probes_total"),
      &obs::Registry::global().counter("index.clusters_scanned"),
      &obs::Registry::global().counter("index.rows_scanned"),
      &obs::Registry::global().counter("index.rebuilds_total"),
      &obs::Registry::global().gauge("index.journal_bytes"),
  };
  return metrics;
}

}  // namespace detail

namespace {

constexpr std::size_t kAssignTile = 256;  // rows per centroid-assignment GEMM

// argmin over clusters of ‖row − c‖², dropping the constant ‖row‖² term:
// margin(c) = ‖c‖² − 2·<row, c>. Strict less keeps the lowest cluster index
// on ties — every assignment in this file (bulk, add(), k-means) goes
// through the same margin + tie-break so they can never disagree.
std::size_t argmin_margin(const double* norms, const float* dots, std::size_t n) {
  std::size_t best = 0;
  double best_margin = norms[0] - 2.0 * static_cast<double>(dots[0]);
  for (std::size_t c = 1; c < n; ++c) {
    const double margin = norms[c] - 2.0 * static_cast<double>(dots[c]);
    if (margin < best_margin) {
      best_margin = margin;
      best = c;
    }
  }
  return best;
}

// Nearest-centroid assignment of `n` contiguous rows, GEMM-tiled and
// parallel over the pool; each row's answer is schedule-independent.
void assign_rows(const float* rows, std::size_t n, std::size_t dim, const float* centroids,
                 const double* centroid_norms, std::size_t n_centroids,
                 std::vector<std::size_t>& out) {
  out.resize(n);
  util::global_pool().parallel_blocks(0, n, kAssignTile, [&](std::size_t lo, std::size_t hi) {
    thread_local std::vector<float> dots;
    for (std::size_t t0 = lo; t0 < hi; t0 += kAssignTile) {
      const std::size_t t1 = std::min(hi, t0 + kAssignTile);
      dots.resize((t1 - t0) * n_centroids);
      nn::gemm_nt_serial(rows + t0 * dim, t1 - t0, centroids, n_centroids, dim, dots.data());
      for (std::size_t i = t0; i < t1; ++i)
        out[i] = argmin_margin(centroid_norms, dots.data() + (i - t0) * n_centroids,
                               n_centroids);
    }
  });
}

}  // namespace

IvfReferenceStore::IvfReferenceStore(const core::ReferenceStore& base, const IvfConfig& config)
    : config_(config), dim_(base.dim()), next_row_id_(0) {
  const auto& metrics = detail::index_metrics();
  probes_total_ = metrics.probes_total;
  clusters_scanned_ = metrics.clusters_scanned;
  rows_scanned_ = metrics.rows_scanned;
  rebuilds_total_ = metrics.rebuilds_total;

  // Gather the base rows in global insertion-id order: the clustering (and
  // therefore the file layout) is a function of the content, not of how
  // the base store happened to be sharded.
  struct Ref {
    std::uint64_t row_id;
    std::size_t shard;
    std::size_t row;
  };
  std::vector<Ref> refs;
  refs.reserve(base.size());
  for (std::size_t s = 0; s < base.shard_count(); ++s) {
    const core::ShardView shard = base.shard_view(s);
    for (std::size_t j = 0; j < shard.rows; ++j)
      refs.push_back({shard.row_ids != nullptr ? shard.row_ids[j] : j, s, j});
  }
  std::sort(refs.begin(), refs.end(),
            [](const Ref& a, const Ref& b) { return a.row_id < b.row_id; });

  const std::size_t n = refs.size();
  util::AlignedVector<float> data(n * dim_);
  std::vector<int> labels(n);
  std::vector<std::uint64_t> row_ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    const core::ShardView shard = base.shard_view(refs[i].shard);
    std::copy_n(shard.data + refs[i].row * dim_, dim_, data.data() + i * dim_);
    labels[i] = base.label_of_id(static_cast<std::size_t>(shard.class_ids[refs[i].row]));
    row_ids[i] = refs[i].row_id;
    next_row_id_ = std::max(next_row_id_, refs[i].row_id + 1);
  }
  build_from_rows(data.data(), labels.data(), row_ids.data(), n);
}

void IvfReferenceStore::build_from_rows(const float* data, const int* labels,
                                        const std::uint64_t* row_ids, std::size_t n) {
  std::size_t n_clusters;
  if (config_.clusters > 0)
    n_clusters = std::min(config_.clusters, std::max<std::size_t>(n, 1));
  else
    n_clusters = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::lround(std::sqrt(static_cast<double>(n)))), 1,
        std::max<std::size_t>(n, 1));

  centroids_.assign(n_clusters * dim_, 0.0f);
  centroid_norms_.assign(n_clusters, 0.0);
  cells_.assign(n_clusters, {});
  id_to_label_.clear();
  label_to_id_.clear();
  size_ = n;
  built_rows_ = n;
  churn_ = 0;
  if (n == 0) return;

  util::Rng rng(config_.seed);

  // Training sample: a seeded partial shuffle of the row indices. The
  // centroids are trained on at most sample_per_cluster rows per cluster;
  // assignment below always covers every row.
  const std::size_t sample =
      std::min(n, std::max(n_clusters, n_clusters * config_.sample_per_cluster));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = 0; i < sample; ++i)
    std::swap(order[i], order[i + rng.index(n - i)]);
  util::AlignedVector<float> train(sample * dim_);
  for (std::size_t s = 0; s < sample; ++s)
    std::copy_n(data + order[s] * dim_, dim_, train.data() + s * dim_);

  // k-means++ init over the sample: each next centroid is drawn with
  // probability proportional to its squared distance from the chosen set.
  std::vector<double> d2(sample, 1e300);
  const std::size_t first = rng.index(sample);
  std::copy_n(train.data() + first * dim_, dim_, centroids_.data());
  for (std::size_t c = 1; c < n_clusters; ++c) {
    const float* last = centroids_.data() + (c - 1) * dim_;
    double total = 0.0;
    for (std::size_t s = 0; s < sample; ++s) {
      const double d = nn::squared_distance({train.data() + s * dim_, dim_}, {last, dim_});
      if (d < d2[s]) d2[s] = d;
      total += d2[s];
    }
    std::size_t pick = 0;
    if (total > 0.0) {
      const double r = rng.uniform() * total;
      double cum = 0.0;
      for (std::size_t s = 0; s < sample; ++s) {
        cum += d2[s];
        if (cum >= r) {
          pick = s;
          break;
        }
      }
    } else {
      pick = rng.index(sample);  // all-duplicate corner: any row works
    }
    std::copy_n(train.data() + pick * dim_, dim_, centroids_.data() + c * dim_);
  }
  for (std::size_t c = 0; c < n_clusters; ++c)
    centroid_norms_[c] = nn::squared_norm(centroids_.data() + c * dim_, dim_);

  // Lloyd iterations on the sample: GEMM-tiled assignment, then serial
  // mean update in sample order (double accumulation) — deterministic at
  // any thread count. An emptied cluster keeps its previous centroid.
  std::vector<std::size_t> assign;
  std::vector<double> sums(n_clusters * dim_);
  std::vector<std::size_t> counts(n_clusters);
  for (std::size_t iter = 0; iter < config_.kmeans_iters; ++iter) {
    assign_rows(train.data(), sample, dim_, centroids_.data(), centroid_norms_.data(),
                n_clusters, assign);
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), std::size_t{0});
    for (std::size_t s = 0; s < sample; ++s) {
      double* sum = sums.data() + assign[s] * dim_;
      const float* row = train.data() + s * dim_;
      for (std::size_t d = 0; d < dim_; ++d) sum[d] += static_cast<double>(row[d]);
      ++counts[assign[s]];
    }
    for (std::size_t c = 0; c < n_clusters; ++c) {
      if (counts[c] == 0) continue;
      float* centroid = centroids_.data() + c * dim_;
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t d = 0; d < dim_; ++d)
        centroid[d] = static_cast<float>(sums[c * dim_ + d] * inv);
      centroid_norms_[c] = nn::squared_norm(centroid, dim_);
    }
  }

  // Final pass: assign every row and fill the cells in insertion order, so
  // within a cell rows keep their global (dist, insertion-id) tie-break
  // order and class ids are dense in first-appearance order.
  assign_rows(data, n, dim_, centroids_.data(), centroid_norms_.data(), n_clusters, assign);
  for (std::size_t i = 0; i < n; ++i) {
    const auto [it, inserted] =
        label_to_id_.try_emplace(labels[i], static_cast<int>(id_to_label_.size()));
    if (inserted) id_to_label_.push_back(labels[i]);
    Cell& cell = cells_[assign[i]];
    const float* row = data + i * dim_;
    cell.data.insert(cell.data.end(), row, row + dim_);
    cell.sq_norms.push_back(nn::squared_norm(row, dim_));
    cell.class_ids.push_back(it->second);
    cell.row_ids.push_back(row_ids[i]);
    cell.labels.push_back(labels[i]);
  }
}

core::ShardView IvfReferenceStore::shard_view(std::size_t shard) const {
  WF_CHECK(shard < cells_.size(), "IvfReferenceStore::shard_view: cluster out of range");
  const Cell& cell = cells_[shard];
  return {cell.data.data(), cell.sq_norms.data(), cell.class_ids.data(), cell.row_ids.data(),
          cell.rows()};
}

std::size_t IvfReferenceStore::effective_probes() const {
  const std::size_t n_clusters = cells_.size();
  if (config_.probes == 0) return n_clusters;
  return std::min(config_.probes, n_clusters);
}

void IvfReferenceStore::probe_shards(std::span<const float> query,
                                     std::vector<std::size_t>& out) const {
  out.clear();
  const std::size_t n_clusters = cells_.size();
  if (n_clusters == 0) return;
  WF_CHECK(query.size() == dim_, "IvfReferenceStore::probe_shards: query width mismatch");
  const std::size_t n_probes = effective_probes();
  if (n_probes >= n_clusters) {
    for (std::size_t c = 0; c < n_clusters; ++c) out.push_back(c);
  } else {
    thread_local std::vector<float> dots;
    thread_local std::vector<std::pair<double, std::size_t>> ranked;
    dots.resize(n_clusters);
    nn::gemm_nt_serial(query.data(), 1, centroids_.data(), n_clusters, dim_, dots.data());
    ranked.resize(n_clusters);
    for (std::size_t c = 0; c < n_clusters; ++c)
      ranked[c] = {centroid_norms_[c] - 2.0 * static_cast<double>(dots[c]), c};
    // pair's lexicographic < breaks margin ties toward the lower cluster.
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(n_probes),
                      ranked.end());
    for (std::size_t p = 0; p < n_probes; ++p) out.push_back(ranked[p].second);
  }
  count_probe(out);
}

void IvfReferenceStore::count_probe(const std::vector<std::size_t>& out) const {
  if (probes_total_ == nullptr) return;
  probes_total_->inc();
  clusters_scanned_->inc(out.size());
  std::uint64_t rows = 0;
  for (const std::size_t c : out) rows += cells_[c].rows();
  rows_scanned_->inc(rows);
}

std::span<const float> IvfReferenceStore::centroid(std::size_t c) const {
  WF_CHECK(c < cells_.size(), "IvfReferenceStore::centroid: cluster out of range");
  return {centroids_.data() + c * dim_, dim_};
}

std::vector<int> IvfReferenceStore::classes() const {
  std::vector<int> labels = id_to_label_;
  std::sort(labels.begin(), labels.end());
  return labels;
}

void IvfReferenceStore::add(std::span<const float> embedding, int label) {
  WF_CHECK(!cells_.empty(), "IvfReferenceStore::add: store has no clusters");
  add_pinned(nearest_centroid(embedding.data()), label, next_row_id_, embedding);
}

void IvfReferenceStore::add_pinned(std::size_t cluster, int label, std::uint64_t row_id,
                                   std::span<const float> embedding) {
  WF_CHECK(embedding.size() == dim_, "IvfReferenceStore::add: width mismatch");
  WF_CHECK(cluster < cells_.size(), "IvfReferenceStore::add: cluster out of range");
  const auto [it, inserted] =
      label_to_id_.try_emplace(label, static_cast<int>(id_to_label_.size()));
  if (inserted) id_to_label_.push_back(label);
  Cell& cell = cells_[cluster];
  cell.data.insert(cell.data.end(), embedding.begin(), embedding.end());
  cell.sq_norms.push_back(nn::squared_norm(embedding.data(), dim_));
  cell.class_ids.push_back(it->second);
  cell.row_ids.push_back(row_id);
  cell.labels.push_back(label);
  next_row_id_ = std::max(next_row_id_, row_id + 1);
  ++size_;
  ++churn_;
}

std::size_t IvfReferenceStore::nearest_centroid(const float* row) const {
  thread_local std::vector<float> dots;
  dots.resize(cells_.size());
  nn::gemm_nt_serial(row, 1, centroids_.data(), cells_.size(), dim_, dots.data());
  return argmin_margin(centroid_norms_.data(), dots.data(), cells_.size());
}

void IvfReferenceStore::remove_class(int label) {
  if (label_to_id_.find(label) == label_to_id_.end()) return;
  std::size_t removed = 0;
  for (Cell& cell : cells_) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < cell.rows(); ++i) {
      if (cell.labels[i] == label) continue;
      if (keep != i) {
        std::copy_n(cell.data.data() + i * dim_, dim_, cell.data.data() + keep * dim_);
        cell.sq_norms[keep] = cell.sq_norms[i];
        cell.class_ids[keep] = cell.class_ids[i];
        cell.row_ids[keep] = cell.row_ids[i];
        cell.labels[keep] = cell.labels[i];
      }
      ++keep;
    }
    removed += cell.rows() - keep;
    cell.data.resize(keep * dim_);
    cell.sq_norms.resize(keep);
    cell.class_ids.resize(keep);
    cell.row_ids.resize(keep);
    cell.labels.resize(keep);
  }
  size_ -= removed;
  churn_ += removed;
  rebuild_class_ids();
}

void IvfReferenceStore::rebuild_class_ids() {
  // Re-derive the dense id space in cell-then-row order, exactly like the
  // sharded store after a removal: ids stay dense, labels stay attached.
  id_to_label_.clear();
  label_to_id_.clear();
  for (Cell& cell : cells_) {
    for (std::size_t i = 0; i < cell.rows(); ++i) {
      const auto [it, inserted] =
          label_to_id_.try_emplace(cell.labels[i], static_cast<int>(id_to_label_.size()));
      if (inserted) id_to_label_.push_back(cell.labels[i]);
      cell.class_ids[i] = it->second;
    }
  }
}

void IvfReferenceStore::rebuild() {
  // Gather the current rows back into insertion-id order and re-run the
  // seeded k-means: the result depends only on the surviving content, not
  // on the add/remove history that produced it.
  struct Ref {
    std::uint64_t row_id;
    std::size_t cell;
    std::size_t row;
  };
  std::vector<Ref> refs;
  refs.reserve(size_);
  for (std::size_t c = 0; c < cells_.size(); ++c)
    for (std::size_t i = 0; i < cells_[c].rows(); ++i) refs.push_back({cells_[c].row_ids[i], c, i});
  std::sort(refs.begin(), refs.end(),
            [](const Ref& a, const Ref& b) { return a.row_id < b.row_id; });

  const std::size_t n = refs.size();
  util::AlignedVector<float> data(n * dim_);
  std::vector<int> labels(n);
  std::vector<std::uint64_t> row_ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Cell& cell = cells_[refs[i].cell];
    std::copy_n(cell.data.data() + refs[i].row * dim_, dim_, data.data() + i * dim_);
    labels[i] = cell.labels[refs[i].row];
    row_ids[i] = refs[i].row_id;
  }
  build_from_rows(data.data(), labels.data(), row_ids.data(), n);
  if (rebuilds_total_ != nullptr) rebuilds_total_->inc();
}

bool IvfReferenceStore::maybe_rebuild() {
  if (config_.rebuild_churn <= 0.0) return false;
  const double threshold =
      config_.rebuild_churn * static_cast<double>(std::max<std::size_t>(built_rows_, 1));
  if (static_cast<double>(churn_) <= threshold) return false;
  rebuild();
  return true;
}

IvfReferenceStore IvfReferenceStore::restore(std::size_t dim, std::uint64_t next_row_id,
                                             const IvfConfig& config,
                                             util::AlignedVector<float> centroids,
                                             std::vector<int> id_to_label,
                                             std::vector<Cell> cells) {
  IvfReferenceStore store;
  store.config_ = config;
  store.dim_ = dim;
  store.next_row_id_ = next_row_id;
  const auto& metrics = detail::index_metrics();
  store.probes_total_ = metrics.probes_total;
  store.clusters_scanned_ = metrics.clusters_scanned;
  store.rows_scanned_ = metrics.rows_scanned;
  store.rebuilds_total_ = metrics.rebuilds_total;

  if (dim == 0 || cells.empty() || centroids.size() != cells.size() * dim)
    throw io::IoError("index tables inconsistent: centroid shape");
  const int n_ids = static_cast<int>(id_to_label.size());
  std::size_t rows = 0;
  for (const Cell& cell : cells) {
    if (cell.data.size() != cell.rows() * dim || cell.class_ids.size() != cell.rows() ||
        cell.row_ids.size() != cell.rows() || cell.labels.size() != cell.rows())
      throw io::IoError("index tables inconsistent: cell shape");
    for (std::size_t i = 0; i < cell.rows(); ++i) {
      const int id = cell.class_ids[i];
      if (id < 0 || id >= n_ids)
        throw io::IoError("index tables inconsistent: class id out of range");
      if (id_to_label[static_cast<std::size_t>(id)] != cell.labels[i])
        throw io::IoError("index tables inconsistent: label/id mismatch");
      if (cell.row_ids[i] >= next_row_id)
        throw io::IoError("index tables inconsistent: row id out of range");
    }
    rows += cell.rows();
  }
  store.centroids_ = std::move(centroids);
  store.centroid_norms_.resize(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c)
    store.centroid_norms_[c] = nn::squared_norm(store.centroids_.data() + c * dim, dim);
  store.cells_ = std::move(cells);
  store.id_to_label_ = std::move(id_to_label);
  for (std::size_t id = 0; id < store.id_to_label_.size(); ++id)
    store.label_to_id_.emplace(store.id_to_label_[id], static_cast<int>(id));
  store.size_ = rows;
  store.built_rows_ = rows;
  return store;
}

}  // namespace wf::index
