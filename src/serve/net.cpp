#include "serve/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "io/binary.hpp"

namespace wf::serve {

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw io::IoError("not an IPv4 address: " + host);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_.exchange(-1);
  }
  return *this;
}

void Socket::send_all(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw io::IoError(std::string("send failed: ") + std::strerror(errno));
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
}

bool Socket::recv_exact(void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw io::IoError(std::string("recv failed: ") + std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      throw io::IoError("unexpected end of stream");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void Socket::shutdown_both() {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void Socket::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

Socket tcp_connect(const std::string& host, std::uint16_t port, int retry_ms) {
  const sockaddr_in addr = make_addr(host, port);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(retry_ms);
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw io::IoError(std::string("socket failed: ") + std::strerror(errno));
    Socket sock(fd);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return sock;
    }
    const int err = errno;
    if ((err != ECONNREFUSED && err != ETIMEDOUT) ||
        std::chrono::steady_clock::now() >= deadline)
      throw io::IoError("cannot connect to " + host + ":" + std::to_string(port) + ": " +
                        std::strerror(err));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

Listener::Listener(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw io::IoError(std::string("socket failed: ") + std::strerror(errno));
  fd_ = fd;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string what = std::string("cannot bind ") + host + ":" +
                             std::to_string(port) + ": " + std::strerror(errno);
    close();
    throw io::IoError(what);
  }
  if (::listen(fd_, 64) != 0) {
    const std::string what = std::string("listen failed: ") + std::strerror(errno);
    close();
    throw io::IoError(what);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

Socket Listener::accept() {
  int lfd;
  while ((lfd = fd_.load()) >= 0) {
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    break;  // listener closed (or unrecoverable): signal shutdown
  }
  return Socket();
}

void Listener::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() wakes a thread blocked in accept(); close() alone does not
    // reliably do so on Linux.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace wf::serve
