#include "serve/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>
#include <thread>

namespace wf::serve {

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw io::IoError("not an IPv4 address: " + host);
  return addr;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Blocks in poll(2) until fd is ready for `events`, the deadline passes
// (TimeoutError) or the fd is torn down under us (io::IoError). A
// shutdown() from another thread makes the fd readable/writable, so blocked
// callers wake and observe the EOF/EPIPE on their next syscall.
void wait_io(int fd, short events, const Deadline& deadline, const char* what) {
  while (true) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int r = ::poll(&p, 1, deadline.poll_timeout_ms());
    if (r > 0) return;  // ready (or POLLERR/POLLHUP: surface via the syscall)
    if (r == 0) throw TimeoutError(std::string(what) + " timed out");
    if (errno == EINTR) continue;
    throw io::IoError(std::string("poll failed: ") + std::strerror(errno));
  }
}

}  // namespace

int Deadline::poll_timeout_ms() const {
  if (!finite_) return -1;
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      at_ - std::chrono::steady_clock::now());
  if (remaining.count() <= 0) return 0;
  if (remaining.count() > INT_MAX) return INT_MAX;
  return static_cast<int>(remaining.count());
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_.exchange(-1);
  }
  return *this;
}

void Socket::send_all(const void* data, std::size_t n, const Deadline& deadline) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const int fd = fd_.load();
    if (fd < 0) throw io::IoError("send on a closed socket");
    const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sent > 0) {
      p += sent;
      n -= static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_io(fd, POLLOUT, deadline, "send");
      continue;
    }
    throw io::IoError(std::string("send failed: ") + std::strerror(errno));
  }
}

bool Socket::recv_exact(void* data, std::size_t n, const Deadline& deadline) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const int fd = fd_.load();
    if (fd < 0) throw io::IoError("recv on a closed socket");
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      throw io::IoError("unexpected end of stream");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_io(fd, POLLIN, deadline, "recv");
      continue;
    }
    throw io::IoError(std::string("recv failed: ") + std::strerror(errno));
  }
  return true;
}

std::size_t Socket::recv_some(void* data, std::size_t max, const Deadline& deadline) {
  while (true) {
    const int fd = fd_.load();
    if (fd < 0) throw io::IoError("recv on a closed socket");
    const ssize_t r = ::recv(fd, data, max, 0);
    if (r >= 0) return static_cast<std::size_t>(r);  // 0: EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_io(fd, POLLIN, deadline, "recv");
      continue;
    }
    throw io::IoError(std::string("recv failed: ") + std::strerror(errno));
  }
}

void Socket::shutdown_both() {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void Socket::shutdown_read() {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RD);
}

void Socket::shutdown_write() {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_WR);
}

void Socket::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

Socket tcp_connect(const std::string& host, std::uint16_t port, const ConnectOptions& options) {
  const sockaddr_in addr = make_addr(host, port);
  const Deadline window = Deadline::after_ms(options.retry_ms);
  Backoff backoff(options.backoff, (static_cast<std::uint64_t>(port) << 16) ^ options.retry_ms);
  int attempts = 0;
  while (true) {
    ++attempts;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw io::IoError(std::string("socket failed: ") + std::strerror(errno));
    set_nonblocking(fd);
    Socket sock(fd);
    int err = 0;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      err = errno;
      if (err == EINPROGRESS || err == EINTR) {
        // Await writability under the per-attempt deadline (also bounded by
        // the whole retry window), then read the final verdict.
        const Deadline attempt = Deadline::sooner(
            Deadline::after_ms(options.connect_timeout_ms), window);
        try {
          wait_io(fd, POLLOUT, attempt, "connect");
          int so_err = 0;
          socklen_t len = sizeof(so_err);
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_err, &len);
          err = so_err;
        } catch (const TimeoutError&) {
          err = ETIMEDOUT;
        }
      }
    }
    if (err == 0) {
      set_nodelay(fd);
      return sock;
    }
    const bool transient = err == ECONNREFUSED || err == ETIMEDOUT || err == ECONNRESET ||
                           err == ECONNABORTED || err == EHOSTUNREACH || err == ENETUNREACH;
    if (!transient || window.expired() || !window.finite())
      throw io::IoError("cannot connect to " + host + ":" + std::to_string(port) + " after " +
                        std::to_string(attempts) + " attempt" + (attempts == 1 ? "" : "s") +
                        ": " + std::strerror(err));
    // The retry window bounds the loop by wall clock; the policy only paces
    // it, so cap the sleep at the window's remainder.
    const int delay = std::min(backoff.next_delay_ms(), window.poll_timeout_ms());
    std::this_thread::sleep_for(std::chrono::milliseconds(std::max(delay, 0)));
  }
}

Socket tcp_connect(const std::string& host, std::uint16_t port, int retry_ms) {
  ConnectOptions options;
  options.retry_ms = retry_ms;
  return tcp_connect(host, port, options);
}

Listener::Listener(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw io::IoError(std::string("socket failed: ") + std::strerror(errno));
  fd_ = fd;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string what = std::string("cannot bind ") + host + ":" +
                             std::to_string(port) + ": " + std::strerror(errno);
    close();
    throw io::IoError(what);
  }
  if (::listen(fd_, 64) != 0) {
    const std::string what = std::string("listen failed: ") + std::strerror(errno);
    close();
    throw io::IoError(what);
  }
  set_nonblocking(fd);
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

Socket Listener::accept(const Deadline& deadline) {
  while (true) {
    const int lfd = fd_.load();
    if (lfd < 0) return Socket();
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      set_nonblocking(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      try {
        wait_io(lfd, POLLIN, deadline, "accept");
      } catch (const TimeoutError&) {
        throw;
      } catch (const io::IoError&) {
        return Socket();  // fd torn down while we waited
      }
      continue;
    }
    return Socket();  // listener closed (or unrecoverable): signal shutdown
  }
}

void Listener::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() wakes a thread blocked in accept(); close() alone does not
    // reliably do so on Linux.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace wf::serve
