#include "serve/server.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "core/adaptive.hpp"
#include "data/dataset.hpp"
#include "serve/client.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace wf::serve {

namespace {

// The wire carries bare feature matrices; attackers consume labeled
// datasets. Labels are irrelevant for fingerprinting, so zero-fill them.
data::Dataset matrix_to_dataset(const nn::Matrix& m) {
  data::Dataset dataset(m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const auto row = m.row_span(i);
    dataset.add({std::vector<float>(row.begin(), row.end()), 0});
  }
  return dataset;
}

}  // namespace

LocalHandler::LocalHandler(std::unique_ptr<core::Attacker> attacker, std::size_t slice_index,
                           std::size_t slice_count)
    : attacker_(std::move(attacker)),
      slice_index_(slice_index),
      slice_count_(slice_count == 0 ? 1 : slice_count) {
  if (!attacker_) throw std::invalid_argument("LocalHandler: null attacker");
  if (slice_index_ >= slice_count_)
    throw std::invalid_argument("LocalHandler: slice index out of range");
  adaptive_ = dynamic_cast<const core::AdaptiveFingerprinter*>(attacker_.get());
  if (slice_count_ > 1 && adaptive_ == nullptr)
    throw std::invalid_argument("LocalHandler: attacker \"" + attacker_->name() +
                                "\" cannot serve a shard slice (no sharded reference set)");
}

ServerInfo LocalHandler::info() const {
  ServerInfo info;
  info.attacker = attacker_->name();
  info.slice_index = slice_index_;
  info.slice_count = slice_count_;
  info.classes = attacker_->target_classes();
  if (adaptive_ != nullptr) {
    // Through store(): an attached index (wf serve --index) is what queries
    // actually scan, so it is what HELO advertises.
    const core::ReferenceStore& refs = adaptive_->store();
    info.n_references = refs.size();
    info.knn_k = adaptive_->classifier().k();
    info.id_to_label.reserve(refs.n_class_ids());
    for (std::size_t id = 0; id < refs.n_class_ids(); ++id)
      info.id_to_label.push_back(refs.label_of_id(id));
  }
  return info;
}

RankReply LocalHandler::rank(const nn::Matrix& queries) {
  RankReply reply;
  reply.rankings = attacker_->fingerprint_batch(matrix_to_dataset(queries));
  const std::uint64_t refs = adaptive_ != nullptr ? adaptive_->store().size() : 0;
  reply.meta = {false, refs, refs};
  return reply;
}

core::SliceScan LocalHandler::scan(const nn::Matrix& queries) {
  if (adaptive_ == nullptr)
    throw std::runtime_error("attacker \"" + attacker_->name() +
                             "\" does not support slice scans");
  return adaptive_->scan_slice(matrix_to_dataset(queries), slice_index_, slice_count_);
}

Server::Server(std::shared_ptr<Handler> handler, ServerConfig config)
    : handler_(std::move(handler)), config_(config), queue_(config.queue_capacity) {
  if (!handler_) throw std::invalid_argument("Server: null handler");
  if (config_.max_batch == 0) config_.max_batch = 1;
  obs::Registry& reg = obs::Registry::global();
  requests_total_ = &reg.counter("serve.requests_total");
  queries_total_ = &reg.counter("serve.queries_total");
  batches_total_ = &reg.counter("serve.batches_total");
  rejected_total_ = &reg.counter("serve.rejected_total");
  timeouts_total_ = &reg.counter("serve.timeouts_total");
  errors_total_ = &reg.counter("serve.errors_total");
  for (std::uint8_t klass = 0; klass < 6; ++klass)
    errors_by_class_[klass] = &reg.counter(
        std::string("serve.errors.") + error_class_name(static_cast<ErrorClass>(klass)));
  queue_depth_ = &reg.gauge("serve.queue_depth");
  wave_batch_ = &reg.histogram("serve.wave_batch");
  handle_helo_ = &reg.histogram("serve.handle_ms.helo");
  handle_qryb_ = &reg.histogram("serve.handle_ms.qryb");
  handle_scan_ = &reg.histogram("serve.handle_ms.scan");
  handle_stat_ = &reg.histogram("serve.handle_ms.stat");
}

std::string Server::error_frame(bool retryable, const std::string& message, ErrorClass klass) {
  errors_total_->inc();
  errors_by_class_[static_cast<std::uint8_t>(klass)]->inc();
  return encode_frame(kFrameError,
                      [&](io::Writer& w) { write_error(w, {retryable, message, klass}); });
}

obs::Histogram* Server::handle_histogram(const std::string& kind) const {
  if (kind == kFrameQuery) return handle_qryb_;
  if (kind == kFrameScan) return handle_scan_;
  if (kind == kFrameHello) return handle_helo_;
  if (kind == kFrameStat) return handle_stat_;
  return nullptr;
}

Server::~Server() { stop(); }

void Server::start() {
  listener_ = std::make_unique<Listener>(config_.host, config_.port);
  accept_thread_ = std::thread(&Server::accept_loop, this);
  worker_thread_ = std::thread(&Server::worker_loop, this);
  if (config_.stats_interval_ms > 0) stats_thread_ = std::thread(&Server::stats_loop, this);
}

void Server::stats_loop() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (true) {
    // Paced by the stop condition variable (not a bare sleep), so shutdown
    // never waits out a stats interval.
    if (stop_requested_cv_.wait_for(lock, std::chrono::milliseconds(config_.stats_interval_ms),
                                    [&] { return stop_requested_ || stopped_; }))
      return;
    ServerStats current;
    {
      const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      current = stats_;
    }
    util::log_info() << "stats: requests=" << current.requests << " queries=" << current.queries
                     << " batches=" << current.batches << " rejected=" << current.rejected
                     << " timeouts=" << current.timeouts << " queue_depth=" << queue_.size();
  }
}

std::uint16_t Server::port() const { return listener_ ? listener_->port() : 0; }

void Server::accept_loop() {
  while (true) {
    Socket socket = listener_->accept();
    if (!socket.valid()) return;  // listener closed: shutting down
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::make_unique<Socket>(std::move(socket)));
    const std::size_t slot = connections_.size() - 1;
    connection_threads_.emplace_back(&Server::serve_connection, this, slot);
  }
}

void Server::serve_connection(std::size_t slot) {
  Socket& socket = [&]() -> Socket& {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    return *connections_[slot];
  }();
  while (true) {
    // Phase 1: wait for a frame to begin, bounded by the idle timeout. An
    // idle breach closes the connection quietly — sending an unsolicited
    // ERRR would desync the strictly request/reply stream.
    std::optional<std::uint64_t> length;
    try {
      length = recv_frame_length(socket, Deadline::after_ms(config_.idle_timeout_ms));
    } catch (const TimeoutError&) {
      return;  // idle for too long: hang up between frames
    } catch (const io::IoError& e) {
      // Unframed garbage (oversized length, mid-prefix EOF): nothing more
      // can be parsed, so report (best effort) and hang up.
      try {
        send_frame(socket, error_frame(false, e.what(), ErrorClass::protocol));
      } catch (const io::IoError&) {
        // Best effort: the stream is already broken; the hangup below is
        // the real signal.
      }
      return;
    }
    if (!length.has_value()) return;  // clean close between frames

    // Phase 2: a frame has begun — the request deadline now bounds
    // receiving its payload, computing and sending the reply. A breach is a
    // classified, retryable timeout (the stream may be desynced, so the
    // connection closes after the ERRR).
    const Deadline deadline = Deadline::after_ms(config_.request_timeout_ms);
    std::optional<ParsedFrame> frame;
    try {
      frame = recv_frame_payload(socket, *length, deadline);
    } catch (const TimeoutError& e) {
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.timeouts;
      }
      timeouts_total_->inc();
      try {
        send_frame(socket, error_frame(true, e.what(), ErrorClass::timeout));
      } catch (const io::IoError&) {
        // Best effort: the peer may be gone; it retries off its own timeout.
      }
      return;
    } catch (const io::IoError& e) {
      try {
        send_frame(socket, error_frame(false, e.what(), ErrorClass::protocol));
      } catch (const io::IoError&) {
        // Best effort: cannot report a broken stream over itself.
      }
      return;
    }

    std::string reply;
    bool stop_after_reply = false;
    bool hangup_after_reply = false;
    util::Stopwatch handle_watch;
    try {
      if (frame->kind == kFrameHello) {
        const ServerInfo info = handler_->info();
        reply = encode_frame(kFrameInfo, [&](io::Writer& w) { write_info(w, info); });
      } else if (frame->kind == kFrameStat) {
        // Answered inline: introspection must work even when the queue is
        // full — that is exactly when an operator asks for it.
        const obs::Snapshot snapshot = obs::Registry::global().snapshot();
        const std::vector<obs::SpanRecord> spans = obs::recent_spans();
        reply = encode_frame(kFrameMetrics, [&](io::Writer& w) {
          write_snapshot(w, snapshot);
          // Trailing SPNS rides only when tracing recorded something, so
          // span-free snapshots parse under the pre-tracing wire too.
          if (!spans.empty()) write_spans(w, spans);
        });
      } else if (frame->kind == kFrameQuery || frame->kind == kFrameScan) {
        Request request;
        request.queries = read_features(*frame->reader);
        io::detail::require_consumed(*frame->stream, frame->kind);
        request.scan = frame->kind == kFrameScan;
        std::future<std::string> result = request.reply.get_future();
        switch (queue_.offer(std::move(request))) {
          case RingQueue<Request>::PushOutcome::accepted: {
            {
              const std::lock_guard<std::mutex> lock(stats_mutex_);
              ++stats_.requests;
            }
            requests_total_->inc();
            queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
            // The request deadline also covers the queue wait + model call.
            // On a breach the late reply is abandoned (the worker fulfills
            // the promise into a dropped future) and the client gets a
            // retryable timeout instead of a wedged connection.
            if (deadline.finite() &&
                result.wait_for(std::chrono::milliseconds(deadline.poll_timeout_ms())) !=
                    std::future_status::ready) {
              {
                const std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.timeouts;
              }
              timeouts_total_->inc();
              reply = error_frame(true, "request timed out in the server queue",
                                  ErrorClass::timeout);
            } else {
              reply = result.get();
            }
            break;
          }
          case RingQueue<Request>::PushOutcome::full: {
            {
              const std::lock_guard<std::mutex> lock(stats_mutex_);
              ++stats_.rejected;
            }
            rejected_total_->inc();
            reply = error_frame(true, "server at capacity; retry", ErrorClass::backpressure);
            break;
          }
          case RingQueue<Request>::PushOutcome::closed: {
            // Mid-shutdown requests get an explicit retryable ERRR instead
            // of a dropped connection; the stream then closes.
            reply = error_frame(true, "server is shutting down; retry elsewhere",
                                ErrorClass::shutdown);
            hangup_after_reply = true;
            break;
          }
        }
      } else if (frame->kind == kFrameStop) {
        reply = encode_frame(kFrameBye);
        stop_after_reply = true;
      } else {
        reply = error_frame(false, "unsupported request kind \"" + frame->kind + "\"",
                            ErrorClass::protocol);
      }
    } catch (const io::IoError& e) {
      reply = error_frame(false, e.what(), ErrorClass::protocol);
    } catch (const std::exception& e) {
      reply = error_frame(false, e.what());
    }

    try {
      send_frame(socket, reply, deadline);
    } catch (const io::IoError&) {
      return;  // peer went away (or stopped draining) mid-reply
    }
    if (obs::Histogram* handle_ms = handle_histogram(frame->kind); handle_ms != nullptr)
      handle_ms->record(handle_watch.millis());
    if (stop_after_reply) {
      request_stop();
      return;
    }
    if (hangup_after_reply) return;
  }
}

void Server::worker_loop() {
  while (true) {
    // Drain everything queued in one wave — requests that arrived while the
    // previous batch was in flight coalesce here; process_wave re-chunks by
    // max_batch queries.
    std::vector<Request> wave = queue_.pop_wave(0);
    queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    if (wave.empty()) return;  // closed and drained
    wave_batch_->record(static_cast<double>(wave.size()));
    process_wave(std::move(wave));
  }
}

void Server::process_wave(std::vector<Request> wave) {
  std::size_t begin = 0;
  while (begin < wave.size()) {
    // One model call per chunk: contiguous requests of the same kind and
    // feature width, up to max_batch total query rows (a single oversized
    // request still goes through alone — the model call is the cap's unit).
    std::size_t end = begin + 1;
    std::size_t rows = wave[begin].queries.rows();
    while (end < wave.size() && wave[end].scan == wave[begin].scan &&
           wave[end].queries.cols() == wave[begin].queries.cols() &&
           rows + wave[end].queries.rows() <= config_.max_batch) {
      rows += wave[end].queries.rows();
      ++end;
    }

    nn::Matrix batch(rows, wave[begin].queries.cols());
    std::size_t row = 0;
    for (std::size_t i = begin; i < end; ++i)
      for (std::size_t r = 0; r < wave[i].queries.rows(); ++r)
        batch.set_row(row++, wave[i].queries.row_span(r));
    WF_CHECK(row == rows, "process_wave: coalesced batch lost rows");

    // Count the chunk BEFORE fulfilling any promise: a client that just
    // received its reply may immediately ask for STAT, and the snapshot
    // must already cover the queries that reply answered.
    bool counted = false;
    const auto count_chunk = [&] {
      if (counted) return;
      counted = true;
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.batches;
        stats_.queries += rows;
      }
      batches_total_->inc();
      queries_total_->inc(rows);
    };

    // Requests whose promise is already fulfilled; the error paths below
    // must skip them — a second set_value would throw future_error out of
    // the worker thread and take the whole daemon down.
    std::size_t delivered = begin;
    try {
      if (wave[begin].scan) {
        const core::SliceScan scan = handler_->scan(batch);
        WF_CHECK(scan.candidates.size() == rows,
                 "process_wave: handler scanned a different query count than sent");
        count_chunk();
        std::size_t offset = 0;
        for (std::size_t i = begin; i < end; ++i) {
          core::SliceScan part;
          part.n_queries = wave[i].queries.rows();
          part.n_class_ids = scan.n_class_ids;
          part.n_rows_scanned = scan.n_rows_scanned;
          part.candidates.assign(
              scan.candidates.begin() + static_cast<std::ptrdiff_t>(offset),
              scan.candidates.begin() + static_cast<std::ptrdiff_t>(offset + part.n_queries));
          part.best.assign(scan.best.begin() +
                               static_cast<std::ptrdiff_t>(offset * scan.n_class_ids),
                           scan.best.begin() + static_cast<std::ptrdiff_t>(
                                                   (offset + part.n_queries) * scan.n_class_ids));
          offset += part.n_queries;
          wave[i].reply.set_value(
              encode_frame(kFrameSlice, [&](io::Writer& w) { write_slice_scan(w, part); }));
          ++delivered;
        }
      } else {
        const RankReply ranked = handler_->rank(batch);
        WF_CHECK(ranked.rankings.size() == rows,
                 "process_wave: handler ranked a different query count than sent");
        count_chunk();
        std::size_t offset = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const Rankings part(
              ranked.rankings.begin() + static_cast<std::ptrdiff_t>(offset),
              ranked.rankings.begin() +
                  static_cast<std::ptrdiff_t>(offset + wave[i].queries.rows()));
          offset += wave[i].queries.rows();
          // The DGRD trailer rides only on degraded replies, keeping
          // full-coverage frames byte-identical to the v1 wire.
          wave[i].reply.set_value(encode_frame(kFrameRankings, [&](io::Writer& w) {
            write_rankings(w, part);
            if (ranked.meta.degraded) write_reply_meta(w, ranked.meta);
          }));
          ++delivered;
        }
      }
    } catch (const ServeError& e) {
      // A coordinator handler's classified failure (all backends down, …):
      // forward class and retryability to every still-unanswered request of
      // the chunk.
      count_chunk();
      const std::string error = error_frame(e.retryable(), e.what(), e.klass());
      for (std::size_t i = delivered; i < end; ++i) wave[i].reply.set_value(error);
    } catch (const std::exception& e) {
      count_chunk();
      const std::string error = error_frame(false, e.what());
      for (std::size_t i = delivered; i < end; ++i) wave[i].reply.set_value(error);
    }
    begin = end;
  }
}

void Server::request_stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_requested_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_requested_cv_.wait(lock, [&] { return stop_requested_ || stopped_; });
}

void Server::stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  stop_requested_cv_.notify_all();

  // Graceful drain, in dependency order:
  //   1. Stop accepting new connections.
  //   2. Close the queue — requests arriving from here on are answered
  //      ERRR(retryable, shutdown) instead of being dropped — and let the
  //      worker finish every request already accepted (each promise is
  //      fulfilled before the worker exits).
  //   3. Only then half-close the connections: shutdown_read() wakes
  //      threads blocked waiting for the next request while leaving the
  //      write side intact, so every in-flight reply still reaches its
  //      client before the connection threads exit.
  if (stats_thread_.joinable()) stats_thread_.join();  // woken by the notify above
  if (listener_) listener_->close();  // wakes the blocked accept()
  if (accept_thread_.joinable()) accept_thread_.join();

  queue_.close();
  if (worker_thread_.joinable()) worker_thread_.join();

  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const std::unique_ptr<Socket>& socket : connections_) socket->shutdown_read();
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  {
    // Fully close the drained connections so peers observe EOF right away
    // instead of timing out against a half-open socket.
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.clear();
  }
}

ServerStats Server::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace wf::serve
