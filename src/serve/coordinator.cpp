#include "serve/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

namespace wf::serve {

CoordinatorHandler::CoordinatorHandler(const std::vector<BackendAddress>& backends,
                                       int retry_ms) {
  if (backends.empty()) throw std::invalid_argument("coordinator: no backends");

  std::vector<std::pair<ServerInfo, std::unique_ptr<Client>>> connected;
  connected.reserve(backends.size());
  for (const BackendAddress& address : backends) {
    auto client = std::make_unique<Client>(address.host, address.port, retry_ms);
    ServerInfo info = client->hello();
    const std::string where = address.host + ":" + std::to_string(address.port);
    if (info.slice_count != backends.size())
      throw std::runtime_error("coordinator: backend " + where + " serves slice " +
                               std::to_string(info.slice_index) + "/" +
                               std::to_string(info.slice_count) + " but " +
                               std::to_string(backends.size()) + " backends were given");
    if (info.id_to_label.empty())
      throw std::runtime_error("coordinator: backend " + where +
                               " cannot slice-scan (attacker \"" + info.attacker + "\")");
    connected.emplace_back(std::move(info), std::move(client));
  }

  std::sort(connected.begin(), connected.end(),
            [](const auto& a, const auto& b) { return a.first.slice_index < b.first.slice_index; });

  const ServerInfo& first = connected.front().first;
  for (std::size_t i = 0; i < connected.size(); ++i) {
    const ServerInfo& info = connected[i].first;
    if (info.slice_index != i)
      throw std::runtime_error("coordinator: backend slices do not cover 0.." +
                               std::to_string(connected.size() - 1) + " exactly once");
    if (info.attacker != first.attacker || info.n_references != first.n_references ||
        info.knn_k != first.knn_k || info.classes != first.classes ||
        info.id_to_label != first.id_to_label)
      throw std::runtime_error(
          "coordinator: backends disagree about the model (attacker/references/k/classes); "
          "they must all load the same saved file");
  }

  info_ = first;
  info_.slice_index = 0;
  info_.slice_count = 1;
  clients_.reserve(connected.size());
  for (auto& [info, client] : connected) clients_.push_back(std::move(client));
}

ServerInfo CoordinatorHandler::info() const { return info_; }

Rankings CoordinatorHandler::rank(const nn::Matrix& queries) {
  // Scatter: every backend scans its slice concurrently (each over its own
  // connection). Backpressure from a busy backend is retried here so one
  // loaded shard only slows the batch down instead of failing it.
  std::vector<core::SliceScan> slices(clients_.size());
  std::vector<std::exception_ptr> errors(clients_.size());
  std::vector<std::thread> threads;
  threads.reserve(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        while (true) {
          try {
            slices[i] = clients_[i]->scan(queries);
            return;
          } catch (const ServeError& e) {
            if (!e.retryable()) throw;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& error : errors)
    if (error) std::rethrow_exception(error);

  // Gather: fold the slices with the same (dist, insertion id) merge the
  // in-process sharded scan uses — bit-identical to an unsharded answer.
  return core::merge_slice_scans(info_.id_to_label, info_.knn_k,
                                 static_cast<std::size_t>(info_.n_references), slices);
}

core::SliceScan CoordinatorHandler::scan(const nn::Matrix&) {
  throw std::runtime_error("a coordinator cannot serve a shard slice");
}

}  // namespace wf::serve
