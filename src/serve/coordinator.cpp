#include "serve/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "util/stopwatch.hpp"

namespace wf::serve {

namespace {

CoordinatorConfig legacy_config(int retry_ms) {
  CoordinatorConfig config;
  config.connect_retry_ms = retry_ms;
  return config;
}

std::string address_string(const BackendAddress& address) {
  return address.host + ":" + std::to_string(address.port);
}

}  // namespace

const char* backend_health_name(BackendHealth health) {
  switch (health) {
    case BackendHealth::up: return "up";
    case BackendHealth::suspect: return "suspect";
    case BackendHealth::down: break;
  }
  return "down";
}

CoordinatorHandler::CoordinatorHandler(const std::vector<BackendAddress>& backends,
                                       const CoordinatorConfig& config)
    : config_(config) {
  if (backends.empty()) throw std::invalid_argument("coordinator: no backends");

  struct Connected {
    ServerInfo info;
    std::unique_ptr<Client> client;
    BackendAddress address;
  };
  std::vector<Connected> connected;
  connected.reserve(backends.size());
  for (const BackendAddress& address : backends) {
    ClientConfig client_config;
    client_config.connect_retry_ms = config_.connect_retry_ms;
    client_config.connect_timeout_ms = config_.connect_timeout_ms;
    client_config.timeout_ms = config_.timeout_ms;
    client_config.retry = config_.retry;
    auto client = std::make_unique<Client>(address.host, address.port, client_config);
    ServerInfo info = client->hello();
    const std::string where = address_string(address);
    if (info.slice_count != backends.size())
      throw std::runtime_error("coordinator: backend " + where + " serves slice " +
                               std::to_string(info.slice_index) + "/" +
                               std::to_string(info.slice_count) + " but " +
                               std::to_string(backends.size()) + " backends were given");
    if (info.id_to_label.empty())
      throw std::runtime_error("coordinator: backend " + where +
                               " cannot slice-scan (attacker \"" + info.attacker + "\")");
    connected.push_back({std::move(info), std::move(client), address});
  }

  std::sort(connected.begin(), connected.end(),
            [](const auto& a, const auto& b) { return a.info.slice_index < b.info.slice_index; });

  const ServerInfo& first = connected.front().info;
  for (std::size_t i = 0; i < connected.size(); ++i) {
    const ServerInfo& info = connected[i].info;
    if (info.slice_index != i)
      throw std::runtime_error("coordinator: backend slices do not cover 0.." +
                               std::to_string(connected.size() - 1) + " exactly once");
    if (info.attacker != first.attacker || info.n_references != first.n_references ||
        info.knn_k != first.knn_k || info.classes != first.classes ||
        info.id_to_label != first.id_to_label)
      throw std::runtime_error(
          "coordinator: backends disagree about the model (attacker/references/k/classes); "
          "they must all load the same saved file");
  }

  expected_ = first;
  info_ = first;
  info_.slice_index = 0;
  info_.slice_count = 1;
  backends_.reserve(connected.size());
  for (auto& c : connected) backends_.push_back({c.address, std::move(c.client)});

  obs::Registry& reg = obs::Registry::global();
  scatter_ms_ = &reg.histogram("coord.scatter_ms");
  degraded_total_ = &reg.counter("coord.degraded_total");
  transitions_total_ = &reg.counter("coord.health_transitions_total");
  reconnects_total_ = &reg.counter("coord.reconnects_total");
  backends_down_ = &reg.gauge("coord.backends_down");
  backend_transitions_.reserve(backends_.size());
  for (std::size_t i = 0; i < backends_.size(); ++i)
    backend_transitions_.push_back(
        &reg.counter("coord.backend." + std::to_string(i) + ".transitions_total"));

  reconnect_thread_ = std::thread(&CoordinatorHandler::reconnect_loop, this);
}

CoordinatorHandler::CoordinatorHandler(const std::vector<BackendAddress>& backends, int retry_ms)
    : CoordinatorHandler(backends, legacy_config(retry_ms)) {}

CoordinatorHandler::~CoordinatorHandler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  reconnect_cv_.notify_all();
  if (reconnect_thread_.joinable()) reconnect_thread_.join();
}

ServerInfo CoordinatorHandler::info() const { return info_; }

std::vector<BackendStatus> CoordinatorHandler::status() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<BackendStatus> out;
  out.reserve(backends_.size());
  for (const Backend& b : backends_) out.push_back({b.address, b.health});
  return out;
}

void CoordinatorHandler::set_health_locked(std::size_t i, BackendHealth health) {
  if (backends_[i].health != health) {
    transitions_total_->inc();
    backend_transitions_[i]->inc();
  }
  backends_[i].health = health;
  std::int64_t down = 0;
  for (const Backend& b : backends_)
    if (b.health == BackendHealth::down) ++down;
  backends_down_->set(down);
}

void CoordinatorHandler::mark_success(std::size_t i) {
  const std::lock_guard<std::mutex> lock(mutex_);
  set_health_locked(i, BackendHealth::up);
  backends_[i].strikes = 0;
}

void CoordinatorHandler::mark_failure(std::size_t i) {
  bool went_down = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    Backend& b = backends_[i];
    ++b.strikes;
    // Two strikes (two consecutive post-retry failures) take a backend out
    // of rotation: one flaky RPC should not cost its slice, but a dead peer
    // must stop charging every batch its full timeout.
    set_health_locked(i, b.strikes >= 2 ? BackendHealth::down : BackendHealth::suspect);
    went_down = b.health == BackendHealth::down;
  }
  if (went_down) reconnect_cv_.notify_all();
}

void CoordinatorHandler::reconnect_loop() {
  Backoff backoff(config_.reconnect);
  while (true) {
    std::size_t target = backends_.size();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      reconnect_cv_.wait(lock, [&] {
        if (stopping_) return true;
        for (const Backend& b : backends_)
          if (b.health == BackendHealth::down) return true;
        return false;
      });
      if (stopping_) return;
      for (std::size_t i = 0; i < backends_.size(); ++i)
        if (backends_[i].health == BackendHealth::down) {
          target = i;
          break;
        }
    }

    // Connect outside the lock: only this thread touches a down backend's
    // Client, so the scatter path is never blocked on a slow handshake.
    std::unique_ptr<Client> client;
    ServerInfo info;
    bool ok = false;
    try {
      ClientConfig client_config;
      client_config.connect_timeout_ms = config_.connect_timeout_ms;
      client_config.timeout_ms = config_.timeout_ms;
      client_config.retry = config_.retry;
      const BackendAddress address = backends_[target].address;
      client = std::make_unique<Client>(address.host, address.port, client_config);
      info = client->hello();
      // The revived backend must still be the same deployment: same model,
      // same slice assignment. Anything else stays down.
      ok = info.slice_index == target && info.slice_count == backends_.size() &&
           info.attacker == expected_.attacker && info.n_references == expected_.n_references &&
           info.knn_k == expected_.knn_k && info.classes == expected_.classes &&
           info.id_to_label == expected_.id_to_label;
    } catch (const std::exception&) {
      ok = false;
    }

    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) return;
    if (ok) {
      backends_[target].client = std::move(client);
      set_health_locked(target, BackendHealth::up);
      backends_[target].strikes = 0;
      reconnects_total_->inc();
      backoff = Backoff(config_.reconnect);  // fresh schedule for the next outage
    } else {
      // Unbounded by attempt count — a down backend is retried for as long
      // as the coordinator lives — but paced by the capped backoff.
      const int delay = backoff.next_delay_ms();
      reconnect_cv_.wait_for(lock, std::chrono::milliseconds(delay), [&] { return stopping_; });
      if (stopping_) return;
    }
  }
}

RankReply CoordinatorHandler::rank(const nn::Matrix& queries) {
  // Scatter: every live backend scans its slice concurrently (each over its
  // own connection), retrying transient failures on the bounded backoff
  // schedule. Down backends are skipped — queries fail fast (or degrade)
  // instead of re-paying the connect timeout every batch.
  const std::size_t n = backends_.size();
  util::Stopwatch scatter_watch;
  struct Attempt {
    bool ok = false;
    bool skipped = false;
    core::SliceScan scan;
    std::exception_ptr error;
  };
  std::vector<Attempt> attempts(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (backends_[i].health == BackendHealth::down) {
        attempts[i].skipped = true;
        attempts[i].error = std::make_exception_ptr(
            ServeError(true,
                       "backend " + address_string(backends_[i].address) + " is down",
                       ErrorClass::unavailable));
        continue;
      }
    }
    threads.emplace_back([&, i] {
      Backoff backoff(config_.retry, i);
      try {
        while (true) {
          try {
            attempts[i].scan = backends_[i].client->scan(queries);
            attempts[i].ok = true;
            mark_success(i);
            return;
          } catch (const ServeError& e) {
            if (!e.retryable() || !backoff.retry()) throw;
          } catch (const io::IoError&) {
            // Timeout or broken transport: the client dropped the
            // connection and will reconnect on the next attempt.
            if (!backoff.retry()) throw;
          }
        }
      } catch (...) {
        attempts[i].error = std::current_exception();
        mark_failure(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  scatter_ms_->record(scatter_watch.millis());

  // A non-retryable failure (malformed frame, model mismatch) is a bug, not
  // an outage: surface it even when partial answers are allowed.
  for (const Attempt& a : attempts) {
    if (a.ok || !a.error) continue;
    try {
      std::rethrow_exception(a.error);
    } catch (const ServeError& e) {
      if (!e.retryable()) throw;
    } catch (const io::IoError&) {
      // Transport failures are retryable outages by definition; the partial
      // /unavailable accounting below handles them.
    }
  }

  std::vector<core::SliceScan> slices;
  slices.reserve(n);
  std::uint64_t covered = 0;
  std::size_t failed = 0;
  std::string first_failure;
  for (Attempt& a : attempts) {
    if (a.ok) {
      covered += a.scan.n_rows_scanned;
      slices.push_back(std::move(a.scan));
    } else {
      ++failed;
      if (first_failure.empty()) {
        try {
          std::rethrow_exception(a.error);
        } catch (const std::exception& e) {
          first_failure = e.what();
        }
      }
    }
  }

  const std::uint64_t total = info_.n_references;
  // Full coverage: every slice answered, or the failed slices held no rows
  // (possible when slices outnumber shards) — either way the merge sees the
  // whole reference set and stays bit-identical to an unsharded answer.
  const bool full = failed == 0 || (total > 0 && covered == total);
  if (!full && (!config_.allow_partial || slices.empty()))
    throw ServeError(true,
                     std::to_string(failed) + " of " + std::to_string(n) +
                         " backends unavailable: " + first_failure,
                     ErrorClass::unavailable);

  // Gather: fold the slices with the same (dist, insertion id) merge the
  // in-process sharded scan uses — bit-identical to an unsharded answer
  // when coverage is full, best-effort over the live slices otherwise.
  RankReply reply;
  reply.rankings = core::merge_slice_scans(info_.id_to_label, info_.knn_k,
                                           static_cast<std::size_t>(total), slices);
  reply.meta = {!full, full ? total : covered, total};
  if (reply.meta.degraded) degraded_total_->inc();
  return reply;
}

core::SliceScan CoordinatorHandler::scan(const nn::Matrix&) {
  throw std::runtime_error("a coordinator cannot serve a shard slice");
}

}  // namespace wf::serve
