#include "serve/fault.hpp"

#include <chrono>
#include <stdexcept>

namespace wf::serve {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::drop: return "drop";
    case FaultKind::delay: return "delay";
    case FaultKind::truncate: return "truncate";
    case FaultKind::corrupt: return "corrupt";
    case FaultKind::blackhole: return "blackhole";
    case FaultKind::none: break;
  }
  return "none";
}

FaultKind parse_fault_kind(const std::string& name) {
  for (const FaultKind kind : {FaultKind::none, FaultKind::drop, FaultKind::delay,
                               FaultKind::truncate, FaultKind::corrupt, FaultKind::blackhole})
    if (name == fault_kind_name(kind)) return kind;
  throw std::invalid_argument("unknown fault kind \"" + name +
                              "\" (none|drop|delay|truncate|corrupt|blackhole)");
}

FaultProxy::FaultProxy(const std::string& host, std::uint16_t listen_port,
                       const BackendAddress& upstream, const FaultPlan& plan)
    : upstream_(upstream), plan_(plan), listener_(host, listen_port) {
  accept_thread_ = std::thread(&FaultProxy::accept_loop, this);
}

FaultProxy::~FaultProxy() { stop(); }

void FaultProxy::accept_loop() {
  util::Rng root(plan_.seed);
  while (true) {
    Socket client = listener_.accept();
    if (!client.valid()) return;  // listener closed: shutting down
    const std::uint64_t id = n_connections_.fetch_add(1);
    Socket upstream;
    try {
      ConnectOptions options;
      options.connect_timeout_ms = 5000;
      upstream = tcp_connect(upstream_.host, upstream_.port, options);
    } catch (const io::IoError&) {
      continue;  // upstream gone: the client sees an immediate close
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    connections_.push_back(std::make_unique<Connection>());
    Connection& connection = *connections_.back();
    connection.client = std::move(client);
    connection.upstream = std::move(upstream);
    // Distinct deterministic streams per connection and direction.
    pump_threads_.emplace_back(&FaultProxy::pump, this, std::ref(connection), false,
                               root.fork(2 * id));
    pump_threads_.emplace_back(&FaultProxy::pump, this, std::ref(connection), true,
                               root.fork(2 * id + 1));
  }
}

void FaultProxy::pump(Connection& connection, bool downstream, util::Rng rng) {
  Socket& from = downstream ? connection.upstream : connection.client;
  Socket& to = downstream ? connection.client : connection.upstream;
  std::vector<char> buffer(16384);
  bool blackholed = false;
  try {
    while (true) {
      const std::size_t n = from.recv_some(buffer.data(), buffer.size());
      if (n == 0) {
        // EOF propagates as a half-close so in-flight bytes the other way
        // still arrive — exactly what a well-behaved middlebox does.
        to.shutdown_write();
        return;
      }
      n_chunks_.fetch_add(1);
      if (blackholed) continue;  // reading on, forwarding nothing
      const bool fault =
          plan_.kind != FaultKind::none && plan_.rate > 0 && rng.bernoulli(plan_.rate);
      if (fault) {
        n_faults_.fetch_add(1);
        switch (plan_.kind) {
          case FaultKind::drop:
            continue;  // swallow this chunk, keep the stream running
          case FaultKind::delay:
            // An injected fault, not a retry: the proxy's job is to stall.
            // wf-lint: allow(retry-policy)
            std::this_thread::sleep_for(std::chrono::milliseconds(plan_.delay_ms));
            break;  // then forward untouched
          case FaultKind::truncate:
            if (n > 1) to.send_all(buffer.data(), n / 2);
            connection.client.shutdown_both();
            connection.upstream.shutdown_both();
            return;
          case FaultKind::corrupt: {
            // Flip a handful of bytes at seeded positions.
            const std::int64_t flips = rng.range(1, 4);
            for (std::int64_t f = 0; f < flips; ++f)
              buffer[rng.index(n)] ^= static_cast<char>(0x5a);
            break;
          }
          case FaultKind::blackhole:
            blackholed = true;  // the peer now waits for bytes that never come
            continue;
          case FaultKind::none:
            break;
        }
      }
      to.send_all(buffer.data(), n);
    }
  } catch (const io::IoError&) {
    // Either side closed (peer reset, or stop() tearing the proxy down):
    // cut both directions so the opposite pump exits too.
    connection.client.shutdown_both();
    connection.upstream.shutdown_both();
  }
}

void FaultProxy::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  stopped_cv_.wait(lock, [&] { return stopped_; });
}

void FaultProxy::stop() {
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    for (const std::unique_ptr<Connection>& c : connections_) {
      c->client.shutdown_both();
      c->upstream.shutdown_both();
    }
    threads.swap(pump_threads_);
  }
  stopped_cv_.notify_all();
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
}

FaultProxyStats FaultProxy::stats() const {
  FaultProxyStats stats;
  stats.connections = n_connections_.load();
  stats.chunks = n_chunks_.load();
  stats.faults = n_faults_.load();
  return stats;
}

}  // namespace wf::serve
