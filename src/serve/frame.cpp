#include "serve/frame.hpp"

namespace wf::serve {

namespace {

// Bounds on deserialized counts beyond what the frame cap already implies:
// a corrupt count must raise IoError before any allocation.
constexpr std::uint64_t kMaxQueries = std::uint64_t{1} << 24;
constexpr std::uint64_t kMaxEntries = std::uint64_t{1} << 24;

std::uint64_t checked(std::uint64_t n, std::uint64_t max, const char* what) {
  if (n > max) throw io::IoError(std::string("corrupt count: ") + what);
  return n;
}

// True when the section payload reader has unread bytes — how tolerant
// readers detect the presence of a trailing wire-v2 extension field.
bool has_more(io::Reader& r) {
  return r.stream().peek() != std::istream::traits_type::eof();
}

}  // namespace

const char* error_class_name(ErrorClass klass) {
  switch (klass) {
    case ErrorClass::protocol: return "protocol";
    case ErrorClass::backpressure: return "backpressure";
    case ErrorClass::timeout: return "timeout";
    case ErrorClass::unavailable: return "unavailable";
    case ErrorClass::shutdown: return "shutdown";
    case ErrorClass::unknown: break;
  }
  return "unknown";
}

std::string encode_frame(const std::string& kind,
                         const std::function<void(io::Writer&)>& body) {
  std::ostringstream payload_buffer;
  io::Writer payload(payload_buffer);
  io::write_header(payload, kind);
  if (body) body(payload);
  const std::string bytes = std::move(payload_buffer).str();
  if (bytes.size() > kMaxFrameBytes) throw io::IoError("frame exceeds the 1 GiB cap");
  std::ostringstream frame_buffer;
  io::Writer frame(frame_buffer);
  frame.u64(bytes.size());
  frame.stream().write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!frame.stream()) throw io::IoError("write failed");
  return std::move(frame_buffer).str();
}

ParsedFrame parse_frame(std::string payload) {
  ParsedFrame frame;
  frame.stream = std::make_unique<std::istringstream>(std::move(payload));
  frame.reader = std::make_unique<io::Reader>(*frame.stream);
  frame.kind = io::read_header(*frame.reader);
  return frame;
}

void send_frame(Socket& socket, const std::string& frame_bytes, const Deadline& deadline) {
  socket.send_all(frame_bytes.data(), frame_bytes.size(), deadline);
}

std::optional<std::uint64_t> recv_frame_length(Socket& socket, const Deadline& deadline) {
  std::uint8_t prefix[8];
  if (!socket.recv_exact(prefix, 8, deadline)) return std::nullopt;
  std::uint64_t length = 0;
  for (int i = 0; i < 8; ++i) length |= static_cast<std::uint64_t>(prefix[i]) << (8 * i);
  if (length > kMaxFrameBytes) throw io::IoError("oversized frame length");
  return length;
}

ParsedFrame recv_frame_payload(Socket& socket, std::uint64_t length, const Deadline& deadline) {
  std::string payload(length, '\0');
  if (length > 0 && !socket.recv_exact(payload.data(), length, deadline))
    throw io::IoError("unexpected end of stream");
  return parse_frame(std::move(payload));
}

std::optional<ParsedFrame> recv_frame(Socket& socket, const Deadline& deadline) {
  const std::optional<std::uint64_t> length = recv_frame_length(socket, deadline);
  if (!length) return std::nullopt;
  return recv_frame_payload(socket, *length, deadline);
}

void write_features(io::Writer& out, const nn::Matrix& features) {
  io::write_section(out, "FEAT", [&](io::Writer& w) { io::save_matrix(w, features); });
}

nn::Matrix read_features(io::Reader& in) {
  return io::parse_section(in, "FEAT", [](io::Reader& r) { return io::load_matrix(r); });
}

void write_rankings(io::Writer& out, const Rankings& rankings) {
  io::write_section(out, "RANK", [&](io::Writer& w) {
    w.u64(rankings.size());
    for (const std::vector<core::RankedLabel>& ranking : rankings) {
      w.u64(ranking.size());
      for (const core::RankedLabel& entry : ranking) {
        w.i32(entry.label);
        w.i32(entry.votes);
        w.f64(entry.distance);
      }
    }
  });
}

Rankings read_rankings(io::Reader& in) {
  return io::parse_section(in, "RANK", [](io::Reader& r) {
    Rankings rankings(checked(r.u64(), kMaxQueries, "queries"));
    for (std::vector<core::RankedLabel>& ranking : rankings) {
      ranking.resize(checked(r.u64(), kMaxEntries, "ranking entries"));
      for (core::RankedLabel& entry : ranking) {
        entry.label = r.i32();
        entry.votes = r.i32();
        entry.distance = r.f64();
      }
    }
    return rankings;
  });
}

void write_slice_scan(io::Writer& out, const core::SliceScan& scan) {
  io::write_section(out, "PART", [&](io::Writer& w) {
    w.u64(scan.n_queries);
    w.u64(scan.n_class_ids);
    for (const std::vector<core::Candidate>& candidates : scan.candidates) {
      w.u64(candidates.size());
      for (const core::Candidate& c : candidates) {
        w.f64(c.first);
        w.u64(c.second);
      }
    }
    w.f64_vec(scan.best);
    // Wire v2 extension: how many reference rows this slice actually
    // scanned, for the coordinator's coverage accounting.
    w.u64(scan.n_rows_scanned);
  });
}

core::SliceScan read_slice_scan(io::Reader& in) {
  return io::parse_section(in, "PART", [](io::Reader& r) {
    core::SliceScan scan;
    scan.n_queries = checked(r.u64(), kMaxQueries, "queries");
    scan.n_class_ids = checked(r.u64(), kMaxEntries, "class ids");
    scan.candidates.resize(scan.n_queries);
    for (std::vector<core::Candidate>& candidates : scan.candidates) {
      candidates.resize(checked(r.u64(), kMaxEntries, "candidates"));
      for (core::Candidate& c : candidates) {
        c.first = r.f64();
        c.second = r.u64();
      }
    }
    scan.best = r.f64_vec();
    if (scan.best.size() != scan.n_queries * scan.n_class_ids)
      throw io::IoError("slice scan best-distance table has the wrong shape");
    // Absent from v1 peers: default to 0 ("unknown"), never an error.
    if (has_more(r)) scan.n_rows_scanned = r.u64();
    return scan;
  });
}

void write_info(io::Writer& out, const ServerInfo& info) {
  io::write_section(out, "INFO", [&](io::Writer& w) {
    w.str(info.attacker);
    w.u64(info.n_references);
    w.u64(info.slice_index);
    w.u64(info.slice_count);
    w.i32(info.knn_k);
    w.i32_vec(info.classes);
    w.i32_vec(info.id_to_label);
  });
}

ServerInfo read_info(io::Reader& in) {
  return io::parse_section(in, "INFO", [](io::Reader& r) {
    ServerInfo info;
    info.attacker = r.str();
    info.n_references = r.u64();
    info.slice_index = r.u64();
    info.slice_count = r.u64();
    info.knn_k = r.i32();
    info.classes = r.i32_vec();
    info.id_to_label = r.i32_vec();
    if (info.slice_count == 0 || info.slice_index >= info.slice_count)
      throw io::IoError("corrupt server info (slice)");
    return info;
  });
}

void write_error(io::Writer& out, const ErrorReply& error) {
  io::write_section(out, "EMSG", [&](io::Writer& w) {
    w.u8(error.retryable ? 1 : 0);
    w.str(error.message);
    // Wire v2 extension: the error class, for retry loops and reporting.
    w.u8(static_cast<std::uint8_t>(error.klass));
  });
}

ErrorReply read_error(io::Reader& in) {
  return io::parse_section(in, "EMSG", [](io::Reader& r) {
    ErrorReply error;
    error.retryable = r.u8() != 0;
    error.message = r.str();
    // Absent from v1 peers; out-of-range values (a future class this build
    // does not know) degrade to unknown rather than failing the parse.
    if (has_more(r)) {
      const std::uint8_t klass = r.u8();
      error.klass = klass <= static_cast<std::uint8_t>(ErrorClass::shutdown)
                        ? static_cast<ErrorClass>(klass)
                        : ErrorClass::unknown;
    }
    return error;
  });
}

void write_reply_meta(io::Writer& out, const ReplyMeta& meta) {
  io::write_section(out, "DGRD", [&](io::Writer& w) {
    w.u8(meta.degraded ? 1 : 0);
    w.u64(meta.covered_references);
    w.u64(meta.total_references);
  });
}

void write_snapshot(io::Writer& out, const obs::Snapshot& snapshot) {
  io::write_section(out, "SNAP", [&](io::Writer& w) {
    w.u64(snapshot.entries.size());
    for (const obs::SnapshotEntry& entry : snapshot.entries) {
      w.str(entry.name);
      w.u8(static_cast<std::uint8_t>(entry.kind));
      w.u64(entry.count);
      w.f64(entry.value);
      w.f64(entry.sum);
      w.f64(entry.min);
      w.f64(entry.max);
      w.f64(entry.p50);
      w.f64(entry.p90);
      w.f64(entry.p99);
      w.f64_vec(entry.bounds);
      w.u64_vec(entry.buckets);
    }
  });
}

obs::Snapshot read_snapshot(io::Reader& in) {
  return io::parse_section(in, "SNAP", [](io::Reader& r) {
    obs::Snapshot snapshot;
    snapshot.entries.resize(checked(r.u64(), kMaxEntries, "snapshot entries"));
    for (obs::SnapshotEntry& entry : snapshot.entries) {
      entry.name = r.str();
      const std::uint8_t kind = r.u8();
      if (kind > static_cast<std::uint8_t>(obs::InstrumentKind::histogram))
        throw io::IoError("corrupt snapshot entry kind");
      entry.kind = static_cast<obs::InstrumentKind>(kind);
      entry.count = r.u64();
      entry.value = r.f64();
      entry.sum = r.f64();
      entry.min = r.f64();
      entry.max = r.f64();
      entry.p50 = r.f64();
      entry.p90 = r.f64();
      entry.p99 = r.f64();
      entry.bounds = r.f64_vec();
      entry.buckets = r.u64_vec();
    }
    return snapshot;
  });
}

void write_spans(io::Writer& out, const std::vector<obs::SpanRecord>& spans) {
  io::write_section(out, "SPNS", [&](io::Writer& w) {
    w.u64(spans.size());
    for (const obs::SpanRecord& span : spans) {
      w.str(span.name);
      w.u32(span.depth);
      w.u64(span.thread);
      w.u64(span.sequence);
      w.u64(span.start_us);
      w.u64(span.duration_us);
    }
  });
}

std::vector<obs::SpanRecord> read_trailing_spans(ParsedFrame& frame) {
  std::vector<obs::SpanRecord> spans;
  if (frame.reader && has_more(*frame.reader)) {
    spans = io::parse_section(*frame.reader, "SPNS", [](io::Reader& r) {
      std::vector<obs::SpanRecord> parsed(checked(r.u64(), kMaxEntries, "span records"));
      for (obs::SpanRecord& span : parsed) {
        span.name = r.str();
        span.depth = r.u32();
        span.thread = r.u64();
        span.sequence = r.u64();
        span.start_us = r.u64();
        span.duration_us = r.u64();
      }
      return parsed;
    });
  }
  return spans;
}

ReplyMeta read_trailing_meta(ParsedFrame& frame) {
  ReplyMeta meta;
  if (frame.reader && has_more(*frame.reader)) {
    meta = io::parse_section(*frame.reader, "DGRD", [](io::Reader& r) {
      ReplyMeta m;
      m.degraded = r.u8() != 0;
      m.covered_references = r.u64();
      m.total_references = r.u64();
      return m;
    });
  }
  return meta;
}

}  // namespace wf::serve
