#include "serve/frame.hpp"

namespace wf::serve {

namespace {

// Bounds on deserialized counts beyond what the frame cap already implies:
// a corrupt count must raise IoError before any allocation.
constexpr std::uint64_t kMaxQueries = std::uint64_t{1} << 24;
constexpr std::uint64_t kMaxEntries = std::uint64_t{1} << 24;

std::uint64_t checked(std::uint64_t n, std::uint64_t max, const char* what) {
  if (n > max) throw io::IoError(std::string("corrupt count: ") + what);
  return n;
}

// True when the section payload reader has unread bytes — how tolerant
// readers detect the presence of a trailing wire-v2 extension field.
bool has_more(io::Reader& r) {
  return r.stream().peek() != std::istream::traits_type::eof();
}

}  // namespace

const char* error_class_name(ErrorClass klass) {
  switch (klass) {
    case ErrorClass::protocol: return "protocol";
    case ErrorClass::backpressure: return "backpressure";
    case ErrorClass::timeout: return "timeout";
    case ErrorClass::unavailable: return "unavailable";
    case ErrorClass::shutdown: return "shutdown";
    case ErrorClass::unknown: break;
  }
  return "unknown";
}

std::string encode_frame(const std::string& kind,
                         const std::function<void(io::Writer&)>& body) {
  std::ostringstream payload_buffer;
  io::Writer payload(payload_buffer);
  io::write_header(payload, kind);
  if (body) body(payload);
  const std::string bytes = std::move(payload_buffer).str();
  if (bytes.size() > kMaxFrameBytes) throw io::IoError("frame exceeds the 1 GiB cap");
  std::ostringstream frame_buffer;
  io::Writer frame(frame_buffer);
  frame.u64(bytes.size());
  frame.stream().write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!frame.stream()) throw io::IoError("write failed");
  return std::move(frame_buffer).str();
}

ParsedFrame parse_frame(std::string payload) {
  ParsedFrame frame;
  frame.stream = std::make_unique<std::istringstream>(std::move(payload));
  frame.reader = std::make_unique<io::Reader>(*frame.stream);
  frame.kind = io::read_header(*frame.reader);
  return frame;
}

void send_frame(Socket& socket, const std::string& frame_bytes, const Deadline& deadline) {
  socket.send_all(frame_bytes.data(), frame_bytes.size(), deadline);
}

std::optional<std::uint64_t> recv_frame_length(Socket& socket, const Deadline& deadline) {
  std::uint8_t prefix[8];
  if (!socket.recv_exact(prefix, 8, deadline)) return std::nullopt;
  std::uint64_t length = 0;
  for (int i = 0; i < 8; ++i) length |= static_cast<std::uint64_t>(prefix[i]) << (8 * i);
  if (length > kMaxFrameBytes) throw io::IoError("oversized frame length");
  return length;
}

ParsedFrame recv_frame_payload(Socket& socket, std::uint64_t length, const Deadline& deadline) {
  std::string payload(length, '\0');
  if (length > 0 && !socket.recv_exact(payload.data(), length, deadline))
    throw io::IoError("unexpected end of stream");
  return parse_frame(std::move(payload));
}

std::optional<ParsedFrame> recv_frame(Socket& socket, const Deadline& deadline) {
  const std::optional<std::uint64_t> length = recv_frame_length(socket, deadline);
  if (!length) return std::nullopt;
  return recv_frame_payload(socket, *length, deadline);
}

void write_features(io::Writer& out, const nn::Matrix& features) {
  io::write_section(out, "FEAT", [&](io::Writer& w) { io::save_matrix(w, features); });
}

nn::Matrix read_features(io::Reader& in) {
  return io::parse_section(in, "FEAT", [](io::Reader& r) { return io::load_matrix(r); });
}

void write_rankings(io::Writer& out, const Rankings& rankings) {
  io::write_section(out, "RANK", [&](io::Writer& w) {
    w.u64(rankings.size());
    for (const std::vector<core::RankedLabel>& ranking : rankings) {
      w.u64(ranking.size());
      for (const core::RankedLabel& entry : ranking) {
        w.i32(entry.label);
        w.i32(entry.votes);
        w.f64(entry.distance);
      }
    }
  });
}

Rankings read_rankings(io::Reader& in) {
  return io::parse_section(in, "RANK", [](io::Reader& r) {
    Rankings rankings(checked(r.u64(), kMaxQueries, "queries"));
    for (std::vector<core::RankedLabel>& ranking : rankings) {
      ranking.resize(checked(r.u64(), kMaxEntries, "ranking entries"));
      for (core::RankedLabel& entry : ranking) {
        entry.label = r.i32();
        entry.votes = r.i32();
        entry.distance = r.f64();
      }
    }
    return rankings;
  });
}

void write_slice_scan(io::Writer& out, const core::SliceScan& scan) {
  io::write_section(out, "PART", [&](io::Writer& w) {
    w.u64(scan.n_queries);
    w.u64(scan.n_class_ids);
    for (const std::vector<core::Candidate>& candidates : scan.candidates) {
      w.u64(candidates.size());
      for (const core::Candidate& c : candidates) {
        w.f64(c.first);
        w.u64(c.second);
      }
    }
    w.f64_vec(scan.best);
    // Wire v2 extension: how many reference rows this slice actually
    // scanned, for the coordinator's coverage accounting.
    w.u64(scan.n_rows_scanned);
  });
}

core::SliceScan read_slice_scan(io::Reader& in) {
  return io::parse_section(in, "PART", [](io::Reader& r) {
    core::SliceScan scan;
    scan.n_queries = checked(r.u64(), kMaxQueries, "queries");
    scan.n_class_ids = checked(r.u64(), kMaxEntries, "class ids");
    scan.candidates.resize(scan.n_queries);
    for (std::vector<core::Candidate>& candidates : scan.candidates) {
      candidates.resize(checked(r.u64(), kMaxEntries, "candidates"));
      for (core::Candidate& c : candidates) {
        c.first = r.f64();
        c.second = r.u64();
      }
    }
    scan.best = r.f64_vec();
    if (scan.best.size() != scan.n_queries * scan.n_class_ids)
      throw io::IoError("slice scan best-distance table has the wrong shape");
    // Absent from v1 peers: default to 0 ("unknown"), never an error.
    if (has_more(r)) scan.n_rows_scanned = r.u64();
    return scan;
  });
}

void write_info(io::Writer& out, const ServerInfo& info) {
  io::write_section(out, "INFO", [&](io::Writer& w) {
    w.str(info.attacker);
    w.u64(info.n_references);
    w.u64(info.slice_index);
    w.u64(info.slice_count);
    w.i32(info.knn_k);
    w.i32_vec(info.classes);
    w.i32_vec(info.id_to_label);
  });
}

ServerInfo read_info(io::Reader& in) {
  return io::parse_section(in, "INFO", [](io::Reader& r) {
    ServerInfo info;
    info.attacker = r.str();
    info.n_references = r.u64();
    info.slice_index = r.u64();
    info.slice_count = r.u64();
    info.knn_k = r.i32();
    info.classes = r.i32_vec();
    info.id_to_label = r.i32_vec();
    if (info.slice_count == 0 || info.slice_index >= info.slice_count)
      throw io::IoError("corrupt server info (slice)");
    return info;
  });
}

void write_error(io::Writer& out, const ErrorReply& error) {
  io::write_section(out, "EMSG", [&](io::Writer& w) {
    w.u8(error.retryable ? 1 : 0);
    w.str(error.message);
    // Wire v2 extension: the error class, for retry loops and reporting.
    w.u8(static_cast<std::uint8_t>(error.klass));
  });
}

ErrorReply read_error(io::Reader& in) {
  return io::parse_section(in, "EMSG", [](io::Reader& r) {
    ErrorReply error;
    error.retryable = r.u8() != 0;
    error.message = r.str();
    // Absent from v1 peers; out-of-range values (a future class this build
    // does not know) degrade to unknown rather than failing the parse.
    if (has_more(r)) {
      const std::uint8_t klass = r.u8();
      error.klass = klass <= static_cast<std::uint8_t>(ErrorClass::shutdown)
                        ? static_cast<ErrorClass>(klass)
                        : ErrorClass::unknown;
    }
    return error;
  });
}

void write_reply_meta(io::Writer& out, const ReplyMeta& meta) {
  io::write_section(out, "DGRD", [&](io::Writer& w) {
    w.u8(meta.degraded ? 1 : 0);
    w.u64(meta.covered_references);
    w.u64(meta.total_references);
  });
}

ReplyMeta read_trailing_meta(ParsedFrame& frame) {
  ReplyMeta meta;
  if (frame.reader && has_more(*frame.reader)) {
    meta = io::parse_section(*frame.reader, "DGRD", [](io::Reader& r) {
      ReplyMeta m;
      m.degraded = r.u8() != 0;
      m.covered_references = r.u64();
      m.total_references = r.u64();
      return m;
    });
  }
  return meta;
}

}  // namespace wf::serve
