#include "serve/client.hpp"

#include <chrono>
#include <thread>

namespace wf::serve {

Client::Client(const std::string& host, std::uint16_t port, int retry_ms)
    : socket_(tcp_connect(host, port, retry_ms)) {}

ParsedFrame Client::roundtrip(const std::string& frame_bytes,
                              const std::string& expected_kind) {
  send_frame(socket_, frame_bytes);
  std::optional<ParsedFrame> reply = recv_frame(socket_);
  if (!reply.has_value()) throw io::IoError("server closed the connection mid-request");
  if (reply->kind == kFrameError) {
    const ErrorReply error = read_error(*reply->reader);
    throw ServeError(error.retryable, error.message);
  }
  if (reply->kind != expected_kind)
    throw io::IoError("unexpected reply kind \"" + reply->kind + "\" (wanted \"" +
                      expected_kind + "\")");
  return std::move(*reply);
}

ServerInfo Client::hello() {
  ParsedFrame reply = roundtrip(encode_frame(kFrameHello), kFrameInfo);
  ServerInfo info = read_info(*reply.reader);
  io::detail::require_consumed(*reply.stream, reply.kind);
  return info;
}

Rankings Client::query(const nn::Matrix& features) {
  ParsedFrame reply = roundtrip(
      encode_frame(kFrameQuery, [&](io::Writer& w) { write_features(w, features); }),
      kFrameRankings);
  Rankings rankings = read_rankings(*reply.reader);
  io::detail::require_consumed(*reply.stream, reply.kind);
  return rankings;
}

core::SliceScan Client::scan(const nn::Matrix& features) {
  ParsedFrame reply = roundtrip(
      encode_frame(kFrameScan, [&](io::Writer& w) { write_features(w, features); }),
      kFrameSlice);
  core::SliceScan scan = read_slice_scan(*reply.reader);
  io::detail::require_consumed(*reply.stream, reply.kind);
  return scan;
}

Rankings Client::query_until_accepted(const nn::Matrix& features) {
  while (true) {
    try {
      return query(features);
    } catch (const ServeError& e) {
      if (!e.retryable()) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void Client::stop_server() { roundtrip(encode_frame(kFrameStop), kFrameBye); }

}  // namespace wf::serve
