#include "serve/client.hpp"

namespace wf::serve {

namespace {

ClientConfig legacy_config(int retry_ms) {
  ClientConfig config;
  config.connect_retry_ms = retry_ms;
  return config;
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port, const ClientConfig& config)
    : host_(host), port_(port), config_(config) {
  ConnectOptions options;
  options.retry_ms = config_.connect_retry_ms;
  options.connect_timeout_ms = config_.connect_timeout_ms;
  socket_ = tcp_connect(host_, port_, options);
}

Client::Client(const std::string& host, std::uint16_t port, int retry_ms)
    : Client(host, port, legacy_config(retry_ms)) {}

void Client::ensure_connected() {
  if (socket_.valid()) return;
  // Reconnects use a single bounded attempt — the long connect_retry_ms
  // window is for racing the daemon's startup bind, not for stalling every
  // RPC retry against a dead peer.
  ConnectOptions options;
  options.connect_timeout_ms = config_.connect_timeout_ms;
  socket_ = tcp_connect(host_, port_, options);
}

ParsedFrame Client::roundtrip(const std::string& frame_bytes,
                              const std::string& expected_kind) {
  ensure_connected();
  const Deadline deadline = Deadline::after_ms(config_.timeout_ms);
  std::optional<ParsedFrame> reply;
  try {
    send_frame(socket_, frame_bytes, deadline);
    reply = recv_frame(socket_, deadline);
  } catch (const io::IoError&) {
    // The stream is desynced (or dead): drop it so the next call — possibly
    // a bounded retry — starts from a fresh connection.
    socket_.close();
    throw;
  }
  if (!reply.has_value()) {
    socket_.close();
    throw io::IoError("server closed the connection mid-request");
  }
  if (reply->kind == kFrameError) {
    const ErrorReply error = read_error(*reply->reader);
    throw ServeError(error.retryable, error.message, error.klass);
  }
  if (reply->kind != expected_kind) {
    socket_.close();
    throw io::IoError("unexpected reply kind \"" + reply->kind + "\" (wanted \"" +
                      expected_kind + "\")");
  }
  return std::move(*reply);
}

ServerInfo Client::hello() {
  ParsedFrame reply = roundtrip(encode_frame(kFrameHello), kFrameInfo);
  ServerInfo info = read_info(*reply.reader);
  io::detail::require_consumed(*reply.stream, reply.kind);
  return info;
}

Rankings Client::query(const nn::Matrix& features, ReplyMeta* meta) {
  ParsedFrame reply = roundtrip(
      encode_frame(kFrameQuery, [&](io::Writer& w) { write_features(w, features); }),
      kFrameRankings);
  Rankings rankings = read_rankings(*reply.reader);
  // Consume the optional DGRD trailer even when the caller does not ask for
  // it: trailing bytes would otherwise fail require_consumed below.
  const ReplyMeta parsed = read_trailing_meta(reply);
  if (meta) *meta = parsed;
  io::detail::require_consumed(*reply.stream, reply.kind);
  return rankings;
}

core::SliceScan Client::scan(const nn::Matrix& features) {
  ParsedFrame reply = roundtrip(
      encode_frame(kFrameScan, [&](io::Writer& w) { write_features(w, features); }),
      kFrameSlice);
  core::SliceScan scan = read_slice_scan(*reply.reader);
  io::detail::require_consumed(*reply.stream, reply.kind);
  return scan;
}

Rankings Client::query_until_accepted(const nn::Matrix& features, ReplyMeta* meta) {
  Backoff backoff(config_.retry);
  while (true) {
    try {
      return query(features, meta);
    } catch (const ServeError& e) {
      if (!e.retryable() || !backoff.retry()) throw;
    } catch (const io::IoError&) {
      // Timeout or broken transport: roundtrip() already dropped the
      // connection; the next attempt reconnects.
      if (!backoff.retry()) throw;
    }
  }
}

obs::Snapshot Client::stats(std::vector<obs::SpanRecord>* spans) {
  ParsedFrame reply = roundtrip(encode_frame(kFrameStat), kFrameMetrics);
  obs::Snapshot snapshot = read_snapshot(*reply.reader);
  // Consume the optional SPNS trailer even when the caller does not ask for
  // it, as with query()'s DGRD trailer.
  std::vector<obs::SpanRecord> parsed = read_trailing_spans(reply);
  if (spans) *spans = std::move(parsed);
  io::detail::require_consumed(*reply.stream, reply.kind);
  return snapshot;
}

void Client::stop_server() { roundtrip(encode_frame(kFrameStop), kFrameBye); }

}  // namespace wf::serve
