#include "baselines/hmm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wf::baselines {

JourneyHmm::JourneyHmm(const std::vector<std::vector<int>>& links, double self_loop,
                       double teleport)
    : links_(links), self_loop_(self_loop), teleport_(teleport) {
  if (links_.empty()) throw std::invalid_argument("JourneyHmm: empty link graph");
}

std::vector<int> JourneyHmm::random_walk(int start, std::size_t length, util::Rng& rng) const {
  std::vector<int> path;
  path.reserve(length);
  int current = start;
  for (std::size_t step = 0; step < length; ++step) {
    path.push_back(current);
    const auto& out = links_[static_cast<std::size_t>(current)];
    if (out.empty() || rng.bernoulli(teleport_)) {
      current = static_cast<int>(rng.index(links_.size()));
    } else if (rng.bernoulli(self_loop_)) {
      // Reload / stay on the page.
    } else {
      current = out[rng.index(out.size())];
    }
  }
  return path;
}

double JourneyHmm::transition_log(int from, int to) const {
  const std::size_t n = links_.size();
  const auto& out = links_[static_cast<std::size_t>(from)];
  // Smoothed mixture: teleport anywhere, reload, or follow a link.
  double p = teleport_ / static_cast<double>(n);
  const double follow = 1.0 - teleport_;
  if (to == from) p += follow * self_loop_;
  if (!out.empty() && std::find(out.begin(), out.end(), to) != out.end())
    p += follow * (1.0 - self_loop_) / static_cast<double>(out.size());
  return std::log(p);
}

std::vector<int> JourneyHmm::viterbi(
    const std::vector<std::vector<core::RankedLabel>>& emissions) const {
  const std::size_t n = links_.size();
  const std::size_t steps = emissions.size();
  if (steps == 0) return {};

  // Emission log-likelihoods from classifier votes, Laplace-smoothed.
  constexpr double kAlpha = 0.5;
  const auto emission_logs = [&](const std::vector<core::RankedLabel>& ranking) {
    int total_votes = 0;
    for (const core::RankedLabel& r : ranking) total_votes += r.votes;
    std::vector<double> logs(n, 0.0);
    const double denom = static_cast<double>(total_votes) + kAlpha * static_cast<double>(n);
    for (std::size_t s = 0; s < n; ++s) logs[s] = std::log(kAlpha / denom);
    for (const core::RankedLabel& r : ranking) {
      if (r.label < 0 || static_cast<std::size_t>(r.label) >= n) continue;
      logs[static_cast<std::size_t>(r.label)] =
          std::log((static_cast<double>(r.votes) + kAlpha) / denom);
    }
    return logs;
  };

  std::vector<std::vector<double>> score(steps, std::vector<double>(n));
  std::vector<std::vector<int>> back(steps, std::vector<int>(n, -1));

  const double log_uniform = -std::log(static_cast<double>(n));
  std::vector<double> em = emission_logs(emissions[0]);
  for (std::size_t s = 0; s < n; ++s) score[0][s] = log_uniform + em[s];

  for (std::size_t t = 1; t < steps; ++t) {
    em = emission_logs(emissions[t]);
    for (std::size_t to = 0; to < n; ++to) {
      double best = -1e300;
      int best_from = 0;
      for (std::size_t from = 0; from < n; ++from) {
        const double candidate =
            score[t - 1][from] + transition_log(static_cast<int>(from), static_cast<int>(to));
        if (candidate > best) {
          best = candidate;
          best_from = static_cast<int>(from);
        }
      }
      score[t][to] = best + em[to];
      back[t][to] = best_from;
    }
  }

  std::vector<int> path(steps, 0);
  double best = -1e300;
  for (std::size_t s = 0; s < n; ++s) {
    if (score[steps - 1][s] > best) {
      best = score[steps - 1][s];
      path[steps - 1] = static_cast<int>(s);
    }
  }
  for (std::size_t t = steps - 1; t > 0; --t)
    path[t - 1] = back[t][static_cast<std::size_t>(path[t])];
  return path;
}

}  // namespace wf::baselines
