#include "baselines/features.hpp"

#include <algorithm>
#include <cmath>

namespace wf::baselines {

namespace {

constexpr std::size_t kDim = 28;

float flog(double v) { return static_cast<float>(std::log1p(std::max(0.0, v))); }

struct Moments {
  double mean = 0.0, stddev = 0.0, max = 0.0;
};

Moments moments(const std::vector<double>& xs) {
  Moments m;
  if (xs.empty()) return m;
  for (const double x : xs) {
    m.mean += x;
    m.max = std::max(m.max, x);
  }
  m.mean /= static_cast<double>(xs.size());
  for (const double x : xs) m.stddev += (x - m.mean) * (x - m.mean);
  m.stddev = std::sqrt(m.stddev / static_cast<double>(xs.size()));
  return m;
}

}  // namespace

std::size_t kfp_feature_dim() { return kDim; }

std::vector<float> extract_kfp_features(const netsim::PacketCapture& capture) {
  std::vector<float> f;
  f.reserve(kDim);

  std::vector<double> in_sizes, out_sizes, interarrival;
  double in_bytes = 0.0, out_bytes = 0.0;
  double first = 0.0, last = 0.0;
  double server_bytes[3] = {0.0, 0.0, 0.0};
  std::size_t flips = 0, bursts = 0;
  double burst_bytes = 0.0, max_burst_bytes = 0.0;
  netsim::Direction prev = netsim::Direction::kOutgoing;
  double prev_time = 0.0;

  for (std::size_t i = 0; i < capture.records.size(); ++i) {
    const netsim::Record& r = capture.records[i];
    const double bytes = static_cast<double>(r.wire_bytes);
    if (r.direction == netsim::Direction::kIncoming) {
      in_sizes.push_back(bytes);
      in_bytes += bytes;
    } else {
      out_sizes.push_back(bytes);
      out_bytes += bytes;
    }
    server_bytes[std::min(r.server, 2)] += bytes;
    if (i == 0) {
      first = r.time_ms;
      prev = r.direction;
      burst_bytes = bytes;
      bursts = 1;
    } else {
      interarrival.push_back(r.time_ms - prev_time);
      if (r.direction != prev) {
        ++flips;
        ++bursts;
        max_burst_bytes = std::max(max_burst_bytes, burst_bytes);
        burst_bytes = 0.0;
        prev = r.direction;
      }
      burst_bytes += bytes;
    }
    prev_time = r.time_ms;
    last = r.time_ms;
  }
  max_burst_bytes = std::max(max_burst_bytes, burst_bytes);

  const std::size_t total_records = capture.records.size();
  const Moments in_m = moments(in_sizes), out_m = moments(out_sizes);
  const Moments gap_m = moments(interarrival);
  const double total_bytes = in_bytes + out_bytes;

  f.push_back(flog(static_cast<double>(total_records)));
  f.push_back(flog(static_cast<double>(in_sizes.size())));
  f.push_back(flog(static_cast<double>(out_sizes.size())));
  f.push_back(total_records > 0
                  ? static_cast<float>(static_cast<double>(in_sizes.size()) /
                                       static_cast<double>(total_records))
                  : 0.0f);
  f.push_back(flog(in_bytes));
  f.push_back(flog(out_bytes));
  f.push_back(total_bytes > 0.0 ? static_cast<float>(in_bytes / total_bytes) : 0.0f);
  f.push_back(flog(in_m.mean));
  f.push_back(flog(in_m.stddev));
  f.push_back(flog(in_m.max));
  f.push_back(flog(out_m.mean));
  f.push_back(flog(out_m.stddev));
  f.push_back(flog(out_m.max));
  f.push_back(flog(last - first));
  f.push_back(flog(gap_m.mean));
  f.push_back(flog(gap_m.stddev));
  f.push_back(flog(gap_m.max));
  f.push_back(flog(static_cast<double>(flips)));
  f.push_back(flog(static_cast<double>(bursts)));
  f.push_back(bursts > 0 ? flog(total_bytes / static_cast<double>(bursts)) : 0.0f);
  f.push_back(flog(max_burst_bytes));
  for (const double sb : server_bytes)
    f.push_back(total_bytes > 0.0 ? static_cast<float>(sb / total_bytes) : 0.0f);
  // Size quantiles of incoming records.
  std::vector<double> sorted_in = in_sizes;
  std::sort(sorted_in.begin(), sorted_in.end());
  for (const double q : {0.25, 0.5, 0.75, 0.95}) {
    if (sorted_in.empty()) {
      f.push_back(0.0f);
    } else {
      const std::size_t idx = std::min(sorted_in.size() - 1,
                                       static_cast<std::size_t>(q * static_cast<double>(sorted_in.size())));
      f.push_back(flog(sorted_in[idx]));
    }
  }

  f.resize(kDim, 0.0f);
  return f;
}

}  // namespace wf::baselines
