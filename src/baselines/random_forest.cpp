#include "baselines/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "io/binary.hpp"

namespace wf::baselines {

namespace {

int majority_label(const data::Dataset& dataset, const std::vector<std::size_t>& indices,
                   std::size_t begin, std::size_t end) {
  std::map<int, int> counts;
  for (std::size_t i = begin; i < end; ++i) ++counts[dataset[indices[i]].label];
  int best = -1, best_count = -1;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best = label;
      best_count = count;
    }
  }
  return best;
}

double gini(const std::map<int, int>& counts, int total) {
  if (total == 0) return 0.0;
  double sum = 0.0;
  for (const auto& [label, count] : counts) {
    const double p = static_cast<double>(count) / static_cast<double>(total);
    sum += p * p;
  }
  return 1.0 - sum;
}

}  // namespace

int RandomForest::grow(Tree& tree, const data::Dataset& dataset,
                       std::vector<std::size_t>& indices, std::size_t begin, std::size_t end,
                       int depth, util::Rng& rng) {
  const std::size_t count = end - begin;
  const int node_index = static_cast<int>(tree.nodes.size());
  tree.nodes.emplace_back();

  // Pure, tiny or depth-capped: make a leaf.
  bool pure = true;
  for (std::size_t i = begin + 1; i < end && pure; ++i)
    pure = dataset[indices[i]].label == dataset[indices[begin]].label;
  if (pure || depth >= config_.max_depth ||
      count < static_cast<std::size_t>(2 * std::max(1, config_.min_samples_leaf))) {
    tree.nodes[static_cast<std::size_t>(node_index)].label =
        majority_label(dataset, indices, begin, end);
    return node_index;
  }

  const std::size_t dim = dataset.feature_dim();
  std::size_t mtry = config_.n_feature_candidates > 0
                         ? static_cast<std::size_t>(config_.n_feature_candidates)
                         : static_cast<std::size_t>(std::sqrt(static_cast<double>(dim))) + 1;
  mtry = std::min(mtry, dim);

  int best_feature = -1;
  float best_threshold = 0.0f;
  double best_impurity = 1e300;

  for (std::size_t trial = 0; trial < mtry; ++trial) {
    const std::size_t feature = rng.index(dim);
    // Candidate thresholds: midpoints of random sample pairs.
    for (int cand = 0; cand < 4; ++cand) {
      const float va = dataset[indices[begin + rng.index(count)]].features[feature];
      const float vb = dataset[indices[begin + rng.index(count)]].features[feature];
      const float threshold = 0.5f * (va + vb);
      std::map<int, int> left_counts, right_counts;
      int left_n = 0, right_n = 0;
      for (std::size_t i = begin; i < end; ++i) {
        const data::Sample& s = dataset[indices[i]];
        if (s.features[feature] <= threshold) {
          ++left_counts[s.label];
          ++left_n;
        } else {
          ++right_counts[s.label];
          ++right_n;
        }
      }
      if (left_n < config_.min_samples_leaf || right_n < config_.min_samples_leaf) continue;
      const double impurity =
          (static_cast<double>(left_n) * gini(left_counts, left_n) +
           static_cast<double>(right_n) * gini(right_counts, right_n)) /
          static_cast<double>(count);
      if (impurity < best_impurity) {
        best_impurity = impurity;
        best_feature = static_cast<int>(feature);
        best_threshold = threshold;
      }
    }
  }

  if (best_feature < 0) {
    tree.nodes[static_cast<std::size_t>(node_index)].label =
        majority_label(dataset, indices, begin, end);
    return node_index;
  }

  // Partition [begin, end) around the chosen split.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t idx) {
        return dataset[idx].features[static_cast<std::size_t>(best_feature)] <= best_threshold;
      });
  const std::size_t mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) {
    tree.nodes[static_cast<std::size_t>(node_index)].label =
        majority_label(dataset, indices, begin, end);
    return node_index;
  }

  const int left = grow(tree, dataset, indices, begin, mid, depth + 1, rng);
  const int right = grow(tree, dataset, indices, mid, end, depth + 1, rng);
  Node& node = tree.nodes[static_cast<std::size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

void RandomForest::fit(const data::Dataset& dataset) {
  if (dataset.empty()) throw std::invalid_argument("RandomForest::fit: empty dataset");
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(config_.n_trees));
  util::Rng rng(config_.seed * 0x100000001b3ull + 19);
  const std::size_t n = dataset.size();
  for (int t = 0; t < config_.n_trees; ++t) {
    // Bootstrap sample.
    std::vector<std::size_t> indices(n);
    for (std::size_t i = 0; i < n; ++i) indices[i] = rng.index(n);
    Tree tree;
    grow(tree, dataset, indices, 0, n, 0, rng);
    trees_.push_back(std::move(tree));
  }
}

std::vector<core::RankedLabel> RandomForest::rank(std::span<const float> features) const {
  std::map<int, int> votes;
  for (const Tree& tree : trees_) {
    int node = 0;
    while (tree.nodes[static_cast<std::size_t>(node)].feature >= 0) {
      const Node& n = tree.nodes[static_cast<std::size_t>(node)];
      node = features[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right;
    }
    ++votes[tree.nodes[static_cast<std::size_t>(node)].label];
  }
  std::vector<core::RankedLabel> ranking;
  ranking.reserve(votes.size());
  for (const auto& [label, count] : votes) ranking.push_back({label, count, 0.0});
  std::sort(ranking.begin(), ranking.end(), [](const core::RankedLabel& a, const core::RankedLabel& b) {
    if (a.votes != b.votes) return a.votes > b.votes;
    return a.label < b.label;
  });
  return ranking;
}

int RandomForest::predict(std::span<const float> features) const {
  const std::vector<core::RankedLabel> ranking = rank(features);
  return ranking.empty() ? -1 : ranking.front().label;
}

void RandomForest::save_trees(io::Writer& out) const {
  out.u64(trees_.size());
  for (const Tree& tree : trees_) {
    out.u64(tree.nodes.size());
    for (const Node& node : tree.nodes) {
      out.i32(node.feature);
      out.f32(node.threshold);
      out.i32(node.left);
      out.i32(node.right);
      out.i32(node.label);
    }
  }
}

void RandomForest::load_trees(io::Reader& in) {
  const std::uint64_t n_trees = in.u64();
  if (n_trees > (std::uint64_t{1} << 20)) throw io::IoError("corrupt forest tree count");
  std::vector<Tree> trees(n_trees);
  for (Tree& tree : trees) {
    const std::uint64_t n_nodes = in.u64();
    // Tight cap: a depth-capped CART tree has at most a few thousand
    // nodes; 2^22 keeps even absurd configs loadable while bounding the
    // up-front resize to ~80 MB instead of gigabytes.
    if (n_nodes < 1 || n_nodes > (std::uint64_t{1} << 22))
      throw io::IoError("corrupt forest node count");
    tree.nodes.resize(n_nodes);
    for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
      Node& node = tree.nodes[i];
      node.feature = in.i32();
      node.threshold = in.f32();
      node.left = in.i32();
      node.right = in.i32();
      node.label = in.i32();
      // grow() appends children after their parent, so a valid internal
      // node points strictly forward — which also guarantees rank()'s
      // descent terminates. Leaves carry no links. The feature index is
      // re-checked against the retained corpus by the owning attacker.
      if (node.feature < 0) {
        if (node.left != -1 || node.right != -1)
          throw io::IoError("corrupt forest node links (leaf with children)");
      } else {
        const auto forward = [&](int child) {
          return child > static_cast<int>(i) && static_cast<std::uint64_t>(child) < n_nodes;
        };
        if (!forward(node.left) || !forward(node.right))
          throw io::IoError("corrupt forest node links");
      }
    }
  }
  trees_ = std::move(trees);
}

int RandomForest::max_feature_index() const {
  int max_feature = -1;
  for (const Tree& tree : trees_)
    for (const Node& node : tree.nodes) max_feature = std::max(max_feature, node.feature);
  return max_feature;
}

}  // namespace wf::baselines
