#include "baselines/attackers.hpp"

#include <stdexcept>

#include "core/adaptive.hpp"
#include "io/serialize.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace wf::baselines {

std::vector<std::string> attacker_type_names() { return {"adaptive", "forest", "kfp-knn"}; }

std::unique_ptr<core::Attacker> make_attacker_by_name(const std::string& name) {
  if (name == "adaptive") return std::make_unique<core::AdaptiveFingerprinter>();
  if (name == "forest") return std::make_unique<ForestAttacker>();
  if (name == "kfp-knn") return std::make_unique<FeatureKnnAttacker>();
  std::string known;
  for (const std::string& n : attacker_type_names()) known += " " + n;
  throw std::invalid_argument("unknown attacker \"" + name + "\" (known:" + known + ")");
}

namespace {

void save_forest_config(io::Writer& out, const ForestConfig& config) {
  out.i32(config.n_trees);
  out.i32(config.max_depth);
  out.i32(config.min_samples_leaf);
  out.i32(config.n_feature_candidates);
  out.u64(config.seed);
}

ForestConfig load_forest_config(io::Reader& in) {
  ForestConfig config;
  config.n_trees = in.i32();
  config.max_depth = in.i32();
  config.min_samples_leaf = in.i32();
  config.n_feature_candidates = in.i32();
  config.seed = in.u64();
  return config;
}

}  // namespace

core::TrainStats ForestAttacker::train(const data::Dataset& train) {
  util::Stopwatch watch;
  train_ = train;
  forest_ = RandomForest(config_);
  forest_.fit(train_);
  core::TrainStats stats;
  stats.seconds = watch.seconds();
  return stats;
}

void ForestAttacker::set_references(const data::Dataset& references) { train(references); }

std::vector<std::vector<core::RankedLabel>> ForestAttacker::fingerprint_batch(
    const data::Dataset& traces) const {
  std::vector<std::vector<core::RankedLabel>> rankings(traces.size());
  // Per-trace rankings are independent; shard them over the pool (disjoint
  // outputs, so results are identical for any thread count).
  util::global_pool().parallel_for(0, traces.size(), [&](std::size_t i) {
    rankings[i] = forest_.rank(traces[i].features);
  });
  return rankings;
}

void ForestAttacker::adapt(int label, const data::Dataset& fresh) {
  data::Dataset updated(train_.feature_dim());
  for (std::size_t i = 0; i < train_.size(); ++i)
    if (train_[i].label != label) updated.add(train_[i]);
  for (std::size_t i = 0; i < fresh.size(); ++i)
    if (fresh[i].label == label) updated.add(fresh[i]);
  train_ = std::move(updated);
  forest_ = RandomForest(config_);
  forest_.fit(train_);
}

void ForestAttacker::save_body(io::Writer& out) const {
  io::write_section(out, "FCFG", [&](io::Writer& w) { save_forest_config(w, config_); });
  io::write_section(out, "TREE", [&](io::Writer& w) { forest_.save_trees(w); });
  io::write_section(out, "TRNS", [&](io::Writer& w) { io::save_dataset_body(w, train_); });
}

void ForestAttacker::load_body(io::Reader& in) {
  config_ =
      io::parse_section(in, "FCFG", [](io::Reader& r) { return load_forest_config(r); });
  RandomForest forest(config_);
  io::parse_section(in, "TREE", [&](io::Reader& r) {
    forest.load_trees(r);
    return 0;
  });
  forest_ = std::move(forest);
  train_ = io::parse_section(in, "TRNS",
                             [](io::Reader& r) { return io::load_dataset_body(r); });
  // rank() indexes query features by the split indices; every one must fit
  // the corpus width the file itself declares.
  if (forest_.max_feature_index() >= static_cast<int>(train_.feature_dim()))
    throw io::IoError("forest split features exceed the stored corpus width");
}

core::TrainStats FeatureKnnAttacker::train(const data::Dataset& train) {
  util::Stopwatch watch;
  set_references(train);
  core::TrainStats stats;
  stats.seconds = watch.seconds();
  return stats;
}

void FeatureKnnAttacker::set_references(const data::Dataset& references) {
  references_ = core::ShardedReferenceSet(references.feature_dim(), n_shards_);
  for (std::size_t i = 0; i < references.size(); ++i)
    references_.add(references[i].features, references[i].label);
}

std::vector<std::vector<core::RankedLabel>> FeatureKnnAttacker::fingerprint_batch(
    const data::Dataset& traces) const {
  return knn_.rank_batch(references_, traces.to_matrix());
}

void FeatureKnnAttacker::adapt(int label, const data::Dataset& fresh) {
  references_.remove_class(label);
  for (std::size_t i = 0; i < fresh.size(); ++i)
    if (fresh[i].label == label) references_.add(fresh[i].features, fresh[i].label);
}

void FeatureKnnAttacker::save_body(io::Writer& out) const {
  io::write_section(out, "KNNC", [&](io::Writer& w) {
    w.i32(knn_.k());
    w.u64(n_shards_);
  });
  io::write_section(out, "REFS",
                    [&](io::Writer& w) { io::save_reference_set(w, references_); });
}

void FeatureKnnAttacker::load_body(io::Reader& in) {
  int k = 0;
  std::uint64_t n_shards = 0;
  io::parse_section(in, "KNNC", [&](io::Reader& r) {
    k = r.i32();
    n_shards = r.u64();
    return 0;
  });
  if (k < 1 || n_shards < 1) throw io::IoError("corrupt attacker k-NN parameters");
  references_ = io::parse_section(
      in, "REFS", [](io::Reader& r) { return io::load_reference_set(r); });
  knn_ = core::KnnClassifier(k);
  n_shards_ = n_shards;
}

}  // namespace wf::baselines
