#include "core/attacker.hpp"

#include <fstream>
#include <stdexcept>

#include "io/serialize.hpp"
#include "util/stopwatch.hpp"

namespace wf::core {

std::vector<RankedLabel> Attacker::fingerprint(std::span<const float> features) const {
  data::Dataset one(features.size());
  one.add({{features.begin(), features.end()}, 0});
  return fingerprint_batch(one).front();
}

TopNCurve curve_from_rankings(const std::vector<std::vector<RankedLabel>>& rankings,
                              std::span<const int> labels, std::size_t max_n) {
  if (rankings.size() != labels.size())
    throw std::invalid_argument("curve_from_rankings: rankings/labels size mismatch");
  if (labels.empty()) return TopNCurve();
  std::vector<double> hits(std::max<std::size_t>(1, max_n), 0.0);
  for (std::size_t i = 0; i < rankings.size(); ++i) {
    const std::vector<RankedLabel>& ranking = rankings[i];
    for (std::size_t r = 0; r < ranking.size() && r < hits.size(); ++r) {
      if (ranking[r].label == labels[i]) {
        hits[r] += 1.0;
        break;
      }
    }
  }
  // Cumulate and normalize.
  std::vector<double> curve(hits.size(), 0.0);
  double acc = 0.0;
  for (std::size_t n = 0; n < hits.size(); ++n) {
    acc += hits[n];
    curve[n] = acc / static_cast<double>(labels.size());
  }
  return TopNCurve(std::move(curve));
}

EvaluationResult Attacker::evaluate(const data::Dataset& test, std::size_t max_n) const {
  util::Stopwatch watch;
  EvaluationResult result;
  result.n_samples = test.size();
  if (test.empty()) return result;
  // Rank every query in one batched pass; the hit aggregation stays serial
  // and in sample order.
  result.curve = curve_from_rankings(fingerprint_batch(test), test.labels_of(), max_n);
  result.seconds = watch.seconds();
  return result;
}

void Attacker::save(const std::string& path) const { io::save_attacker(path, *this); }

void Attacker::load(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw io::IoError("cannot open " + path);
  io::Reader in(file);
  const std::string stored = io::read_attacker_name(in);
  if (stored != name())
    throw io::IoError("file holds a \"" + stored + "\" attacker, not \"" + name() + "\"");
  load_body(in);
}

}  // namespace wf::core
