#include "core/embedding_config.hpp"

#include <string>

namespace wf::core {

util::Table hyperparameter_table(const EmbeddingConfig& config) {
  util::Table table({"Hyperparameter", "Value"});
  std::string hidden;
  for (std::size_t i = 0; i < config.hidden.size(); ++i) {
    if (i > 0) hidden += " x ";
    hidden += std::to_string(config.hidden[i]);
  }
  table.add_row({"input sequences", std::to_string(config.n_sequences)});
  table.add_row({"timesteps per sequence", std::to_string(config.timesteps)});
  table.add_row({"hidden layers (ReLU)", hidden});
  table.add_row({"embedding dimension", std::to_string(config.embedding_dim)});
  table.add_row({"objective", config.objective == Objective::kContrastive
                                 ? "contrastive (eq. 1)"
                                 : "triplet"});
  table.add_row({"margin", util::Table::num(config.margin, 2)});
  table.add_row({"optimizer", "Adam"});
  table.add_row({"learning rate", util::Table::num(config.learning_rate, 4)});
  table.add_row({"batch pairs", std::to_string(config.batch_pairs)});
  table.add_row({"train iterations", std::to_string(config.train_iterations)});
  return table;
}

}  // namespace wf::core
