#include "core/adaptive.hpp"

#include <algorithm>
#include <stdexcept>

#include "io/serialize.hpp"
#include "obs/trace.hpp"

namespace wf::core {

AdaptiveFingerprinter::AdaptiveFingerprinter(const AdaptiveFingerprinter& other)
    : model_(other.model_),
      n_shards_(other.n_shards_),
      references_(other.references_),
      knn_(other.knn_),
      ivf_(other.ivf_ ? std::make_unique<index::IvfReferenceStore>(*other.ivf_) : nullptr),
      store_override_(other.store_override_) {}

AdaptiveFingerprinter& AdaptiveFingerprinter::operator=(const AdaptiveFingerprinter& other) {
  if (this == &other) return *this;
  model_ = other.model_;
  n_shards_ = other.n_shards_;
  references_ = other.references_;
  knn_ = other.knn_;
  ivf_ = other.ivf_ ? std::make_unique<index::IvfReferenceStore>(*other.ivf_) : nullptr;
  store_override_ = other.store_override_;
  return *this;
}

const ReferenceStore& AdaptiveFingerprinter::store() const {
  if (store_override_) return *store_override_;
  if (ivf_) return *ivf_;
  return references_;
}

void AdaptiveFingerprinter::build_index(const index::IvfConfig& config) {
  ivf_ = std::make_unique<index::IvfReferenceStore>(references_, config);
}

AdaptiveFingerprinter::AdaptiveFingerprinter(const EmbeddingConfig& config, int knn_k,
                                             std::size_t n_shards)
    : model_(config),
      n_shards_(n_shards == 0 ? ShardedReferenceSet::default_shard_count() : n_shards),
      references_(config.embedding_dim, n_shards_),
      knn_(knn_k) {}

TrainStats AdaptiveFingerprinter::provision(const data::Dataset& train,
                                            data::PairStrategy strategy) {
  data::PairGenerator pairs(train, strategy, model_.config().seed);
  return model_.train(pairs);
}

void AdaptiveFingerprinter::initialize(const data::Dataset& references) {
  references_ = ShardedReferenceSet(model_.config().embedding_dim, n_shards_);
  references_.add_all(model_.embed_dataset(references), references.labels_of());
  if (ivf_) build_index(ivf_->config());
}

TrainStats AdaptiveFingerprinter::train(const data::Dataset& train) {
  const TrainStats stats = provision(train);
  initialize(train);
  return stats;
}

std::vector<RankedLabel> AdaptiveFingerprinter::fingerprint(
    std::span<const float> features) const {
  const std::vector<float> embedding = model_.embed(features);
  return knn_.rank(store(), embedding);
}

std::vector<std::vector<RankedLabel>> AdaptiveFingerprinter::fingerprint_batch(
    const data::Dataset& traces) const {
  const obs::Span span("rank");
  return knn_.rank_batch(store(), model_.embed(traces.to_matrix()));
}

SliceScan AdaptiveFingerprinter::scan_slice(const data::Dataset& traces,
                                            std::size_t slice_index,
                                            std::size_t slice_count) const {
  const obs::Span span("scan");
  return knn_.scan_slice(store(), model_.embed(traces.to_matrix()), slice_index, slice_count);
}

double AdaptiveFingerprinter::probe_class_accuracy(int label, const data::Dataset& probe) const {
  if (probe.empty()) return 0.0;
  const data::Dataset mine = probe.filter([label](int l) { return l == label; });
  if (mine.empty()) return 0.0;
  const std::vector<std::vector<RankedLabel>> rankings = fingerprint_batch(mine);
  std::size_t hits = 0;
  for (const std::vector<RankedLabel>& ranking : rankings)
    if (!ranking.empty() && ranking.front().label == label) ++hits;
  return static_cast<double>(hits) / static_cast<double>(mine.size());
}

void AdaptiveFingerprinter::adapt_class(int label, const data::Dataset& fresh) {
  references_.remove_class(label);
  if (ivf_) ivf_->remove_class(label);
  const data::Dataset mine = fresh.filter([label](int l) { return l == label; });
  if (!mine.empty()) {
    const nn::Matrix embeddings = model_.embed_dataset(mine);
    for (std::size_t i = 0; i < embeddings.rows(); ++i) {
      references_.add(embeddings.row_span(i), label);
      if (ivf_) ivf_->add(embeddings.row_span(i), label);
    }
  }
  if (ivf_) ivf_->maybe_rebuild();
}

std::vector<int> AdaptiveFingerprinter::target_classes() const {
  const ReferenceStore& refs = store();
  if (&refs == &references_) return references_.classes();
  std::vector<int> labels;
  labels.reserve(refs.n_class_ids());
  for (std::size_t id = 0; id < refs.n_class_ids(); ++id) labels.push_back(refs.label_of_id(id));
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

void AdaptiveFingerprinter::save_body(io::Writer& out) const {
  io::write_section(out, "CONF",
                    [&](io::Writer& w) { io::save_embedding_config(w, model_.config()); });
  io::write_section(out, "KNNC", [&](io::Writer& w) {
    w.i32(knn_.k());
    w.u64(n_shards_);
  });
  io::write_section(out, "MLPW", [&](io::Writer& w) { io::save_mlp(w, model_.net()); });
  io::write_section(out, "REFS",
                    [&](io::Writer& w) { io::save_reference_set(w, references_); });
}

void AdaptiveFingerprinter::load_body(io::Reader& in) {
  const EmbeddingConfig config = io::parse_section(
      in, "CONF", [](io::Reader& r) { return io::load_embedding_config(r); });
  int k = 0;
  std::uint64_t n_shards = 0;
  io::parse_section(in, "KNNC", [&](io::Reader& r) {
    k = r.i32();
    n_shards = r.u64();
    return 0;
  });
  if (k < 1 || n_shards < 1) throw io::IoError("corrupt attacker k-NN parameters");
  nn::Mlp net =
      io::parse_section(in, "MLPW", [](io::Reader& r) { return io::load_mlp(r); });
  // The whole architecture — not just the endpoints — must agree with the
  // config, since EmbeddingModel(config) below rebuilds the net from it.
  std::vector<std::size_t> expected_sizes;
  expected_sizes.push_back(config.input_dim());
  expected_sizes.insert(expected_sizes.end(), config.hidden.begin(), config.hidden.end());
  expected_sizes.push_back(config.embedding_dim);
  if (net.layer_sizes() != expected_sizes)
    throw io::IoError("MLP architecture does not match the stored embedding config");
  ShardedReferenceSet references = io::parse_section(
      in, "REFS", [](io::Reader& r) { return io::load_reference_set(r); });
  if (references.dim() != config.embedding_dim)
    throw io::IoError("reference-set width does not match the stored embedding config");

  model_ = EmbeddingModel(config);
  model_.net() = std::move(net);
  n_shards_ = n_shards;
  references_ = std::move(references);
  knn_ = KnnClassifier(k);
  // Index state is never serialized: a loaded attacker answers exactly until
  // someone rebuilds or attaches an index.
  ivf_.reset();
  store_override_.reset();
}

}  // namespace wf::core
