#include "core/adaptive.hpp"

#include <stdexcept>

namespace wf::core {

AdaptiveFingerprinter::AdaptiveFingerprinter(const EmbeddingConfig& config, int knn_k,
                                             std::size_t n_shards)
    : model_(config),
      n_shards_(n_shards == 0 ? ShardedReferenceSet::default_shard_count() : n_shards),
      references_(config.embedding_dim, n_shards_),
      knn_(knn_k) {}

TrainStats AdaptiveFingerprinter::provision(const data::Dataset& train,
                                            data::PairStrategy strategy) {
  data::PairGenerator pairs(train, strategy, model_.config().seed);
  return model_.train(pairs);
}

void AdaptiveFingerprinter::initialize(const data::Dataset& references) {
  references_ = ShardedReferenceSet(model_.config().embedding_dim, n_shards_);
  references_.add_all(model_.embed_dataset(references), references.labels_of());
}

std::vector<RankedLabel> AdaptiveFingerprinter::fingerprint(
    std::span<const float> features) const {
  const std::vector<float> embedding = model_.embed(features);
  return knn_.rank(references_, embedding);
}

std::vector<std::vector<RankedLabel>> AdaptiveFingerprinter::fingerprint_batch(
    const data::Dataset& traces) const {
  return knn_.rank_batch(references_, model_.embed(traces.to_matrix()));
}

EvaluationResult AdaptiveFingerprinter::evaluate(const data::Dataset& test,
                                                 std::size_t max_n) const {
  util::Stopwatch watch;
  EvaluationResult result;
  result.n_samples = test.size();
  if (test.empty()) return result;
  std::vector<double> hits(std::max<std::size_t>(1, max_n), 0.0);
  // Embed the whole test set and rank every query in one batched pass; the
  // hit aggregation stays serial and in sample order.
  const std::vector<std::vector<RankedLabel>> rankings = fingerprint_batch(test);
  for (std::size_t i = 0; i < test.size(); ++i) {
    const std::vector<RankedLabel>& ranking = rankings[i];
    for (std::size_t r = 0; r < ranking.size() && r < hits.size(); ++r) {
      if (ranking[r].label == test[i].label) {
        hits[r] += 1.0;
        break;
      }
    }
  }
  // Cumulate and normalize.
  std::vector<double> curve(hits.size(), 0.0);
  double acc = 0.0;
  for (std::size_t n = 0; n < hits.size(); ++n) {
    acc += hits[n];
    curve[n] = acc / static_cast<double>(test.size());
  }
  result.curve = TopNCurve(std::move(curve));
  result.seconds = watch.seconds();
  return result;
}

double AdaptiveFingerprinter::probe_class_accuracy(int label, const data::Dataset& probe) const {
  if (probe.empty()) return 0.0;
  const data::Dataset mine = probe.filter([label](int l) { return l == label; });
  if (mine.empty()) return 0.0;
  const std::vector<std::vector<RankedLabel>> rankings = fingerprint_batch(mine);
  std::size_t hits = 0;
  for (const std::vector<RankedLabel>& ranking : rankings)
    if (!ranking.empty() && ranking.front().label == label) ++hits;
  return static_cast<double>(hits) / static_cast<double>(mine.size());
}

void AdaptiveFingerprinter::adapt_class(int label, const data::Dataset& fresh) {
  references_.remove_class(label);
  const data::Dataset mine = fresh.filter([label](int l) { return l == label; });
  if (mine.empty()) return;
  const nn::Matrix embeddings = model_.embed_dataset(mine);
  for (std::size_t i = 0; i < embeddings.rows(); ++i)
    references_.add(embeddings.row_span(i), label);
}

}  // namespace wf::core
