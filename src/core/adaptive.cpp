#include "core/adaptive.hpp"

#include <stdexcept>

namespace wf::core {

AdaptiveFingerprinter::AdaptiveFingerprinter(const EmbeddingConfig& config, int knn_k)
    : model_(config), references_(config.embedding_dim), knn_(knn_k) {}

TrainStats AdaptiveFingerprinter::provision(const data::Dataset& train,
                                            data::PairStrategy strategy) {
  data::PairGenerator pairs(train, strategy, model_.config().seed);
  return model_.train(pairs);
}

void AdaptiveFingerprinter::initialize(const data::Dataset& references) {
  references_ = ReferenceSet(model_.config().embedding_dim);
  references_.add_all(model_.embed_dataset(references), references.labels_of());
}

std::vector<RankedLabel> AdaptiveFingerprinter::fingerprint(
    std::span<const float> features) const {
  const std::vector<float> embedding = model_.embed(features);
  return knn_.rank(references_, embedding);
}

EvaluationResult AdaptiveFingerprinter::evaluate(const data::Dataset& test,
                                                 std::size_t max_n) const {
  util::Stopwatch watch;
  EvaluationResult result;
  result.n_samples = test.size();
  if (test.empty()) return result;
  std::vector<double> hits(std::max<std::size_t>(1, max_n), 0.0);
  for (std::size_t i = 0; i < test.size(); ++i) {
    const std::vector<RankedLabel> ranking = fingerprint(test[i].features);
    for (std::size_t r = 0; r < ranking.size() && r < hits.size(); ++r) {
      if (ranking[r].label == test[i].label) {
        hits[r] += 1.0;
        break;
      }
    }
  }
  // Cumulate and normalize.
  std::vector<double> curve(hits.size(), 0.0);
  double acc = 0.0;
  for (std::size_t n = 0; n < hits.size(); ++n) {
    acc += hits[n];
    curve[n] = acc / static_cast<double>(test.size());
  }
  result.curve = TopNCurve(std::move(curve));
  result.seconds = watch.seconds();
  return result;
}

double AdaptiveFingerprinter::probe_class_accuracy(int label, const data::Dataset& probe) const {
  if (probe.empty()) return 0.0;
  std::size_t hits = 0, total = 0;
  for (std::size_t i = 0; i < probe.size(); ++i) {
    if (probe[i].label != label) continue;
    ++total;
    const std::vector<RankedLabel> ranking = fingerprint(probe[i].features);
    if (!ranking.empty() && ranking.front().label == label) ++hits;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

void AdaptiveFingerprinter::adapt_class(int label, const data::Dataset& fresh) {
  references_.remove_class(label);
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    if (fresh[i].label != label) continue;
    references_.add(model_.embed(fresh[i].features), label);
  }
}

}  // namespace wf::core
