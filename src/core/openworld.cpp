#include "core/openworld.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace wf::core {

namespace {

constexpr std::size_t kQueryBlock = 32;

// k-th smallest squared distance from one query to the reference rows,
// given the query's dot products against every reference.
double kth_sq_distance(const ReferenceSet& refs, const float* dots, double qnorm,
                       std::size_t k, std::vector<double>& scratch) {
  const std::size_t n = refs.size();
  const std::vector<double>& ref_norms = refs.squared_norms();
  scratch.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    double dist = qnorm + ref_norms[j] - 2.0 * static_cast<double>(dots[j]);
    scratch[j] = dist < 0.0 ? 0.0 : dist;
  }
  std::nth_element(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(k),
                   scratch.end());
  return scratch[k];
}

}  // namespace

double OpenWorldDetector::kth_distance(const ReferenceSet& references,
                                       std::span<const float> embedding) const {
  const std::size_t n = references.size();
  if (n == 0) return 1e300;
  thread_local std::vector<float> dots;
  thread_local std::vector<double> dist_scratch;
  dots.resize(n);
  nn::gemm_nt_serial(embedding.data(), 1, references.data(), n, references.dim(), dots.data());
  const std::size_t k = std::min<std::size_t>(std::max(1, config_.neighbour), n) - 1;
  return std::sqrt(kth_sq_distance(references, dots.data(),
                                   nn::squared_norm(embedding.data(), embedding.size()), k,
                                   dist_scratch));
}

std::vector<double> OpenWorldDetector::kth_distances(const ReferenceSet& references,
                                                     const nn::Matrix& embeddings) const {
  const std::size_t m = embeddings.rows();
  const std::size_t n = references.size();
  std::vector<double> result(m, 1e300);
  if (m == 0 || n == 0) return result;
  if (embeddings.cols() != references.dim())
    throw std::invalid_argument("OpenWorldDetector::kth_distances: width mismatch");
  const std::size_t dim = references.dim();
  const std::size_t k = std::min<std::size_t>(std::max(1, config_.neighbour), n) - 1;

  util::global_pool().parallel_blocks(0, m, kQueryBlock, [&](std::size_t lo, std::size_t hi) {
    thread_local std::vector<float> dots;
    thread_local std::vector<double> dist_scratch;
    for (std::size_t t0 = lo; t0 < hi; t0 += kQueryBlock) {
      const std::size_t t1 = std::min(hi, t0 + kQueryBlock);
      dots.resize((t1 - t0) * n);
      nn::gemm_nt_serial(embeddings.data() + t0 * dim, t1 - t0, references.data(), n, dim,
                         dots.data());
      for (std::size_t q = t0; q < t1; ++q) {
        const double qn = nn::squared_norm(embeddings.data() + q * dim, dim);
        result[q] =
            std::sqrt(kth_sq_distance(references, dots.data() + (q - t0) * n, qn, k,
                                      dist_scratch));
      }
    }
  });
  return result;
}

void OpenWorldDetector::calibrate(const ReferenceSet& references,
                                  const nn::Matrix& monitored_samples) {
  if (monitored_samples.rows() == 0)
    throw std::invalid_argument("OpenWorldDetector::calibrate: no monitored samples");
  std::vector<double> distances = kth_distances(references, monitored_samples);
  std::sort(distances.begin(), distances.end());
  // Smallest threshold accepting at least target_tpr of the monitored set.
  const double tpr = std::clamp(config_.target_tpr, 0.0, 1.0);
  std::size_t idx = static_cast<std::size_t>(
      std::ceil(tpr * static_cast<double>(distances.size())));
  if (idx == 0) idx = 1;
  if (idx > distances.size()) idx = distances.size();
  threshold_ = distances[idx - 1] * (1.0 + 1e-9);
}

bool OpenWorldDetector::is_monitored(const ReferenceSet& references,
                                     std::span<const float> embedding) const {
  return kth_distance(references, embedding) <= threshold_;
}

OpenWorldMetrics OpenWorldDetector::evaluate(const ReferenceSet& references,
                                             const nn::Matrix& monitored,
                                             const nn::Matrix& unmonitored) const {
  OpenWorldMetrics metrics;
  metrics.threshold = threshold_;
  std::size_t tp = 0, fp = 0;
  for (const double d : kth_distances(references, monitored))
    if (d <= threshold_) ++tp;
  for (const double d : kth_distances(references, unmonitored))
    if (d <= threshold_) ++fp;
  if (monitored.rows() > 0)
    metrics.true_positive_rate = static_cast<double>(tp) / static_cast<double>(monitored.rows());
  if (unmonitored.rows() > 0)
    metrics.false_positive_rate =
        static_cast<double>(fp) / static_cast<double>(unmonitored.rows());
  if (tp + fp > 0)
    metrics.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
  return metrics;
}

}  // namespace wf::core
