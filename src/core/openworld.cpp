#include "core/openworld.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/probe_scan.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace wf::core {

namespace {

constexpr std::size_t kQueryBlock = 32;

// Append this shard's `count` smallest squared distances to `merged`, given
// the query's dot products against the shard's rows.
void shard_smallest(const ShardView& shard, const float* dots, double qnorm, std::size_t count,
                    std::vector<double>& scratch, std::vector<double>& merged) {
  scratch.resize(shard.rows);
  for (std::size_t j = 0; j < shard.rows; ++j) {
    const double dist = qnorm + shard.sq_norms[j] - 2.0 * static_cast<double>(dots[j]);
    scratch[j] = dist < 0.0 ? 0.0 : dist;
  }
  const std::size_t keep = std::min(count, shard.rows);
  if (keep < shard.rows)
    std::nth_element(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(keep),
                     scratch.end());
  merged.insert(merged.end(), scratch.begin(),
                scratch.begin() + static_cast<std::ptrdiff_t>(keep));
}

// k-th smallest (0-based) of the merged per-shard lists. Each shard kept at
// least min(k + 1, rows) values, so the union contains the global k + 1
// smallest and the selected value equals an unsharded nth_element.
double merged_kth(std::vector<double>& merged, std::size_t k) {
  // Exhaustive scans always merge at least k + 1 values; a pruned probe can
  // cover fewer rows than that, in which case the farthest covered
  // neighbour stands in (and an empty probe means "nowhere near": 1e300).
  if (merged.empty()) return 1e300;
  if (k >= merged.size()) k = merged.size() - 1;
  std::nth_element(merged.begin(), merged.begin() + static_cast<std::ptrdiff_t>(k),
                   merged.end());
  return merged[k];
}

}  // namespace

void OpenWorldDetector::require_calibrated(const char* what) const {
  if (!calibrated_)
    throw std::logic_error(std::string("OpenWorldDetector::") + what +
                           ": calibrate() must run first (an uncalibrated threshold would "
                           "accept every sample as monitored)");
}

void OpenWorldDetector::note_neighbour_clamp(std::size_t rows) const {
  if (!clamp_fired_.exchange(true))
    util::log_warn() << "OpenWorldDetector: reference set has " << rows
                     << " row(s), fewer than neighbour=" << config_.neighbour
                     << "; clamping to the farthest available neighbour "
                        "(metrics will report neighbour_clamped)";
}

double OpenWorldDetector::kth_distance(const ReferenceStore& references,
                                       std::span<const float> embedding) const {
  const std::size_t n = references.size();
  const std::size_t neighbour = static_cast<std::size_t>(std::max(1, config_.neighbour));
  if (n < neighbour) note_neighbour_clamp(n);
  if (n == 0) return 1e300;
  const std::size_t k = std::min(neighbour, n) - 1;
  const std::size_t n_shards = references.shard_count();
  const double qnorm = nn::squared_norm(embedding.data(), embedding.size());

  // Bound through a local reference so the pool lambda below captures the
  // caller's buffer (thread_local names resolve per executing thread).
  thread_local std::vector<double> merged_tls;
  std::vector<double>& merged = merged_tls;
  merged.clear();
  if (references.pruned()) {
    thread_local std::vector<double> dist_scratch;
    detail::scan_pruned_tile(references, embedding.data(), 1, references.dim(), 0, 1,
                             [&](std::size_t, const ShardView& shard, std::size_t,
                                 const float* dots) {
                               shard_smallest(shard, dots, qnorm, k + 1, dist_scratch, merged);
                             });
    return std::sqrt(merged_kth(merged, k));
  }
  if (n_shards == 1) {
    const ShardView shard = references.shard_view(0);
    thread_local std::vector<float> dots;
    thread_local std::vector<double> dist_scratch;
    dots.resize(shard.rows);
    nn::gemm_nt_serial(embedding.data(), 1, shard.data, shard.rows, references.dim(),
                       dots.data());
    shard_smallest(shard, dots.data(), qnorm, k + 1, dist_scratch, merged);
    return std::sqrt(merged_kth(merged, k));
  }
  // Per-shard k-smallest lists in parallel over the pool, folded under a
  // mutex; the k-th order statistic is fold-order-independent.
  std::mutex fold_mutex;
  util::global_pool().parallel_for(0, n_shards, [&](std::size_t s) {
    const ShardView shard = references.shard_view(s);
    if (shard.rows == 0) return;
    thread_local std::vector<float> dots;
    thread_local std::vector<double> dist_scratch;
    thread_local std::vector<double> list;
    dots.resize(shard.rows);
    nn::gemm_nt_serial(embedding.data(), 1, shard.data, shard.rows, references.dim(),
                       dots.data());
    list.clear();
    shard_smallest(shard, dots.data(), qnorm, k + 1, dist_scratch, list);
    const std::scoped_lock lock(fold_mutex);
    merged.insert(merged.end(), list.begin(), list.end());
  });
  return std::sqrt(merged_kth(merged, k));
}

std::vector<double> OpenWorldDetector::kth_distances(const ReferenceStore& references,
                                                     const nn::Matrix& embeddings) const {
  const std::size_t m = embeddings.rows();
  const std::size_t n = references.size();
  std::vector<double> result(m, 1e300);
  if (m == 0) return result;
  const std::size_t neighbour = static_cast<std::size_t>(std::max(1, config_.neighbour));
  if (n < neighbour) note_neighbour_clamp(n);
  if (n == 0) return result;
  if (embeddings.cols() != references.dim())
    throw std::invalid_argument("OpenWorldDetector::kth_distances: width mismatch");
  const std::size_t dim = references.dim();
  const std::size_t n_shards = references.shard_count();
  const std::size_t k = std::min(neighbour, n) - 1;

  util::global_pool().parallel_blocks(0, m, kQueryBlock, [&](std::size_t lo, std::size_t hi) {
    thread_local std::vector<float> dots;
    thread_local std::vector<double> dist_scratch;
    // Per-query accumulators for the current tile, reused (capacity intact)
    // across tiles; query norms computed once per tile, not once per shard.
    std::vector<std::vector<double>> merged(kQueryBlock);
    std::vector<double> qnorms(kQueryBlock);
    for (std::size_t t0 = lo; t0 < hi; t0 += kQueryBlock) {
      const std::size_t t1 = std::min(hi, t0 + kQueryBlock);
      const std::size_t rows = t1 - t0;
      for (std::size_t q = 0; q < rows; ++q) {
        merged[q].clear();
        qnorms[q] = nn::squared_norm(embeddings.data() + (t0 + q) * dim, dim);
      }
      if (references.pruned()) {
        detail::scan_pruned_tile(references, embeddings.data() + t0 * dim, rows, dim, 0, 1,
                                 [&](std::size_t, const ShardView& shard, std::size_t q,
                                     const float* dots_row) {
                                   shard_smallest(shard, dots_row, qnorms[q], k + 1,
                                                  dist_scratch, merged[q]);
                                 });
      } else {
        for (std::size_t s = 0; s < n_shards; ++s) {
          const ShardView shard = references.shard_view(s);
          if (shard.rows == 0) continue;
          dots.resize(rows * shard.rows);
          nn::gemm_nt_serial(embeddings.data() + t0 * dim, rows, shard.data, shard.rows, dim,
                             dots.data());
          for (std::size_t q = 0; q < rows; ++q)
            shard_smallest(shard, dots.data() + q * shard.rows, qnorms[q], k + 1, dist_scratch,
                           merged[q]);
        }
      }
      for (std::size_t q = 0; q < rows; ++q)
        result[t0 + q] = std::sqrt(merged_kth(merged[q], k));
    }
  });
  return result;
}

void OpenWorldDetector::calibrate(const ReferenceStore& references,
                                  const nn::Matrix& monitored_samples) {
  if (monitored_samples.rows() == 0)
    throw std::invalid_argument("OpenWorldDetector::calibrate: no monitored samples");
  std::vector<double> distances = kth_distances(references, monitored_samples);
  std::sort(distances.begin(), distances.end());
  // Smallest threshold accepting at least target_tpr of the monitored set.
  // ceil(tpr * n) computed naively overshoots whenever the product rounds
  // just above an integer (0.07 * 100 = 7.0000000000000009 → ceil 8), which
  // silently raises the operating point and inflates FPR; the epsilon keeps
  // exactly-representable boundaries exact.
  const double tpr = std::clamp(config_.target_tpr, 0.0, 1.0);
  const std::size_t n = distances.size();
  std::size_t idx = static_cast<std::size_t>(
      std::ceil(tpr * static_cast<double>(n) - 1e-9));
  idx = std::clamp<std::size_t>(idx, 1, n);
  threshold_ = distances[idx - 1] * (1.0 + 1e-9);
  calibrated_ = true;
}

bool OpenWorldDetector::is_monitored(const ReferenceStore& references,
                                     std::span<const float> embedding) const {
  require_calibrated("is_monitored");
  return kth_distance(references, embedding) <= threshold_;
}

std::vector<PrPoint> OpenWorldDetector::precision_recall_sweep(
    const ReferenceStore& references, const nn::Matrix& monitored,
    const nn::Matrix& unmonitored, std::size_t max_points) const {
  std::vector<double> dm = kth_distances(references, monitored);
  std::vector<double> du = kth_distances(references, unmonitored);
  std::sort(dm.begin(), dm.end());
  std::sort(du.begin(), du.end());

  // Candidate thresholds: the union of both distance sets, subsampled
  // evenly — every achievable operating point lies on one of them.
  std::vector<double> candidates;
  candidates.reserve(dm.size() + du.size());
  candidates.insert(candidates.end(), dm.begin(), dm.end());
  candidates.insert(candidates.end(), du.begin(), du.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
  if (candidates.empty()) return {};

  const std::size_t n_points = std::max<std::size_t>(1, std::min(max_points, candidates.size()));
  std::vector<PrPoint> points;
  points.reserve(n_points);
  for (std::size_t i = 0; i < n_points; ++i) {
    // Evenly spaced ranks, always including the largest candidate.
    const std::size_t rank =
        n_points == 1 ? candidates.size() - 1
                      : i * (candidates.size() - 1) / (n_points - 1);
    PrPoint p;
    p.threshold = candidates[rank];
    const auto tp = static_cast<std::size_t>(
        std::upper_bound(dm.begin(), dm.end(), p.threshold) - dm.begin());
    const auto fp = static_cast<std::size_t>(
        std::upper_bound(du.begin(), du.end(), p.threshold) - du.begin());
    if (!dm.empty()) p.recall = static_cast<double>(tp) / static_cast<double>(dm.size());
    if (!du.empty())
      p.false_positive_rate = static_cast<double>(fp) / static_cast<double>(du.size());
    if (tp + fp > 0) p.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
    points.push_back(p);
  }
  return points;
}

OpenWorldMetrics OpenWorldDetector::evaluate(const ReferenceStore& references,
                                             const nn::Matrix& monitored,
                                             const nn::Matrix& unmonitored) const {
  require_calibrated("evaluate");
  OpenWorldMetrics metrics;
  metrics.threshold = threshold_;
  std::size_t tp = 0, fp = 0;
  for (const double d : kth_distances(references, monitored))
    if (d <= threshold_) ++tp;
  for (const double d : kth_distances(references, unmonitored))
    if (d <= threshold_) ++fp;
  if (monitored.rows() > 0)
    metrics.true_positive_rate = static_cast<double>(tp) / static_cast<double>(monitored.rows());
  if (unmonitored.rows() > 0)
    metrics.false_positive_rate =
        static_cast<double>(fp) / static_cast<double>(unmonitored.rows());
  if (tp + fp > 0)
    metrics.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
  metrics.neighbour_clamped = clamp_fired_.load();
  return metrics;
}

}  // namespace wf::core
