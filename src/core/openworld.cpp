#include "core/openworld.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace wf::core {

double OpenWorldDetector::kth_distance(const ReferenceSet& references,
                                       std::span<const float> embedding) const {
  const std::size_t n = references.size();
  if (n == 0) return 1e300;
  std::vector<double> distances;
  distances.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    distances.push_back(nn::squared_distance(references.embedding(i), embedding));
  const std::size_t k =
      std::min<std::size_t>(std::max(1, config_.neighbour), n) - 1;
  std::nth_element(distances.begin(), distances.begin() + static_cast<std::ptrdiff_t>(k),
                   distances.end());
  return std::sqrt(distances[k]);
}

void OpenWorldDetector::calibrate(const ReferenceSet& references,
                                  const nn::Matrix& monitored_samples) {
  if (monitored_samples.rows() == 0)
    throw std::invalid_argument("OpenWorldDetector::calibrate: no monitored samples");
  std::vector<double> distances;
  distances.reserve(monitored_samples.rows());
  for (std::size_t i = 0; i < monitored_samples.rows(); ++i)
    distances.push_back(kth_distance(references, monitored_samples.row_span(i)));
  std::sort(distances.begin(), distances.end());
  // Smallest threshold accepting at least target_tpr of the monitored set.
  const double tpr = std::clamp(config_.target_tpr, 0.0, 1.0);
  std::size_t idx = static_cast<std::size_t>(
      std::ceil(tpr * static_cast<double>(distances.size())));
  if (idx == 0) idx = 1;
  if (idx > distances.size()) idx = distances.size();
  threshold_ = distances[idx - 1] * (1.0 + 1e-9);
}

bool OpenWorldDetector::is_monitored(const ReferenceSet& references,
                                     std::span<const float> embedding) const {
  return kth_distance(references, embedding) <= threshold_;
}

OpenWorldMetrics OpenWorldDetector::evaluate(const ReferenceSet& references,
                                             const nn::Matrix& monitored,
                                             const nn::Matrix& unmonitored) const {
  OpenWorldMetrics metrics;
  metrics.threshold = threshold_;
  std::size_t tp = 0, fp = 0;
  for (std::size_t i = 0; i < monitored.rows(); ++i)
    if (is_monitored(references, monitored.row_span(i))) ++tp;
  for (std::size_t i = 0; i < unmonitored.rows(); ++i)
    if (is_monitored(references, unmonitored.row_span(i))) ++fp;
  if (monitored.rows() > 0)
    metrics.true_positive_rate = static_cast<double>(tp) / static_cast<double>(monitored.rows());
  if (unmonitored.rows() > 0)
    metrics.false_positive_rate =
        static_cast<double>(fp) / static_cast<double>(unmonitored.rows());
  if (tp + fp > 0)
    metrics.precision = static_cast<double>(tp) / static_cast<double>(tp + fp);
  return metrics;
}

}  // namespace wf::core
