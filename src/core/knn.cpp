#include "core/knn.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace wf::core {

namespace {

constexpr std::size_t kQueryBlock = 32;  // queries per GEMM tile / pool task

// Reusable per-thread workspace: distance row, top-k heap and per-class
// stats. Thread-local so concurrent shards never contend and the scalar
// rank() allocates nothing in steady state.
struct RankScratch {
  std::vector<float> dots;
  std::vector<std::pair<double, std::size_t>> heap;  // max-heap of the k best
  std::vector<int> votes;                            // per class id
  std::vector<double> best;                          // per class id
};

RankScratch& scratch() {
  thread_local RankScratch s;
  return s;
}

// Build the ranking for one query given its dot products against every
// reference. Distances use the cached-norm identity; vote counting and the
// full-set nearest-reference pass mirror the original linear-scan rank().
void build_ranking(const ReferenceSet& refs, const float* dots, double query_norm, int k_cfg,
                   std::vector<RankedLabel>& out) {
  const std::size_t n = refs.size();
  const std::size_t n_ids = refs.n_class_ids();
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(k_cfg), n);
  const std::vector<double>& ref_norms = refs.squared_norms();

  RankScratch& s = scratch();
  s.heap.clear();
  s.votes.assign(n_ids, 0);
  s.best.assign(n_ids, 1e300);

  // One pass: per-class nearest reference, plus the k smallest (dist, index)
  // pairs in a bounded max-heap. Ties break on the reference index, exactly
  // like a partial_sort over (dist, index) pairs.
  const auto cmp = [](const std::pair<double, std::size_t>& a,
                      const std::pair<double, std::size_t>& b) { return a < b; };
  for (std::size_t j = 0; j < n; ++j) {
    double dist = query_norm + ref_norms[j] - 2.0 * static_cast<double>(dots[j]);
    if (dist < 0.0) dist = 0.0;
    const int id = refs.class_id(j);
    if (dist < s.best[static_cast<std::size_t>(id)]) s.best[static_cast<std::size_t>(id)] = dist;
    const std::pair<double, std::size_t> entry{dist, j};
    if (s.heap.size() < k) {
      s.heap.push_back(entry);
      std::push_heap(s.heap.begin(), s.heap.end(), cmp);
    } else if (k > 0 && entry < s.heap.front()) {
      std::pop_heap(s.heap.begin(), s.heap.end(), cmp);
      s.heap.back() = entry;
      std::push_heap(s.heap.begin(), s.heap.end(), cmp);
    }
  }
  for (const auto& [dist, j] : s.heap)
    ++s.votes[static_cast<std::size_t>(refs.class_id(j))];

  out.clear();
  out.reserve(n_ids);
  for (std::size_t id = 0; id < n_ids; ++id)
    out.push_back({refs.label_of_id(id), s.votes[id], s.best[id]});
  std::sort(out.begin(), out.end(), [](const RankedLabel& a, const RankedLabel& b) {
    if (a.votes != b.votes) return a.votes > b.votes;
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.label < b.label;
  });
}

}  // namespace

std::vector<RankedLabel> KnnClassifier::rank(const ReferenceSet& references,
                                             std::span<const float> query) const {
  const std::size_t n = references.size();
  if (n == 0) return {};
  if (query.size() != references.dim())
    throw std::invalid_argument("KnnClassifier::rank: query width mismatch");
  RankScratch& s = scratch();
  s.dots.resize(n);
  nn::gemm_nt_serial(query.data(), 1, references.data(), n, references.dim(), s.dots.data());
  std::vector<RankedLabel> ranking;
  build_ranking(references, s.dots.data(), nn::squared_norm(query.data(), query.size()), k_,
                ranking);
  return ranking;
}

std::vector<std::vector<RankedLabel>> KnnClassifier::rank_batch(
    const ReferenceSet& references, const nn::Matrix& queries) const {
  const std::size_t m = queries.rows();
  std::vector<std::vector<RankedLabel>> rankings(m);
  const std::size_t n = references.size();
  if (m == 0 || n == 0) return rankings;
  if (queries.cols() != references.dim())
    throw std::invalid_argument("KnnClassifier::rank_batch: query width mismatch");
  const std::size_t dim = references.dim();

  util::global_pool().parallel_blocks(0, m, kQueryBlock, [&](std::size_t lo, std::size_t hi) {
    // The GEMM tile lives in the shard's thread-local scratch; build_ranking
    // shares the same workspace, so compute the tile first, then rank from a
    // row pointer it no longer resizes.
    for (std::size_t t0 = lo; t0 < hi; t0 += kQueryBlock) {
      const std::size_t t1 = std::min(hi, t0 + kQueryBlock);
      RankScratch& s = scratch();
      s.dots.resize((t1 - t0) * n);
      nn::gemm_nt_serial(queries.data() + t0 * dim, t1 - t0, references.data(), n, dim,
                         s.dots.data());
      for (std::size_t q = t0; q < t1; ++q) {
        const float* query = queries.data() + q * dim;
        build_ranking(references, scratch().dots.data() + (q - t0) * n,
                      nn::squared_norm(query, dim), k_, rankings[q]);
      }
    }
  });
  return rankings;
}

}  // namespace wf::core
