#include "core/knn.hpp"

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <stdexcept>

#include "core/probe_scan.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace wf::core {

namespace {

constexpr std::size_t kQueryBlock = 32;  // queries per GEMM tile / pool task

// Candidates (see knn.hpp): insertion ids are unique, so comparing packed
// keys compares insertion ids — pair's lexicographic < therefore orders
// candidates by (dist, gid), identical to a partial_sort over (dist, index)
// pairs of one unsharded scan, while keeping heap elements at 16 bytes.
constexpr std::uint64_t kClassBits = kCandidateClassBits;  // ~16.7M classes, ~1.1T rows
constexpr std::uint64_t kClassMask = (std::uint64_t{1} << kClassBits) - 1;

inline std::uint64_t pack_key(std::uint64_t gid, int class_id) {
  return (gid << kClassBits) | static_cast<std::uint64_t>(class_id);
}

// Reusable per-thread workspace: GEMM tile, per-shard heap, merged
// candidates and per-class stats. Thread-local so concurrent pool tasks
// never contend and the hot paths allocate nothing in steady state.
struct RankScratch {
  std::vector<float> dots;
  std::vector<double> qnorms;
  std::vector<Candidate> heap;    // bounded max-heap of one shard's k best
  std::vector<Candidate> merged;  // candidates accumulated across shards
  std::vector<double> best;       // per global class id
  std::vector<int> votes;         // per global class id
};

RankScratch& scratch() {
  thread_local RankScratch s;
  return s;
}

// Scan one shard given the query's dot products against its rows: fold the
// per-class nearest distance into `best` (a flat per-class array) and
// append the shard's k smallest (dist, gid) candidates to `merged`.
// Templated on row-id presence so the single-shard store pays no per-row
// branch for its implicit identity ids.
template <bool kHasRowIds>
void scan_shard_impl(const ShardView& shard, const float* dots, double query_norm,
                     std::size_t k, std::vector<Candidate>& heap, double* best,
                     std::vector<Candidate>& merged) {
  WF_DCHECK(shard.rows == 0 || (shard.sq_norms != nullptr && shard.class_ids != nullptr),
            "scan_shard: shard tables missing");
  const auto cmp = [](const Candidate& a, const Candidate& b) { return a < b; };
  heap.clear();
  for (std::size_t j = 0; j < shard.rows; ++j) {
    double dist = query_norm + shard.sq_norms[j] - 2.0 * static_cast<double>(dots[j]);
    if (dist < 0.0) dist = 0.0;
    const int id = shard.class_ids[j];
    if (dist < best[static_cast<std::size_t>(id)]) best[static_cast<std::size_t>(id)] = dist;
    const Candidate entry{dist, pack_key(kHasRowIds ? shard.row_ids[j] : j, id)};
    if (heap.size() < k) {
      heap.push_back(entry);
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (k > 0 && entry < heap.front()) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = entry;
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  merged.insert(merged.end(), heap.begin(), heap.end());
}

void scan_shard(const ShardView& shard, const float* dots, double query_norm, std::size_t k,
                std::vector<Candidate>& heap, double* best, std::vector<Candidate>& merged) {
  if (shard.row_ids != nullptr)
    scan_shard_impl<true>(shard, dots, query_norm, k, heap, best, merged);
  else
    scan_shard_impl<false>(shard, dots, query_norm, k, heap, best, merged);
}

// Keep the k globally smallest candidates, count their votes per class and
// emit the sorted ranking. The union of per-shard k-best lists always
// contains the global k best, so this equals the unsharded selection; the
// candidate set selected by nth_element is order-independent because keys
// are unique, which is what makes the scatter/gather fold exact.
template <typename LabelOf>
void finalize_candidates(std::size_t n_ids, LabelOf label_of, std::size_t k,
                         std::vector<Candidate>& merged, std::vector<int>& votes,
                         const double* best, std::vector<RankedLabel>& out) {
  if (merged.size() > k) {
    std::nth_element(merged.begin(), merged.begin() + static_cast<std::ptrdiff_t>(k),
                     merged.end());
    merged.resize(k);
  }
  votes.assign(n_ids, 0);
  for (const Candidate& c : merged) {
    WF_DCHECK((c.second & kClassMask) < n_ids, "finalize: candidate class id out of range");
    ++votes[static_cast<std::size_t>(c.second & kClassMask)];
  }
  out.clear();
  out.reserve(n_ids);
  for (std::size_t id = 0; id < n_ids; ++id)
    out.push_back({label_of(id), votes[id], best[id]});
  std::sort(out.begin(), out.end(), [](const RankedLabel& a, const RankedLabel& b) {
    if (a.votes != b.votes) return a.votes > b.votes;
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.label < b.label;
  });
}

void finalize_ranking(const ReferenceStore& refs, std::size_t k, std::vector<Candidate>& merged,
                      std::vector<int>& votes, const double* best,
                      std::vector<RankedLabel>& out) {
  finalize_candidates(
      refs.n_class_ids(), [&](std::size_t id) { return refs.label_of_id(id); }, k, merged,
      votes, best, out);
}

}  // namespace

std::vector<RankedLabel> KnnClassifier::rank(const ReferenceStore& references,
                                             std::span<const float> query) const {
  const std::size_t n = references.size();
  if (n == 0) return {};
  if (query.size() != references.dim())
    throw std::invalid_argument("KnnClassifier::rank: query width mismatch");
  const std::size_t n_shards = references.shard_count();
  const std::size_t n_ids = references.n_class_ids();
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(std::max(0, k_)), n);
  const double qnorm = nn::squared_norm(query.data(), query.size());

  RankScratch& sc = scratch();
  sc.merged.clear();
  sc.best.assign(n_ids, 1e300);
  if (references.pruned()) {
    // IVF-style store: scan only the shards the store probes for this
    // query. With a probe list covering every shard this is bit-identical
    // to the exhaustive paths below (same candidates, order-independent
    // merge); with a pruned list it is the ANN approximation.
    detail::scan_pruned_tile(references, query.data(), 1, references.dim(), 0, 1,
                             [&](std::size_t, const ShardView& shard, std::size_t,
                                 const float* dots) {
                               scan_shard(shard, dots, qnorm, k, sc.heap, sc.best.data(),
                                          sc.merged);
                             });
  } else if (n_shards == 1) {
    // Zero-allocation steady state on the per-trace latency path.
    const ShardView shard = references.shard_view(0);
    sc.dots.resize(shard.rows);
    nn::gemm_nt_serial(query.data(), 1, shard.data, shard.rows, references.dim(),
                       sc.dots.data());
    scan_shard(shard, sc.dots.data(), qnorm, k, sc.heap, sc.best.data(), sc.merged);
  } else {
    // Per-shard candidate heaps in parallel over the pool, folded into the
    // caller's accumulators under a mutex. Fold order doesn't matter: the
    // per-class fold is min() and finalize selects the k smallest by the
    // unique (dist, gid) key, so the result is schedule-independent.
    std::mutex fold_mutex;
    util::global_pool().parallel_for(0, n_shards, [&](std::size_t s) {
      const ShardView shard = references.shard_view(s);
      if (shard.rows == 0) return;
      thread_local std::vector<float> dots;
      thread_local std::vector<Candidate> heap;
      thread_local std::vector<Candidate> cands;
      thread_local std::vector<double> best;
      dots.resize(shard.rows);
      nn::gemm_nt_serial(query.data(), 1, shard.data, shard.rows, references.dim(),
                         dots.data());
      cands.clear();
      best.assign(n_ids, 1e300);
      scan_shard(shard, dots.data(), qnorm, k, heap, best.data(), cands);
      const std::scoped_lock lock(fold_mutex);
      sc.merged.insert(sc.merged.end(), cands.begin(), cands.end());
      for (std::size_t id = 0; id < n_ids; ++id) sc.best[id] = std::min(sc.best[id], best[id]);
    });
  }
  std::vector<RankedLabel> ranking;
  finalize_ranking(references, k, sc.merged, sc.votes, sc.best.data(), ranking);
  return ranking;
}

std::vector<std::vector<RankedLabel>> KnnClassifier::rank_batch(
    const ReferenceStore& references, const nn::Matrix& queries) const {
  const std::size_t m = queries.rows();
  std::vector<std::vector<RankedLabel>> rankings(m);
  const std::size_t n = references.size();
  if (m == 0 || n == 0) return rankings;
  if (queries.cols() != references.dim())
    throw std::invalid_argument("KnnClassifier::rank_batch: query width mismatch");
  const std::size_t dim = references.dim();
  const std::size_t n_shards = references.shard_count();
  const std::size_t n_ids = references.n_class_ids();
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(std::max(0, k_)), n);

  util::global_pool().parallel_blocks(0, m, kQueryBlock, [&](std::size_t lo, std::size_t hi) {
    // Per-query accumulators for the current tile, reused (capacity intact)
    // across tiles; shards are scanned one after another, each contributing
    // one GEMM tile and its candidates. best is flat: query q owns
    // [q * n_ids, (q + 1) * n_ids).
    std::vector<std::vector<Candidate>> merged(kQueryBlock);
    std::vector<double> best;
    for (std::size_t t0 = lo; t0 < hi; t0 += kQueryBlock) {
      const std::size_t t1 = std::min(hi, t0 + kQueryBlock);
      const std::size_t rows = t1 - t0;
      RankScratch& sc = scratch();
      sc.qnorms.resize(rows);
      for (std::size_t q = 0; q < rows; ++q)
        sc.qnorms[q] = nn::squared_norm(queries.data() + (t0 + q) * dim, dim);
      for (std::size_t q = 0; q < rows; ++q) merged[q].clear();
      best.assign(rows * n_ids, 1e300);
      if (references.pruned()) {
        detail::scan_pruned_tile(references, queries.data() + t0 * dim, rows, dim, 0, 1,
                                 [&](std::size_t, const ShardView& shard, std::size_t q,
                                     const float* dots) {
                                   scan_shard(shard, dots, sc.qnorms[q], k, sc.heap,
                                              best.data() + q * n_ids, merged[q]);
                                 });
      } else {
        for (std::size_t s = 0; s < n_shards; ++s) {
          const ShardView shard = references.shard_view(s);
          if (shard.rows == 0) continue;
          sc.dots.resize(rows * shard.rows);
          nn::gemm_nt_serial(queries.data() + t0 * dim, rows, shard.data, shard.rows, dim,
                             sc.dots.data());
          for (std::size_t q = 0; q < rows; ++q)
            scan_shard(shard, sc.dots.data() + q * shard.rows, sc.qnorms[q], k, sc.heap,
                       best.data() + q * n_ids, merged[q]);
        }
      }
      for (std::size_t q = 0; q < rows; ++q)
        finalize_ranking(references, k, merged[q], sc.votes, best.data() + q * n_ids,
                         rankings[t0 + q]);
    }
  });
  return rankings;
}

SliceScan KnnClassifier::scan_slice(const ReferenceStore& references, const nn::Matrix& queries,
                                    std::size_t slice_index, std::size_t slice_count) const {
  if (slice_count == 0 || slice_index >= slice_count)
    throw std::invalid_argument("KnnClassifier::scan_slice: slice index out of range");
  const std::size_t m = queries.rows();
  const std::size_t n = references.size();
  SliceScan out;
  out.n_queries = m;
  out.n_class_ids = references.n_class_ids();
  out.candidates.resize(m);
  out.best.assign(m * out.n_class_ids, 1e300);
  for (std::size_t s = slice_index; s < references.shard_count(); s += slice_count)
    out.n_rows_scanned += references.shard_view(s).rows;
  if (m == 0 || n == 0) return out;
  if (queries.cols() != references.dim())
    throw std::invalid_argument("KnnClassifier::scan_slice: query width mismatch");
  const std::size_t dim = references.dim();
  const std::size_t n_shards = references.shard_count();
  const std::size_t n_ids = out.n_class_ids;
  // k is bounded by the *whole* store's row count, exactly as in rank_batch:
  // the slice is a partition of one store, not a smaller store.
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(std::max(0, k_)), n);

  util::global_pool().parallel_blocks(0, m, kQueryBlock, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t t0 = lo; t0 < hi; t0 += kQueryBlock) {
      const std::size_t t1 = std::min(hi, t0 + kQueryBlock);
      const std::size_t rows = t1 - t0;
      RankScratch& sc = scratch();
      sc.qnorms.resize(rows);
      for (std::size_t q = 0; q < rows; ++q)
        sc.qnorms[q] = nn::squared_norm(queries.data() + (t0 + q) * dim, dim);
      if (references.pruned()) {
        detail::scan_pruned_tile(references, queries.data() + t0 * dim, rows, dim, slice_index,
                                 slice_count,
                                 [&](std::size_t, const ShardView& shard, std::size_t q,
                                     const float* dots) {
                                   scan_shard(shard, dots, sc.qnorms[q], k, sc.heap,
                                              out.best.data() + (t0 + q) * n_ids,
                                              out.candidates[t0 + q]);
                                 });
      } else {
        for (std::size_t s = slice_index; s < n_shards; s += slice_count) {
          const ShardView shard = references.shard_view(s);
          if (shard.rows == 0) continue;
          sc.dots.resize(rows * shard.rows);
          nn::gemm_nt_serial(queries.data() + t0 * dim, rows, shard.data, shard.rows, dim,
                             sc.dots.data());
          for (std::size_t q = 0; q < rows; ++q)
            scan_shard(shard, sc.dots.data() + q * shard.rows, sc.qnorms[q], k, sc.heap,
                       out.best.data() + (t0 + q) * n_ids, out.candidates[t0 + q]);
        }
      }
    }
  });
  return out;
}

std::vector<std::vector<RankedLabel>> merge_slice_scans(std::span<const int> labels_by_id,
                                                        int k, std::size_t n_total,
                                                        const std::vector<SliceScan>& slices) {
  const std::size_t n_ids = labels_by_id.size();
  const std::size_t m = slices.empty() ? 0 : slices.front().n_queries;
  for (const SliceScan& slice : slices) {
    if (slice.n_class_ids != n_ids)
      throw std::invalid_argument("merge_slice_scans: class-id space mismatch");
    if (slice.n_queries != m)
      throw std::invalid_argument("merge_slice_scans: query count mismatch");
  }
  std::vector<std::vector<RankedLabel>> rankings(m);
  if (n_total == 0) return rankings;
  const std::size_t kk =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(0, k)), n_total);
  std::vector<Candidate> merged;
  std::vector<double> best;
  std::vector<int> votes;
  for (std::size_t q = 0; q < m; ++q) {
    merged.clear();
    best.assign(n_ids, 1e300);
    for (const SliceScan& slice : slices) {
      merged.insert(merged.end(), slice.candidates[q].begin(), slice.candidates[q].end());
      const double* slice_best = slice.best_of(q);
      for (std::size_t id = 0; id < n_ids; ++id) best[id] = std::min(best[id], slice_best[id]);
    }
    finalize_candidates(
        n_ids, [&](std::size_t id) { return labels_by_id[id]; }, kk, merged, votes,
        best.data(), rankings[q]);
  }
  return rankings;
}

}  // namespace wf::core
