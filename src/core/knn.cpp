#include "core/knn.hpp"

#include <algorithm>
#include <map>

namespace wf::core {

std::vector<RankedLabel> KnnClassifier::rank(const ReferenceSet& references,
                                             std::span<const float> query) const {
  const std::size_t n = references.size();
  if (n == 0) return {};

  std::vector<std::pair<double, std::size_t>> distances;  // (squared dist, ref index)
  distances.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    distances.emplace_back(nn::squared_distance(references.embedding(i), query), i);

  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(k_), n);
  std::partial_sort(distances.begin(), distances.begin() + static_cast<std::ptrdiff_t>(k),
                    distances.end());

  struct ClassStats {
    int votes = 0;
    double best = 1e300;  // nearest reference of this class (any rank)
  };
  std::map<int, ClassStats> stats;
  for (std::size_t i = 0; i < k; ++i) {
    ClassStats& s = stats[references.label(distances[i].second)];
    ++s.votes;
    s.best = std::min(s.best, distances[i].first);
  }
  // Classes outside the top k still need a rank: order them by their
  // nearest reference overall.
  for (std::size_t i = k; i < n; ++i) {
    ClassStats& s = stats[references.label(distances[i].second)];
    s.best = std::min(s.best, distances[i].first);
  }

  std::vector<RankedLabel> ranking;
  ranking.reserve(stats.size());
  for (const auto& [label, s] : stats) ranking.push_back({label, s.votes, s.best});
  std::sort(ranking.begin(), ranking.end(), [](const RankedLabel& a, const RankedLabel& b) {
    if (a.votes != b.votes) return a.votes > b.votes;
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.label < b.label;
  });
  return ranking;
}

}  // namespace wf::core
