#include "core/sharded_reference_set.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"

namespace wf::core {

ShardedReferenceSet::ShardedReferenceSet(std::size_t dim, std::size_t n_shards) : dim_(dim) {
  if (n_shards == 0) n_shards = default_shard_count();
  shards_.resize(n_shards);
}

std::size_t ShardedReferenceSet::default_shard_count() {
  if (const std::size_t configured = util::Env::shards(); configured > 0) return configured;
  return util::global_pool().size();
}

void ShardedReferenceSet::add(std::span<const float> embedding, int label) {
  if (embedding.size() != dim_)
    throw std::invalid_argument("ShardedReferenceSet::add: embedding width mismatch");
  if (shards_.empty()) shards_.resize(1);
  Shard& shard = shards_[next_row_id_ % shards_.size()];
  shard.data.insert(shard.data.end(), embedding.begin(), embedding.end());
  shard.labels.push_back(label);
  double norm = 0.0;
  for (const float v : embedding) norm += static_cast<double>(v) * v;
  shard.sq_norms.push_back(norm);
  const auto [it, inserted] =
      label_to_id_.try_emplace(label, static_cast<int>(id_to_label_.size()));
  if (inserted) id_to_label_.push_back(label);
  shard.class_ids.push_back(it->second);
  shard.row_ids.push_back(next_row_id_++);
  ++size_;
}

void ShardedReferenceSet::add_all(const nn::Matrix& embeddings, const std::vector<int>& labels) {
  if (embeddings.rows() != labels.size())
    throw std::invalid_argument("ShardedReferenceSet::add_all: rows != labels");
  for (std::size_t i = 0; i < embeddings.rows(); ++i) add(embeddings.row_span(i), labels[i]);
}

void ShardedReferenceSet::remove_class(int label) {
  for (Shard& shard : shards_) {
    std::size_t write = 0;
    for (std::size_t read = 0; read < shard.labels.size(); ++read) {
      if (shard.labels[read] == label) continue;
      if (write != read) {
        std::copy(shard.data.begin() + static_cast<std::ptrdiff_t>(read * dim_),
                  shard.data.begin() + static_cast<std::ptrdiff_t>((read + 1) * dim_),
                  shard.data.begin() + static_cast<std::ptrdiff_t>(write * dim_));
        shard.labels[write] = shard.labels[read];
        shard.sq_norms[write] = shard.sq_norms[read];
        shard.row_ids[write] = shard.row_ids[read];
      }
      ++write;
    }
    shard.labels.resize(write);
    shard.data.resize(write * dim_);
    shard.sq_norms.resize(write);
    shard.class_ids.resize(write);
    shard.row_ids.resize(write);
  }
  rebuild_class_ids();
}

void ShardedReferenceSet::rebuild_class_ids() {
  label_to_id_.clear();
  id_to_label_.clear();
  size_ = 0;
  for (Shard& shard : shards_) {
    size_ += shard.labels.size();
    for (std::size_t i = 0; i < shard.labels.size(); ++i) {
      const auto [it, inserted] =
          label_to_id_.try_emplace(shard.labels[i], static_cast<int>(id_to_label_.size()));
      if (inserted) id_to_label_.push_back(shard.labels[i]);
      shard.class_ids[i] = it->second;
    }
  }
}

ShardedReferenceSet::ShardTables ShardedReferenceSet::shard_tables(std::size_t shard) const {
  const Shard& s = shards_[shard];
  return {s.data, s.labels, s.sq_norms, s.class_ids, s.row_ids};
}

ShardedReferenceSet ShardedReferenceSet::restore(std::size_t dim, std::uint64_t next_row_id,
                                                 std::vector<int> id_to_label,
                                                 std::vector<ShardTables> shards) {
  if (shards.empty()) throw std::invalid_argument("ShardedReferenceSet::restore: no shards");
  ShardedReferenceSet out(dim, shards.size());
  out.next_row_id_ = next_row_id;
  out.id_to_label_ = std::move(id_to_label);
  for (std::size_t id = 0; id < out.id_to_label_.size(); ++id)
    out.label_to_id_.emplace(out.id_to_label_[id], static_cast<int>(id));
  for (std::size_t si = 0; si < shards.size(); ++si) {
    ShardTables& t = shards[si];
    const std::size_t rows = t.labels.size();
    // Overflow-safe rows x dim check: divide instead of multiplying.
    const bool data_consistent =
        rows == 0 ? t.data.empty()
                  : (dim != 0 && t.data.size() / dim == rows && t.data.size() % dim == 0);
    if (!data_consistent || t.sq_norms.size() != rows || t.class_ids.size() != rows ||
        t.row_ids.size() != rows)
      throw std::invalid_argument("ShardedReferenceSet::restore: inconsistent shard tables");
    for (std::size_t i = 0; i < rows; ++i) {
      if (t.class_ids[i] < 0 ||
          static_cast<std::size_t>(t.class_ids[i]) >= out.id_to_label_.size() ||
          out.id_to_label_[static_cast<std::size_t>(t.class_ids[i])] != t.labels[i] ||
          t.row_ids[i] >= next_row_id)
        throw std::invalid_argument("ShardedReferenceSet::restore: corrupt id tables");
    }
    Shard& s = out.shards_[si];
    s.data = std::move(t.data);
    s.labels = std::move(t.labels);
    s.sq_norms = std::move(t.sq_norms);
    s.class_ids = std::move(t.class_ids);
    s.row_ids = std::move(t.row_ids);
    out.size_ += rows;
  }
  return out;
}

ShardView ShardedReferenceSet::shard_view(std::size_t shard) const {
  WF_CHECK(shard < shards_.size(), "shard_view: shard index out of range");
  const Shard& s = shards_[shard];
  return {s.data.data(), s.sq_norms.data(), s.class_ids.data(), s.row_ids.data(),
          s.labels.size()};
}

std::vector<int> ShardedReferenceSet::classes() const {
  std::vector<int> out = id_to_label_;
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace wf::core
