#include "core/embedding.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stopwatch.hpp"

namespace wf::core {

namespace {

// Normalize in place; returns the pre-normalization norm.
double normalize(std::vector<float>& v) {
  double norm = 0.0;
  for (const float x : v) norm += static_cast<double>(x) * x;
  norm = std::sqrt(norm);
  const double inv = norm > 1e-12 ? 1.0 / norm : 0.0;
  for (float& x : v) x = static_cast<float>(x * inv);
  return norm;
}

// Backprop through y = r / ||r||: given dL/dy, produce dL/dr.
std::vector<float> normalization_grad(const std::vector<float>& y, double raw_norm,
                                      const std::vector<float>& grad_y) {
  double dot = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) dot += static_cast<double>(grad_y[i]) * y[i];
  std::vector<float> grad_r(y.size());
  const double inv = raw_norm > 1e-12 ? 1.0 / raw_norm : 0.0;
  for (std::size_t i = 0; i < y.size(); ++i)
    grad_r[i] = static_cast<float>((grad_y[i] - dot * y[i]) * inv);
  return grad_r;
}

struct EmbeddedSample {
  nn::Mlp::Activations acts;
  std::vector<float> y;   // normalized embedding
  double raw_norm = 0.0;
};

}  // namespace

EmbeddingModel::EmbeddingModel(const EmbeddingConfig& config) : config_(config) {
  std::vector<std::size_t> sizes;
  sizes.push_back(config_.input_dim());
  for (const std::size_t h : config_.hidden) sizes.push_back(h);
  sizes.push_back(config_.embedding_dim);
  net_ = nn::Mlp(sizes, config_.seed);
}

std::vector<float> EmbeddingModel::embed(std::span<const float> features) const {
  if (features.size() != net_.input_dim())
    throw std::invalid_argument("EmbeddingModel::embed: feature width mismatch");
  std::vector<float> out = net_.forward(features);
  normalize(out);
  return out;
}

nn::Matrix EmbeddingModel::embed(const nn::Matrix& batch) const {
  nn::Matrix out(batch.rows(), config_.embedding_dim);
  for (std::size_t r = 0; r < batch.rows(); ++r) out.set_row(r, embed(batch.row_span(r)));
  return out;
}

nn::Matrix EmbeddingModel::embed_dataset(const data::Dataset& dataset) const {
  nn::Matrix out(dataset.size(), config_.embedding_dim);
  for (std::size_t i = 0; i < dataset.size(); ++i) out.set_row(i, embed(dataset[i].features));
  return out;
}

void EmbeddingModel::train_contrastive_pair(std::span<const float> xa, std::span<const float> xb,
                                            bool positive, double& loss_acc,
                                            double& correct_acc) {
  EmbeddedSample a, b;
  a.y = net_.forward_cached(xa, a.acts);
  a.raw_norm = normalize(a.y);
  b.y = net_.forward_cached(xb, b.acts);
  b.raw_norm = normalize(b.y);

  const std::size_t m = a.y.size();
  std::vector<float> diff(m);
  double d2 = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    diff[i] = a.y[i] - b.y[i];
    d2 += static_cast<double>(diff[i]) * diff[i];
  }
  const double d = std::sqrt(d2);
  const double margin = config_.margin;

  // Margin-threshold pair prediction for the pair-accuracy statistic.
  const bool predicted_positive = d < margin * 0.5;
  if (predicted_positive == positive) correct_acc += 1.0;

  std::vector<float> ga(m, 0.0f), gb(m, 0.0f);
  if (positive) {
    loss_acc += d2;
    for (std::size_t i = 0; i < m; ++i) {
      ga[i] = 2.0f * diff[i];
      gb[i] = -2.0f * diff[i];
    }
  } else {
    if (d < margin) {
      const double gap = margin - d;
      loss_acc += gap * gap;
      const double scale = d > 1e-9 ? -2.0 * gap / d : 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        ga[i] = static_cast<float>(scale * diff[i]);
        gb[i] = static_cast<float>(-scale * diff[i]);
      }
    }
  }
  net_.backward(xa, a.acts, normalization_grad(a.y, a.raw_norm, ga));
  net_.backward(xb, b.acts, normalization_grad(b.y, b.raw_norm, gb));
}

void EmbeddingModel::train_triplet(std::span<const float> xa, std::span<const float> xp,
                                   std::span<const float> xn, double& loss_acc,
                                   double& correct_acc) {
  EmbeddedSample a, p, n;
  a.y = net_.forward_cached(xa, a.acts);
  a.raw_norm = normalize(a.y);
  p.y = net_.forward_cached(xp, p.acts);
  p.raw_norm = normalize(p.y);
  n.y = net_.forward_cached(xn, n.acts);
  n.raw_norm = normalize(n.y);

  const std::size_t m = a.y.size();
  double d_ap = 0.0, d_an = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double ap = static_cast<double>(a.y[i]) - p.y[i];
    const double an = static_cast<double>(a.y[i]) - n.y[i];
    d_ap += ap * ap;
    d_an += an * an;
  }
  if (d_ap < d_an) correct_acc += 1.0;
  const double loss = d_ap - d_an + config_.margin;
  if (loss <= 0.0) return;
  loss_acc += loss;

  std::vector<float> ga(m), gp(m), gn(m);
  for (std::size_t i = 0; i < m; ++i) {
    ga[i] = 2.0f * (n.y[i] - p.y[i]);
    gp[i] = 2.0f * (p.y[i] - a.y[i]);
    gn[i] = 2.0f * (a.y[i] - n.y[i]);
  }
  net_.backward(xa, a.acts, normalization_grad(a.y, a.raw_norm, ga));
  net_.backward(xp, p.acts, normalization_grad(p.y, p.raw_norm, gp));
  net_.backward(xn, n.acts, normalization_grad(n.y, n.raw_norm, gn));
}

TrainStats EmbeddingModel::train(data::PairGenerator& pairs) {
  if (pairs.dataset().feature_dim() != config_.input_dim())
    throw std::invalid_argument("EmbeddingModel::train: dataset width != config input_dim");
  util::Stopwatch watch;
  TrainStats stats;
  stats.iterations = config_.train_iterations;

  // Loss/accuracy reported over the trailing window of training.
  const int window = std::max(1, config_.train_iterations / 5);
  double window_loss = 0.0, window_correct = 0.0;
  long window_items = 0;

  const data::Dataset& dataset = pairs.dataset();
  for (int step = 0; step < config_.train_iterations; ++step) {
    const bool in_window = step >= config_.train_iterations - window;
    double loss = 0.0, correct = 0.0;
    for (int b = 0; b < config_.batch_pairs; ++b) {
      if (config_.objective == Objective::kContrastive) {
        const data::SamplePair pair = pairs.next();
        train_contrastive_pair(dataset[pair.a].features, dataset[pair.b].features,
                               pair.positive, loss, correct);
      } else {
        const data::SampleTriplet t = pairs.next_triplet();
        train_triplet(dataset[t.anchor].features, dataset[t.positive].features,
                      dataset[t.negative].features, loss, correct);
      }
    }
    net_.adam_step(config_.learning_rate);
    if (in_window) {
      window_loss += loss;
      window_correct += correct;
      window_items += config_.batch_pairs;
    }
  }
  if (window_items > 0) {
    stats.final_loss = window_loss / static_cast<double>(window_items);
    stats.pair_accuracy = window_correct / static_cast<double>(window_items);
  }
  stats.seconds = watch.seconds();
  return stats;
}

}  // namespace wf::core
