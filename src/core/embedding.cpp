#include "core/embedding.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace wf::core {

namespace {

// Normalize in place; returns the pre-normalization norm.
double normalize(std::span<float> v) {
  double norm = 0.0;
  for (const float x : v) norm += static_cast<double>(x) * x;
  norm = std::sqrt(norm);
  const double inv = norm > 1e-12 ? 1.0 / norm : 0.0;
  for (float& x : v) x = static_cast<float>(x * inv);
  return norm;
}

// Backprop through y = r / ||r||: given dL/dy, write dL/dr into grad_r.
void normalization_grad(std::span<const float> y, double raw_norm,
                        std::span<const float> grad_y, std::span<float> grad_r) {
  double dot = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) dot += static_cast<double>(grad_y[i]) * y[i];
  const double inv = raw_norm > 1e-12 ? 1.0 / raw_norm : 0.0;
  for (std::size_t i = 0; i < y.size(); ++i)
    grad_r[i] = static_cast<float>((grad_y[i] - dot * y[i]) * inv);
}

}  // namespace

EmbeddingModel::EmbeddingModel(const EmbeddingConfig& config) : config_(config) {
  std::vector<std::size_t> sizes;
  sizes.push_back(config_.input_dim());
  for (const std::size_t h : config_.hidden) sizes.push_back(h);
  sizes.push_back(config_.embedding_dim);
  net_ = nn::Mlp(sizes, config_.seed);
}

std::vector<float> EmbeddingModel::embed(std::span<const float> features) const {
  if (features.size() != net_.input_dim())
    throw std::invalid_argument("EmbeddingModel::embed: feature width mismatch");
  std::vector<float> out = net_.forward(features);
  normalize(out);
  return out;
}

nn::Matrix EmbeddingModel::embed(const nn::Matrix& batch) const {
  const obs::Span span("embed");
  nn::Matrix out = net_.forward_batch(batch);
  util::global_pool().parallel_blocks(0, out.rows(), 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) normalize(out.row(r));
  });
  return out;
}

nn::Matrix EmbeddingModel::embed_dataset(const data::Dataset& dataset) const {
  return embed(dataset.to_matrix());
}

void EmbeddingModel::train_step_contrastive(const nn::Matrix& x, double& loss_acc,
                                            double& correct_acc) {
  const std::size_t rows = x.rows();          // 2 per pair: (a0, b0, a1, b1, ...)
  const std::size_t m = net_.output_dim();
  nn::Matrix& y = train_y_;
  nn::Matrix& grad_y = train_grad_y_;
  std::vector<double>& raw_norms = train_raw_norms_;
  y = net_.forward_batch_cached(x, train_acts_);
  raw_norms.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) raw_norms[r] = normalize(y.row(r));

  grad_y.resize(rows, m);  // zeroed; pairs without loss contribute nothing
  const double margin = config_.margin;
  for (std::size_t p = 0; p + 1 < rows; p += 2) {
    const float* ya = y.data() + p * m;
    const float* yb = y.data() + (p + 1) * m;
    float* ga = grad_y.data() + p * m;
    float* gb = grad_y.data() + (p + 1) * m;
    double d2 = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double diff = static_cast<double>(ya[i]) - yb[i];
      d2 += diff * diff;
    }
    const double d = std::sqrt(d2);
    const bool positive = pair_positive_[p / 2] != 0;

    // Margin-threshold pair prediction for the pair-accuracy statistic.
    const bool predicted_positive = d < margin * 0.5;
    if (predicted_positive == positive) correct_acc += 1.0;

    if (positive) {
      loss_acc += d2;
      for (std::size_t i = 0; i < m; ++i) {
        const float diff = ya[i] - yb[i];
        ga[i] = 2.0f * diff;
        gb[i] = -2.0f * diff;
      }
    } else if (d < margin) {
      const double gap = margin - d;
      loss_acc += gap * gap;
      const double scale = d > 1e-9 ? -2.0 * gap / d : 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        const float diff = ya[i] - yb[i];
        ga[i] = static_cast<float>(scale * diff);
        gb[i] = static_cast<float>(-scale * diff);
      }
    }
  }

  // Chain through the normalization row by row, then one batched backward.
  train_grad_raw_.resize(rows, m);
  for (std::size_t r = 0; r < rows; ++r)
    normalization_grad(y.row_span(r), raw_norms[r], grad_y.row_span(r), train_grad_raw_.row(r));
  net_.backward_batch(x, train_acts_, train_grad_raw_);
}

void EmbeddingModel::train_step_triplet(const nn::Matrix& x, double& loss_acc,
                                        double& correct_acc) {
  const std::size_t rows = x.rows();  // 3 per triplet: (a0, p0, n0, a1, ...)
  const std::size_t m = net_.output_dim();
  nn::Matrix& y = train_y_;
  nn::Matrix& grad_y = train_grad_y_;
  std::vector<double>& raw_norms = train_raw_norms_;
  y = net_.forward_batch_cached(x, train_acts_);
  raw_norms.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) raw_norms[r] = normalize(y.row(r));

  grad_y.resize(rows, m);
  for (std::size_t t = 0; t + 2 < rows; t += 3) {
    const float* ya = y.data() + t * m;
    const float* yp = y.data() + (t + 1) * m;
    const float* yn = y.data() + (t + 2) * m;
    double d_ap = 0.0, d_an = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double ap = static_cast<double>(ya[i]) - yp[i];
      const double an = static_cast<double>(ya[i]) - yn[i];
      d_ap += ap * ap;
      d_an += an * an;
    }
    if (d_ap < d_an) correct_acc += 1.0;
    const double loss = d_ap - d_an + config_.margin;
    if (loss <= 0.0) continue;
    loss_acc += loss;
    float* ga = grad_y.data() + t * m;
    float* gp = grad_y.data() + (t + 1) * m;
    float* gn = grad_y.data() + (t + 2) * m;
    for (std::size_t i = 0; i < m; ++i) {
      ga[i] = 2.0f * (yn[i] - yp[i]);
      gp[i] = 2.0f * (yp[i] - ya[i]);
      gn[i] = 2.0f * (ya[i] - yn[i]);
    }
  }

  train_grad_raw_.resize(rows, m);
  for (std::size_t r = 0; r < rows; ++r)
    normalization_grad(y.row_span(r), raw_norms[r], grad_y.row_span(r), train_grad_raw_.row(r));
  net_.backward_batch(x, train_acts_, train_grad_raw_);
}

TrainStats EmbeddingModel::train(data::PairGenerator& pairs) {
  if (pairs.dataset().feature_dim() != config_.input_dim())
    throw std::invalid_argument("EmbeddingModel::train: dataset width != config input_dim");
  const obs::Span span("train");
  util::Stopwatch watch;
  TrainStats stats;
  stats.iterations = config_.train_iterations;

  // Loss/accuracy reported over the trailing window of training.
  const int window = std::max(1, config_.train_iterations / 5);
  double window_loss = 0.0, window_correct = 0.0;
  long window_items = 0;

  const data::Dataset& dataset = pairs.dataset();
  const std::size_t group = config_.objective == Objective::kContrastive ? 2 : 3;
  nn::Matrix batch(static_cast<std::size_t>(config_.batch_pairs) * group,
                   dataset.feature_dim());
  pair_positive_.assign(static_cast<std::size_t>(config_.batch_pairs), 0);

  for (int step = 0; step < config_.train_iterations; ++step) {
    const bool in_window = step >= config_.train_iterations - window;
    double loss = 0.0, correct = 0.0;
    // Draw the step's samples in generator order, then run the whole batch
    // through one GEMM per layer (forward and backward).
    for (int b = 0; b < config_.batch_pairs; ++b) {
      const std::size_t row = static_cast<std::size_t>(b) * group;
      if (config_.objective == Objective::kContrastive) {
        const data::SamplePair pair = pairs.next();
        batch.set_row(row, dataset[pair.a].features);
        batch.set_row(row + 1, dataset[pair.b].features);
        pair_positive_[static_cast<std::size_t>(b)] = pair.positive ? 1 : 0;
      } else {
        const data::SampleTriplet t = pairs.next_triplet();
        batch.set_row(row, dataset[t.anchor].features);
        batch.set_row(row + 1, dataset[t.positive].features);
        batch.set_row(row + 2, dataset[t.negative].features);
      }
    }
    if (config_.objective == Objective::kContrastive)
      train_step_contrastive(batch, loss, correct);
    else
      train_step_triplet(batch, loss, correct);
    net_.adam_step(config_.learning_rate);
    if (in_window) {
      window_loss += loss;
      window_correct += correct;
      window_items += config_.batch_pairs;
    }
  }
  if (window_items > 0) {
    stats.final_loss = window_loss / static_cast<double>(window_items);
    stats.pair_accuracy = window_correct / static_cast<double>(window_items);
  }
  stats.seconds = watch.seconds();
  return stats;
}

}  // namespace wf::core
