#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/env.hpp"

namespace wf::obs {

namespace {

// One ring per thread that ever opened a span. `depth` is touched only by
// the owning thread; the ring slots are shared with readers under `mutex`.
struct SpanRing {
  std::uint64_t thread_ordinal = 0;
  std::uint32_t depth = 0;

  std::mutex mutex;
  std::vector<SpanRecord> slots;  // grows to kSpanRingCapacity, then wraps
  std::uint64_t next_sequence = 0;

  void push(SpanRecord record) {
    const std::lock_guard<std::mutex> lock(mutex);
    record.sequence = next_sequence++;
    if (slots.size() < kSpanRingCapacity) {
      slots.push_back(std::move(record));
    } else {
      slots[record.sequence % kSpanRingCapacity] = std::move(record);
    }
  }
};

// Rings outlive their threads (a thread may exit while a snapshot reader
// is walking the directory), so the directory owns them for process life.
struct RingDirectory {
  std::mutex mutex;
  std::vector<std::unique_ptr<SpanRing>> rings;
};

RingDirectory& directory() {
  static RingDirectory instance;
  return instance;
}

SpanRing& local_ring() {
  thread_local SpanRing* ring = [] {
    auto owned = std::make_unique<SpanRing>();
    SpanRing* raw = owned.get();
    RingDirectory& dir = directory();
    const std::lock_guard<std::mutex> lock(dir.mutex);
    raw->thread_ordinal = dir.rings.size();
    dir.rings.push_back(std::move(owned));
    return raw;
  }();
  return *ring;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{util::Env::obs()};
  return flag;
}

std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::uint64_t us_since_epoch(std::chrono::steady_clock::time_point t) {
  const auto delta = t - process_epoch();
  if (delta < std::chrono::steady_clock::duration::zero()) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(delta).count());
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

Span::Span(const char* name) {
  if (!enabled()) return;
  active_ = true;
  name_ = name;
  SpanRing& ring = local_ring();
  depth_ = ring.depth++;
  histogram_ = &Registry::global().histogram(std::string("span.") + name);
  process_epoch();  // pin the epoch no later than the first span
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  const std::chrono::steady_clock::time_point end = std::chrono::steady_clock::now();
  SpanRing& ring = local_ring();
  --ring.depth;
  const double millis = std::chrono::duration<double, std::milli>(end - start_).count();
  histogram_->record(millis);
  SpanRecord record;
  record.name = name_;
  record.depth = depth_;
  record.thread = ring.thread_ordinal;
  record.start_us = us_since_epoch(start_);
  record.duration_us = us_since_epoch(end) - record.start_us;
  ring.push(std::move(record));
}

std::vector<SpanRecord> recent_spans() {
  std::vector<SpanRecord> merged;
  RingDirectory& dir = directory();
  const std::lock_guard<std::mutex> dir_lock(dir.mutex);
  for (const std::unique_ptr<SpanRing>& ring : dir.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    merged.insert(merged.end(), ring->slots.begin(), ring->slots.end());
  }
  std::sort(merged.begin(), merged.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.thread != b.thread) return a.thread < b.thread;
    return a.sequence < b.sequence;
  });
  return merged;
}

void clear_spans() {
  RingDirectory& dir = directory();
  const std::lock_guard<std::mutex> dir_lock(dir.mutex);
  for (const std::unique_ptr<SpanRing>& ring : dir.rings) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->slots.clear();
    ring->next_sequence = 0;
  }
}

}  // namespace wf::obs
