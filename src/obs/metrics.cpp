#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/bench_report.hpp"

namespace wf::obs {

namespace {

// First bucket whose upper bound contains `value`; kBucketCount = overflow.
std::size_t bucket_index(double value) {
  const std::vector<double>& bounds = Histogram::bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), value);
  return static_cast<std::size_t>(it - bounds.begin());
}

// The exact formula the ad-hoc eval percentile helpers used; keeping it
// byte-identical is what lets exp_serve/exp_robust port without CSV drift.
double exact_quantile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(samples.size() - 1));
  return samples[rank];
}

}  // namespace

Histogram::Histogram() : buckets_(kBucketCount + 1, 0) { samples_.reserve(64); }

const std::vector<double>& Histogram::bounds() {
  static const std::vector<double> table = [] {
    std::vector<double> b(kBucketCount);
    double bound = kBase;
    for (std::size_t i = 0; i < kBucketCount; ++i, bound *= 2.0) b[i] = bound;
    return b;
  }();
  return table;
}

void Histogram::record(double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_index(value)];
  if (samples_.size() < kSampleCapacity) samples_.push_back(value);
}

std::uint64_t Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

bool Histogram::exact() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_ == samples_.size();
}

double Histogram::quantile(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  if (count_ == samples_.size()) return exact_quantile(samples_, p);
  // Degraded path: locate the bucket holding the target rank and answer
  // with its upper bound (the overflow bucket answers with the true max).
  const auto rank = static_cast<std::uint64_t>(p * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > rank) return i < kBucketCount ? bounds()[i] : max_;
  }
  return max_;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return buckets_;
}

void Histogram::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
  samples_.clear();
}

const char* instrument_kind_name(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::counter:
      return "counter";
    case InstrumentKind::gauge:
      return "gauge";
    case InstrumentKind::histogram:
      return "histogram";
  }
  return "unknown";
}

const SnapshotEntry* Snapshot::find(const std::string& name) const {
  for (const SnapshotEntry& entry : entries)
    if (entry.name == name) return &entry;
  return nullptr;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Instrument& slot = instruments_[name];
  if (slot.counter == nullptr) {
    if (slot.gauge != nullptr || slot.histogram != nullptr)
      throw std::logic_error("obs: instrument '" + name + "' already registered as " +
                             instrument_kind_name(slot.kind));
    slot.kind = InstrumentKind::counter;
    slot.counter = std::make_unique<Counter>();
  }
  return *slot.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Instrument& slot = instruments_[name];
  if (slot.gauge == nullptr) {
    if (slot.counter != nullptr || slot.histogram != nullptr)
      throw std::logic_error("obs: instrument '" + name + "' already registered as " +
                             instrument_kind_name(slot.kind));
    slot.kind = InstrumentKind::gauge;
    slot.gauge = std::make_unique<Gauge>();
  }
  return *slot.gauge;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Instrument& slot = instruments_[name];
  if (slot.histogram == nullptr) {
    if (slot.counter != nullptr || slot.gauge != nullptr)
      throw std::logic_error("obs: instrument '" + name + "' already registered as " +
                             instrument_kind_name(slot.kind));
    slot.kind = InstrumentKind::histogram;
    slot.histogram = std::make_unique<Histogram>();
  }
  return *slot.histogram;
}

Snapshot Registry::snapshot() const {
  Snapshot snapshot;
  const std::lock_guard<std::mutex> lock(mutex_);
  snapshot.entries.reserve(instruments_.size());
  for (const auto& [name, instrument] : instruments_) {  // std::map: sorted names
    SnapshotEntry entry;
    entry.name = name;
    entry.kind = instrument.kind;
    switch (instrument.kind) {
      case InstrumentKind::counter:
        entry.count = instrument.counter->value();
        break;
      case InstrumentKind::gauge:
        entry.value = static_cast<double>(instrument.gauge->value());
        break;
      case InstrumentKind::histogram: {
        const Histogram& h = *instrument.histogram;
        entry.count = h.count();
        entry.sum = h.sum();
        entry.min = h.min();
        entry.max = h.max();
        entry.p50 = h.quantile(0.50);
        entry.p90 = h.quantile(0.90);
        entry.p99 = h.quantile(0.99);
        entry.bounds = Histogram::bounds();
        entry.buckets = h.bucket_counts();
        break;
      }
    }
    snapshot.entries.push_back(std::move(entry));
  }
  return snapshot;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, instrument] : instruments_) {
    (void)name;
    if (instrument.counter) instrument.counter->reset();
    if (instrument.gauge) instrument.gauge->reset();
    if (instrument.histogram) instrument.histogram->reset();
  }
}

util::Table snapshot_table(const Snapshot& snapshot) {
  util::Table table(
      {"Instrument", "Kind", "Value", "Count", "Sum", "Min", "Max", "p50", "p90", "p99"});
  for (const SnapshotEntry& entry : snapshot.entries) {
    std::string value;
    switch (entry.kind) {
      case InstrumentKind::counter:
        value = std::to_string(entry.count);
        break;
      case InstrumentKind::gauge:
        value = util::Table::num(entry.value, 0);
        break;
      case InstrumentKind::histogram:
        value = std::to_string(entry.count);
        break;
    }
    const bool hist = entry.kind == InstrumentKind::histogram;
    table.add_row({entry.name, instrument_kind_name(entry.kind), value,
                   std::to_string(entry.count), hist ? util::Table::num(entry.sum, 3) : "",
                   hist ? util::Table::num(entry.min, 3) : "",
                   hist ? util::Table::num(entry.max, 3) : "",
                   hist ? util::Table::num(entry.p50, 3) : "",
                   hist ? util::Table::num(entry.p90, 3) : "",
                   hist ? util::Table::num(entry.p99, 3) : ""});
  }
  return table;
}

void snapshot_report(const Snapshot& snapshot, util::BenchReport& report) {
  for (const SnapshotEntry& entry : snapshot.entries) {
    switch (entry.kind) {
      case InstrumentKind::counter:
        report.metric(entry.name, static_cast<double>(entry.count));
        break;
      case InstrumentKind::gauge:
        report.metric(entry.name, entry.value);
        break;
      case InstrumentKind::histogram:
        report.metric(entry.name + ".count", static_cast<double>(entry.count));
        report.metric(entry.name + ".sum", entry.sum);
        report.metric(entry.name + ".p50", entry.p50);
        report.metric(entry.name + ".p90", entry.p90);
        report.metric(entry.name + ".p99", entry.p99);
        break;
    }
  }
}

}  // namespace wf::obs
