#include "nn/simd.hpp"

#include <atomic>

#include "util/env.hpp"
#include "util/log.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define WF_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
#define WF_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace wf::nn {

namespace {

// The scalar reference kernel: eight independent accumulator lanes, mul
// then add, reduced pairwise. Every vector kernel below replays exactly
// this operation sequence (lane l holds the same partial sums), so all
// modes return bit-identical floats. Keep the three implementations in
// lockstep — a change to one is a change to all.
float dot_scalar(const float* a, const float* b, std::size_t k) {
  float acc[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  const std::size_t k8 = k & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < k8; i += 8)
    for (std::size_t l = 0; l < 8; ++l) acc[l] += a[i + l] * b[i + l];
  float tail = 0.0f;
  for (std::size_t i = k8; i < k; ++i) tail += a[i] * b[i];
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) +
         tail;
}

#ifdef WF_SIMD_HAVE_AVX2
// One 8-float register = the scalar kernel's eight lanes. Separate multiply
// and add (no FMA: target("avx2") does not enable it, and a fused step
// would change the rounding and break bit-identity with scalar).
__attribute__((target("avx2"))) float dot_avx2(const float* a, const float* b, std::size_t k) {
  __m256 acc = _mm256_setzero_ps();
  const std::size_t k8 = k & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < k8; i += 8)
    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  alignas(32) float lane[8];
  _mm256_store_ps(lane, acc);
  float tail = 0.0f;
  for (std::size_t i = k8; i < k; ++i) tail += a[i] * b[i];
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7])) + tail;
}
#endif

#ifdef WF_SIMD_HAVE_NEON
// Two 4-float registers = lanes 0-3 and 4-7. vmulq + vaddq, not vmlaq: the
// fused multiply-add would change the rounding vs the scalar kernel.
float dot_neon(const float* a, const float* b, std::size_t k) {
  float32x4_t lo = vdupq_n_f32(0.0f);
  float32x4_t hi = vdupq_n_f32(0.0f);
  const std::size_t k8 = k & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < k8; i += 8) {
    lo = vaddq_f32(lo, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    hi = vaddq_f32(hi, vmulq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4)));
  }
  float lane[8];
  vst1q_f32(lane, lo);
  vst1q_f32(lane + 4, hi);
  float tail = 0.0f;
  for (std::size_t i = k8; i < k; ++i) tail += a[i] * b[i];
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7])) + tail;
}
#endif

SimdMode resolve_mode() {
  const std::string requested = util::Env::simd();
  if (requested == "scalar") return SimdMode::kScalar;
  if (requested == "avx2" || requested == "neon") {
    const SimdMode mode = requested == "avx2" ? SimdMode::kAvx2 : SimdMode::kNeon;
    if (simd_supported(mode)) return mode;
    util::log_warn() << "WF_SIMD=" << requested
                     << " is not supported on this machine; falling back to scalar";
    return SimdMode::kScalar;
  }
  if (requested != "auto")
    util::log_warn() << "WF_SIMD=\"" << requested << "\" is not a known mode; using auto";
  if (simd_supported(SimdMode::kAvx2)) return SimdMode::kAvx2;
  if (simd_supported(SimdMode::kNeon)) return SimdMode::kNeon;
  return SimdMode::kScalar;
}

std::atomic<int>& cached_mode() {
  static std::atomic<int> mode{-1};
  return mode;
}

}  // namespace

const char* simd_mode_name(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAvx2:
      return "avx2";
    case SimdMode::kNeon:
      return "neon";
    case SimdMode::kScalar:
      break;
  }
  return "scalar";
}

bool simd_supported(SimdMode mode) {
  switch (mode) {
    case SimdMode::kScalar:
      return true;
    case SimdMode::kAvx2:
#ifdef WF_SIMD_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdMode::kNeon:
#ifdef WF_SIMD_HAVE_NEON
      return true;  // NEON is baseline on every AArch64 CPU
#else
      return false;
#endif
  }
  return false;
}

std::vector<SimdMode> supported_simd_modes() {
  std::vector<SimdMode> modes{SimdMode::kScalar};
  if (simd_supported(SimdMode::kAvx2)) modes.push_back(SimdMode::kAvx2);
  if (simd_supported(SimdMode::kNeon)) modes.push_back(SimdMode::kNeon);
  return modes;
}

SimdMode simd_mode() {
  int mode = cached_mode().load(std::memory_order_acquire);
  if (mode < 0) {
    mode = static_cast<int>(resolve_mode());
    cached_mode().store(mode, std::memory_order_release);
  }
  return static_cast<SimdMode>(mode);
}

bool set_simd_mode(SimdMode mode) {
  if (!simd_supported(mode)) return false;
  cached_mode().store(static_cast<int>(mode), std::memory_order_release);
  return true;
}

float simd_dot(const float* a, const float* b, std::size_t k) {
  return detail::active_dot_kernel()(a, b, k);
}

namespace detail {

DotFn dot_kernel(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAvx2:
#ifdef WF_SIMD_HAVE_AVX2
      return &dot_avx2;
#else
      break;
#endif
    case SimdMode::kNeon:
#ifdef WF_SIMD_HAVE_NEON
      return &dot_neon;
#else
      break;
#endif
    case SimdMode::kScalar:
      break;
  }
  return &dot_scalar;
}

DotFn active_dot_kernel() { return dot_kernel(simd_mode()); }

}  // namespace detail

}  // namespace wf::nn
