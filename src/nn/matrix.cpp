#include "nn/matrix.hpp"

#include <stdexcept>

#include "nn/simd.hpp"
#include "util/thread_pool.hpp"

namespace wf::nn {

namespace {

// The dot product behind every GEMM here lives in nn/simd.cpp: the scalar
// kernel fixes the float summation order (eight independent lanes, pairwise
// reduction) and the AVX2/NEON kernels replay the exact same operation
// sequence, so WF_SIMD changes speed, never bits. Callers hoist the
// dispatched pointer out of their loops via detail::active_dot_kernel().

constexpr std::size_t kRowBlock = 32;   // rows of a per task
constexpr std::size_t kColBlock = 128;  // rows of b kept hot in cache

util::ThreadPool& pool_or_global(util::ThreadPool* pool) {
  return pool != nullptr ? *pool : util::global_pool();
}

}  // namespace

void gemm_nt_serial(const float* a, std::size_t m, const float* b, std::size_t n, std::size_t k,
                    float* dots) {
  const detail::DotFn dot = detail::active_dot_kernel();
  for (std::size_t j0 = 0; j0 < n; j0 += kColBlock) {
    const std::size_t j1 = j0 + kColBlock < n ? j0 + kColBlock : n;
    for (std::size_t i = 0; i < m; ++i) {
      const float* ai = a + i * k;
      float* out = dots + i * n;
      for (std::size_t j = j0; j < j1; ++j) out[j] = dot(ai, b + j * k, k);
    }
  }
}

void matmul_transposed(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate,
                       util::ThreadPool* pool) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (b.cols() != k) throw std::invalid_argument("matmul_transposed: inner dim mismatch");
  if (c.rows() != m || c.cols() != n)
    throw std::invalid_argument("matmul_transposed: output shape mismatch");
  const detail::DotFn dot = detail::active_dot_kernel();
  pool_or_global(pool).parallel_blocks(0, m, kRowBlock, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t j0 = 0; j0 < n; j0 += kColBlock) {
      const std::size_t j1 = j0 + kColBlock < n ? j0 + kColBlock : n;
      for (std::size_t i = lo; i < hi; ++i) {
        const float* ai = a.data() + i * k;
        float* out = c.data() + i * n;
        for (std::size_t j = j0; j < j1; ++j) {
          const float d = dot(ai, b.data() + j * k, k);
          out[j] = accumulate ? out[j] + d : d;
        }
      }
    }
  });
}

Matrix matmul_transposed(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  matmul_transposed(a, b, c);
  return c;
}

void matmul(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate,
            util::ThreadPool* pool) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k) throw std::invalid_argument("matmul: inner dim mismatch");
  if (c.rows() != m || c.cols() != n) throw std::invalid_argument("matmul: output shape mismatch");
  pool_or_global(pool).parallel_blocks(0, m, kRowBlock, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      float* out = c.data() + i * n;
      if (!accumulate)
        for (std::size_t j = 0; j < n; ++j) out[j] = 0.0f;
      const float* ai = a.data() + i * k;
      // axpy over rows of b: unit-stride inner loop, fixed order in l.
      for (std::size_t l = 0; l < k; ++l) {
        const float s = ai[l];
        if (s == 0.0f) continue;
        const float* bl = b.data() + l * n;
        for (std::size_t j = 0; j < n; ++j) out[j] += s * bl[j];
      }
    }
  });
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  matmul(a, b, c);
  return c;
}

void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate,
                 util::ThreadPool* pool) {
  const std::size_t m = a.rows(), r = a.cols(), n = b.cols();
  if (b.rows() != m) throw std::invalid_argument("matmul_at_b: inner dim mismatch");
  if (c.rows() != r || c.cols() != n)
    throw std::invalid_argument("matmul_at_b: output shape mismatch");
  pool_or_global(pool).parallel_blocks(0, r, kRowBlock, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      float* out = c.data() + i * n;
      if (!accumulate)
        for (std::size_t j = 0; j < n; ++j) out[j] = 0.0f;
      // Accumulate sample contributions in sample order: matches the
      // per-sample backward exactly.
      for (std::size_t s = 0; s < m; ++s) {
        const float g = a(s, i);
        if (g == 0.0f) continue;
        const float* bs = b.data() + s * n;
        for (std::size_t j = 0; j < n; ++j) out[j] += g * bs[j];
      }
    }
  });
}

}  // namespace wf::nn
