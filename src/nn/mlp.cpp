#include "nn/mlp.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wf::nn {

Mlp::Mlp(const std::vector<std::size_t>& sizes, std::uint64_t seed) {
  if (sizes.size() < 2) throw std::invalid_argument("Mlp: need at least input and output size");
  util::Rng rng(seed);
  layers_.reserve(sizes.size() - 1);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    const std::size_t in = sizes[l], out = sizes[l + 1];
    layer.w = Matrix(out, in);
    layer.b.assign(out, 0.0f);
    // He initialization for the ReLU stack.
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (std::size_t r = 0; r < out; ++r)
      for (std::size_t c = 0; c < in; ++c)
        layer.w(r, c) = static_cast<float>(rng.normal(0.0, scale));
    layer.gw = Matrix(out, in);
    layer.gb.assign(out, 0.0f);
    layer.mw = Matrix(out, in);
    layer.vw = Matrix(out, in);
    layer.mb.assign(out, 0.0f);
    layer.vb.assign(out, 0.0f);
    layers_.push_back(std::move(layer));
  }
}

std::size_t Mlp::input_dim() const { return layers_.empty() ? 0 : layers_.front().w.cols(); }
std::size_t Mlp::output_dim() const { return layers_.empty() ? 0 : layers_.back().w.rows(); }

std::vector<std::size_t> Mlp::layer_sizes() const {
  std::vector<std::size_t> sizes;
  if (layers_.empty()) return sizes;
  sizes.push_back(layers_.front().w.cols());
  for (const Layer& layer : layers_) sizes.push_back(layer.w.rows());
  return sizes;
}

std::vector<float> Mlp::forward(std::span<const float> x) const {
  Activations scratch;
  return forward_cached(x, scratch);
}

std::vector<float> Mlp::forward_cached(std::span<const float> x, Activations& acts) const {
  acts.post.resize(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const bool last = (l + 1 == layers_.size());
    const std::span<const float> in =
        (l == 0) ? x : std::span<const float>(acts.post[l - 1]);
    std::vector<float>& out = acts.post[l];
    out.resize(layer.w.rows());
    for (std::size_t r = 0; r < layer.w.rows(); ++r) {
      const float* wrow = layer.w.data() + r * layer.w.cols();
      double acc = layer.b[r];
      for (std::size_t c = 0; c < layer.w.cols(); ++c) acc += wrow[c] * in[c];
      const float a = static_cast<float>(acc);
      out[r] = last ? a : (a > 0.0f ? a : 0.0f);
    }
  }
  return acts.post.back();
}

Matrix Mlp::forward_batch(const Matrix& x) const {
  BatchActivations scratch;
  return forward_batch_cached(x, scratch);
}

const Matrix& Mlp::forward_batch_cached(const Matrix& x, BatchActivations& acts) const {
  if (x.cols() != input_dim())
    throw std::invalid_argument("Mlp::forward_batch: input width mismatch");
  acts.post.resize(layers_.size());
  const std::size_t m = x.rows();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const bool last = (l + 1 == layers_.size());
    const Matrix& in = (l == 0) ? x : acts.post[l - 1];
    Matrix& out = acts.post[l];
    const std::size_t width = layer.w.rows();
    if (out.rows() != m || out.cols() != width) out.resize(m, width);
    matmul_transposed(in, layer.w, out);
    // Bias + activation epilogue, row-sharded.
    util::global_pool().parallel_blocks(0, m, 256, [&](std::size_t lo, std::size_t hi) {
      const float* bias = layer.b.data();
      for (std::size_t s = lo; s < hi; ++s) {
        float* row = out.data() + s * width;
        for (std::size_t r = 0; r < width; ++r) {
          const float a = row[r] + bias[r];
          row[r] = last ? a : (a > 0.0f ? a : 0.0f);
        }
      }
    });
  }
  return acts.post.back();
}

void Mlp::backward(std::span<const float> x, const Activations& acts,
                   std::span<const float> grad_output) {
  bwd_grad_.assign(grad_output.begin(), grad_output.end());
  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    const bool last = (li + 1 == layers_.size());
    // ReLU derivative on this layer's post-activation (linear for the head).
    if (!last) {
      const std::vector<float>& post = acts.post[li];
      for (std::size_t r = 0; r < bwd_grad_.size(); ++r)
        if (post[r] <= 0.0f) bwd_grad_[r] = 0.0f;
    }
    const std::span<const float> input =
        (li == 0) ? x : std::span<const float>(acts.post[li - 1]);
    bwd_grad_in_.assign(layer.w.cols(), 0.0f);
    for (std::size_t r = 0; r < layer.w.rows(); ++r) {
      const float g = bwd_grad_[r];
      if (g == 0.0f) continue;
      float* gwrow = layer.gw.data() + r * layer.gw.cols();
      const float* wrow = layer.w.data() + r * layer.w.cols();
      for (std::size_t c = 0; c < layer.w.cols(); ++c) {
        gwrow[c] += g * input[c];
        bwd_grad_in_[c] += g * wrow[c];
      }
      layer.gb[r] += g;
    }
    std::swap(bwd_grad_, bwd_grad_in_);
  }
  ++grad_samples_;
}

void Mlp::backward_batch(const Matrix& x, const BatchActivations& acts,
                         const Matrix& grad_output) {
  const std::size_t m = x.rows();
  if (grad_output.rows() != m || grad_output.cols() != output_dim())
    throw std::invalid_argument("Mlp::backward_batch: grad shape mismatch");
  Matrix grad = grad_output;
  Matrix grad_in;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    const bool last = (li + 1 == layers_.size());
    if (!last) {
      const Matrix& post = acts.post[li];
      util::global_pool().parallel_blocks(0, m, 256, [&](std::size_t lo, std::size_t hi) {
        const std::size_t width = layer.w.rows();
        for (std::size_t s = lo; s < hi; ++s) {
          float* grow = grad.data() + s * width;
          const float* prow = post.data() + s * width;
          for (std::size_t r = 0; r < width; ++r)
            if (prow[r] <= 0.0f) grow[r] = 0.0f;
        }
      });
    }
    const Matrix& input = (li == 0) ? x : acts.post[li - 1];
    // gw += gradᵀ · input; gb += column sums of grad.
    matmul_at_b(grad, input, layer.gw, /*accumulate=*/true);
    for (std::size_t s = 0; s < m; ++s) {
      const float* grow = grad.data() + s * layer.w.rows();
      for (std::size_t r = 0; r < layer.w.rows(); ++r) layer.gb[r] += grow[r];
    }
    if (li > 0) {
      grad_in.resize(m, layer.w.cols());
      matmul(grad, layer.w, grad_in);
      std::swap(grad, grad_in);
    }
  }
  grad_samples_ += static_cast<int>(m);
}

void Mlp::zero_grad() {
  for (Layer& layer : layers_) {
    layer.gw.fill(0.0f);
    layer.gb.assign(layer.gb.size(), 0.0f);
  }
  grad_samples_ = 0;
}

void Mlp::adam_step(double learning_rate) {
  if (grad_samples_ == 0) return;
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  ++adam_t_;
  const double scale = 1.0 / static_cast<double>(grad_samples_);
  const double bias1 = 1.0 - std::pow(kBeta1, adam_t_);
  const double bias2 = 1.0 - std::pow(kBeta2, adam_t_);
  for (Layer& layer : layers_) {
    // Adam moments track the weight shape for the Mlp's whole life; a drift
    // here (e.g. a load() that skipped the moment reset) would silently
    // corrupt training.
    WF_DCHECK(layer.mw.rows() == layer.w.rows() && layer.mw.cols() == layer.w.cols(),
              "adam_step: moment/weight shape drift");
    float* w = layer.w.data();
    float* gw = layer.gw.data();
    float* mw = layer.mw.data();
    float* vw = layer.vw.data();
    const std::size_t n = layer.w.rows() * layer.w.cols();
    for (std::size_t i = 0; i < n; ++i) {
      const double g = gw[i] * scale;
      mw[i] = static_cast<float>(kBeta1 * mw[i] + (1.0 - kBeta1) * g);
      vw[i] = static_cast<float>(kBeta2 * vw[i] + (1.0 - kBeta2) * g * g);
      const double mhat = mw[i] / bias1;
      const double vhat = vw[i] / bias2;
      w[i] -= static_cast<float>(learning_rate * mhat / (std::sqrt(vhat) + kEps));
    }
    for (std::size_t i = 0; i < layer.b.size(); ++i) {
      const double g = layer.gb[i] * scale;
      layer.mb[i] = static_cast<float>(kBeta1 * layer.mb[i] + (1.0 - kBeta1) * g);
      layer.vb[i] = static_cast<float>(kBeta2 * layer.vb[i] + (1.0 - kBeta2) * g * g);
      const double mhat = layer.mb[i] / bias1;
      const double vhat = layer.vb[i] / bias2;
      layer.b[i] -= static_cast<float>(learning_rate * mhat / (std::sqrt(vhat) + kEps));
    }
  }
  zero_grad();
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const Layer& layer : layers_) n += layer.w.rows() * layer.w.cols() + layer.b.size();
  return n;
}

}  // namespace wf::nn
