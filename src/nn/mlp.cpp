#include "nn/mlp.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace wf::nn {

Mlp::Mlp(const std::vector<std::size_t>& sizes, std::uint64_t seed) {
  if (sizes.size() < 2) throw std::invalid_argument("Mlp: need at least input and output size");
  util::Rng rng(seed);
  layers_.reserve(sizes.size() - 1);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    const std::size_t in = sizes[l], out = sizes[l + 1];
    layer.w = Matrix(out, in);
    layer.b.assign(out, 0.0f);
    // He initialization for the ReLU stack.
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (std::size_t r = 0; r < out; ++r)
      for (std::size_t c = 0; c < in; ++c)
        layer.w(r, c) = static_cast<float>(rng.normal(0.0, scale));
    layer.gw = Matrix(out, in);
    layer.gb.assign(out, 0.0f);
    layer.mw = Matrix(out, in);
    layer.vw = Matrix(out, in);
    layer.mb.assign(out, 0.0f);
    layer.vb.assign(out, 0.0f);
    layers_.push_back(std::move(layer));
  }
}

std::size_t Mlp::input_dim() const { return layers_.empty() ? 0 : layers_.front().w.cols(); }
std::size_t Mlp::output_dim() const { return layers_.empty() ? 0 : layers_.back().w.rows(); }

std::vector<float> Mlp::forward(std::span<const float> x) const {
  Activations scratch;
  return forward_cached(x, scratch);
}

std::vector<float> Mlp::forward_cached(std::span<const float> x, Activations& acts) const {
  acts.post.assign(layers_.size(), {});
  std::vector<float> cur(x.begin(), x.end());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const bool last = (l + 1 == layers_.size());
    std::vector<float> next(layer.w.rows(), 0.0f);
    for (std::size_t r = 0; r < layer.w.rows(); ++r) {
      const float* wrow = layer.w.data() + r * layer.w.cols();
      double acc = layer.b[r];
      for (std::size_t c = 0; c < layer.w.cols(); ++c) acc += wrow[c] * cur[c];
      const float a = static_cast<float>(acc);
      next[r] = last ? a : (a > 0.0f ? a : 0.0f);
    }
    acts.post[l] = next;
    cur = std::move(next);
  }
  return cur;
}

void Mlp::backward(std::span<const float> x, const Activations& acts,
                   std::span<const float> grad_output) {
  std::vector<float> grad(grad_output.begin(), grad_output.end());
  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    const bool last = (li + 1 == layers_.size());
    // ReLU derivative on this layer's post-activation (linear for the head).
    if (!last) {
      const std::vector<float>& post = acts.post[li];
      for (std::size_t r = 0; r < grad.size(); ++r)
        if (post[r] <= 0.0f) grad[r] = 0.0f;
    }
    std::vector<float> first_input;
    if (li == 0) first_input.assign(x.begin(), x.end());
    const std::vector<float>& input = (li == 0) ? first_input : acts.post[li - 1];
    std::vector<float> grad_in(layer.w.cols(), 0.0f);
    for (std::size_t r = 0; r < layer.w.rows(); ++r) {
      const float g = grad[r];
      if (g == 0.0f) continue;
      float* gwrow = layer.gw.data() + r * layer.gw.cols();
      const float* wrow = layer.w.data() + r * layer.w.cols();
      for (std::size_t c = 0; c < layer.w.cols(); ++c) {
        gwrow[c] += g * input[c];
        grad_in[c] += g * wrow[c];
      }
      layer.gb[r] += g;
    }
    grad = std::move(grad_in);
  }
  ++grad_samples_;
}

void Mlp::zero_grad() {
  for (Layer& layer : layers_) {
    layer.gw.fill(0.0f);
    layer.gb.assign(layer.gb.size(), 0.0f);
  }
  grad_samples_ = 0;
}

void Mlp::adam_step(double learning_rate) {
  if (grad_samples_ == 0) return;
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  ++adam_t_;
  const double scale = 1.0 / static_cast<double>(grad_samples_);
  const double bias1 = 1.0 - std::pow(kBeta1, adam_t_);
  const double bias2 = 1.0 - std::pow(kBeta2, adam_t_);
  for (Layer& layer : layers_) {
    float* w = layer.w.data();
    float* gw = layer.gw.data();
    float* mw = layer.mw.data();
    float* vw = layer.vw.data();
    const std::size_t n = layer.w.rows() * layer.w.cols();
    for (std::size_t i = 0; i < n; ++i) {
      const double g = gw[i] * scale;
      mw[i] = static_cast<float>(kBeta1 * mw[i] + (1.0 - kBeta1) * g);
      vw[i] = static_cast<float>(kBeta2 * vw[i] + (1.0 - kBeta2) * g * g);
      const double mhat = mw[i] / bias1;
      const double vhat = vw[i] / bias2;
      w[i] -= static_cast<float>(learning_rate * mhat / (std::sqrt(vhat) + kEps));
    }
    for (std::size_t i = 0; i < layer.b.size(); ++i) {
      const double g = layer.gb[i] * scale;
      layer.mb[i] = static_cast<float>(kBeta1 * layer.mb[i] + (1.0 - kBeta1) * g);
      layer.vb[i] = static_cast<float>(kBeta2 * layer.vb[i] + (1.0 - kBeta2) * g * g);
      const double mhat = layer.mb[i] / bias1;
      const double vhat = layer.vb[i] / bias2;
      layer.b[i] -= static_cast<float>(learning_rate * mhat / (std::sqrt(vhat) + kEps));
    }
  }
  zero_grad();
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const Layer& layer : layers_) n += layer.w.rows() * layer.w.cols() + layer.b.size();
  return n;
}

}  // namespace wf::nn
