// Design-choice ablations called out in DESIGN.md (not in the paper's
// figures, but justifying its Table I choices): pair-sampling strategy,
// embedding dimensionality, k of the k-NN classifier, byte-count
// quantization, per-IP (3-seq) vs directional (2-seq) encoding, and the
// training objective — plus the §VI-C open-world detector.
#include "eval/exp_ablation.hpp"

#include <string>

#include "core/openworld.hpp"
#include "util/env.hpp"

namespace wf::eval {

namespace {

struct AblationWorld {
  ScenarioConfig cfg;
  netsim::Website site;
  netsim::ServerFarm farm;
  data::CaptureCorpus corpus;

  explicit AblationWorld(int n_classes, int samples_per_class)
      : cfg(ScenarioConfig::standard()), site([&] {
          netsim::WikiSiteConfig sc;
          sc.n_pages = n_classes;
          sc.seed = 4242;
          return netsim::make_wiki_site(sc);
        }()),
        farm(netsim::ServerFarm::for_wiki()) {
    data::DatasetBuildOptions opt;
    opt.sequence = cfg.seq3;
    opt.browser = cfg.browser;
    opt.samples_per_class = samples_per_class;
    opt.seed = 20240;
    corpus = data::collect_captures(site, farm, {}, opt);
  }
};

struct ArmResult {
  double top1 = 0.0, top5 = 0.0;
  double train_seconds = 0.0;
};

ArmResult run_arm(const AblationWorld& world, const trace::SequenceOptions& seq,
                  core::EmbeddingConfig econfig, data::PairStrategy strategy, int knn_k,
                  int train_per_class) {
  const data::Dataset dataset = data::encode_corpus(world.corpus, seq);
  const data::SampleSplit split = data::split_samples(dataset, train_per_class, 5);
  core::AdaptiveFingerprinter attacker(econfig, knn_k, world.cfg.knn_shards);
  util::Stopwatch watch;
  attacker.provision(split.first, strategy);
  ArmResult r;
  r.train_seconds = watch.seconds();
  attacker.initialize(split.first);
  const core::EvaluationResult eval_result = attacker.evaluate(split.second, 10);
  r.top1 = eval_result.curve.top(1);
  r.top5 = eval_result.curve.top(5);
  return r;
}

}  // namespace

AblationResult run_ablation_experiment() {
  // World size follows the smoke switch like every other experiment.
  const bool smoke = util::Env::smoke();
  const int kClasses = smoke ? 12 : 50;
  const int kSamples = smoke ? 15 : 25;
  const int kTrainPerClass = smoke ? 10 : 20;
  util::log_info() << "ablation world: " << kClasses << " classes x " << kSamples
                   << " samples";
  AblationWorld world(kClasses, kSamples);

  core::EmbeddingConfig base;
  base.n_sequences = world.cfg.seq3.n_sequences;
  base.timesteps = world.cfg.seq3.timesteps;
  base.train_iterations = smoke ? 200 : 500;

  AblationResult result{
      util::Table({"Ablation", "Arm", "Top-1", "Top-5", "train(s)"}),
      util::Table({"target TPR", "k-th neighbour", "TPR", "FPR", "precision"}),
      util::Table({"threshold", "recall", "FPR", "precision"}),
  };
  auto add = [&](const std::string& group, const std::string& arm, const ArmResult& r) {
    result.design.add_row({group, arm, util::Table::pct(r.top1), util::Table::pct(r.top5),
                           util::Table::num(r.train_seconds, 1)});
  };
  const auto arm = [&](const trace::SequenceOptions& seq, const core::EmbeddingConfig& econfig,
                       data::PairStrategy strategy, int knn_k) {
    return run_arm(world, seq, econfig, strategy, knn_k, kTrainPerClass);
  };

  // Baseline arm, shared across groups.
  const ArmResult baseline =
      arm(world.cfg.seq3, base, data::PairStrategy::kRandom, world.cfg.knn_k);

  // 1. Pair-sampling strategy (§IV-A2 mentions hard negatives).
  add("pair strategy", "random", baseline);
  add("pair strategy", "hard-negative",
      arm(world.cfg.seq3, base, data::PairStrategy::kHardNegative, world.cfg.knn_k));

  // 2. Embedding dimensionality (Table I fixes 32).
  for (const std::size_t dim : {8u, 16u}) {
    core::EmbeddingConfig c = base;
    c.embedding_dim = dim;
    add("embedding dim", std::to_string(dim),
        arm(world.cfg.seq3, c, data::PairStrategy::kRandom, world.cfg.knn_k));
  }
  add("embedding dim", "32 (paper)", baseline);

  // 3. k of the k-NN classifier (paper: 250 at 90 refs/class).
  for (const int k : {5, 20, 100}) {
    // Same model, different classifier k: retrain is wasteful but keeps
    // the harness simple and arms independent.
    add("knn k", std::to_string(k),
        arm(world.cfg.seq3, base, data::PairStrategy::kRandom, k));
  }

  // 4. Quantization granularity (§IV-A1 "optionally quantized").
  for (const std::uint32_t quantum : {1u, 4096u}) {
    trace::SequenceOptions seq = world.cfg.seq3;
    seq.quantum = quantum;
    add("quantization", std::to_string(quantum) + " B",
        arm(seq, base, data::PairStrategy::kRandom, world.cfg.knn_k));
  }
  add("quantization", "512 B (default)", baseline);

  // 5. Per-IP vs directional encoding (the paper's core representational
  // claim: TLS exposes server IPs, so use them).
  {
    core::EmbeddingConfig c = base;
    c.n_sequences = 2;
    add("encoding", "2-seq directional",
        arm(world.cfg.seq2, c, data::PairStrategy::kRandom, world.cfg.knn_k));
    add("encoding", "3-seq per-IP (paper)", baseline);
  }

  // 6. Training objective: contrastive (paper eq. 1) vs triplet loss
  // (Triplet Fingerprinting's objective, Table III).
  {
    core::EmbeddingConfig c = base;
    c.objective = core::Objective::kTriplet;
    add("objective", "triplet",
        arm(world.cfg.seq3, c, data::PairStrategy::kRandom, world.cfg.knn_k));
    add("objective", "contrastive (paper)", baseline);
  }

  // Open-world detection (§VI-C): monitored-set membership before
  // classification. World: first half of the classes monitored, second
  // half unknown to the adversary.
  {
    util::log_info() << "ablation: open-world detection";
    const data::Dataset dataset = data::encode_corpus(world.corpus, world.cfg.seq3);
    const data::SampleSplit split = data::split_samples(dataset, kTrainPerClass, 5);
    const int half = kClasses / 2;
    auto in_world_refs = label_range(split.first, 0, half);
    auto in_world_test = label_range(split.second, 0, half);
    auto out_world_test = label_range(split.second, half, kClasses);

    core::AdaptiveFingerprinter attacker(base, world.cfg.knn_k, world.cfg.knn_shards);
    attacker.provision(in_world_refs);
    attacker.initialize(in_world_refs);

    // Embed once: the model does not change across target-TPR settings.
    const nn::Matrix ref_embeddings = attacker.model().embed_dataset(in_world_refs);
    const nn::Matrix in_embeddings = attacker.model().embed_dataset(in_world_test);
    const nn::Matrix out_embeddings = attacker.model().embed_dataset(out_world_test);

    for (const double tpr : {0.90, 0.95, 0.99}) {
      core::OpenWorldDetector detector({.neighbour = 3, .target_tpr = tpr});
      // Calibrate on the monitored reference embeddings themselves, so the
      // TPR measured below on the test split stays out of sample.
      detector.calibrate(attacker.references(), ref_embeddings);
      const core::OpenWorldMetrics m =
          detector.evaluate(attacker.references(), in_embeddings, out_embeddings);
      result.openworld.add_row({util::Table::pct(tpr, 0), "3",
                                util::Table::pct(m.true_positive_rate),
                                util::Table::pct(m.false_positive_rate),
                                util::Table::pct(m.precision)});
    }

    // Whole operating curve, not just the calibrated points: per-threshold
    // precision/recall over the same embeddings.
    core::OpenWorldDetector sweep_detector({.neighbour = 3, .target_tpr = 0.95});
    const std::vector<core::PrPoint> curve = sweep_detector.precision_recall_sweep(
        attacker.references(), in_embeddings, out_embeddings, 24);
    for (const core::PrPoint& p : curve)
      result.pr_sweep.add_row({util::Table::num(p.threshold, 4), util::Table::pct(p.recall),
                               util::Table::pct(p.false_positive_rate),
                               util::Table::pct(p.precision)});
  }

  result.design.write_csv(results_dir() + "/ablation.csv");
  result.openworld.write_csv(results_dir() + "/openworld.csv");
  result.pr_sweep.write_csv(results_dir() + "/openworld_pr.csv");
  return result;
}

}  // namespace wf::eval
