#include "eval/scenario.hpp"

#include <filesystem>
#include <stdexcept>

#include "baselines/attackers.hpp"
#include "util/env.hpp"

namespace wf::eval {

ScenarioConfig ScenarioConfig::standard() {
  ScenarioConfig config;
  config.seq3.n_sequences = 3;
  config.seq2 = config.seq3;
  config.seq2.n_sequences = 2;
  config.embedding3.n_sequences = config.seq3.n_sequences;
  config.embedding3.timesteps = config.seq3.timesteps;
  config.embedding3.train_iterations = 1500;
  config.embedding2 = config.embedding3;
  config.embedding2.n_sequences = config.seq2.n_sequences;
  return config;
}

ScenarioConfig ScenarioConfig::smoke() {
  ScenarioConfig config = standard();
  config.samples_per_class = 10;
  config.train_samples_per_class = 8;
  config.embedding3.train_iterations = 200;
  config.embedding2.train_iterations = 200;
  config.knn_k = 20;
  config.exp1_class_counts = {8, 12};
  config.exp1_shift_classes = 8;
  config.transfer_train_classes = 8;
  config.transfer_new_class_counts = {8};
  config.crosssite_classes = 10;
  config.distinguish_classes = 10;
  config.padding_classes = 8;
  config.cost_classes = 8;
  config.transport_classes = 8;
  config.transport_loss_rates = {0.05};
  config.frontier_set_sizes = {2, 4};
  config.frontier_pad_multiples = {4096};
  config.frontier_random_ranges = {512};
  return config;
}

WikiScenario::WikiScenario()
    : WikiScenario(util::Env::smoke() ? ScenarioConfig::smoke() : ScenarioConfig::standard()) {}

WikiScenario::WikiScenario(ScenarioConfig config)
    : config_(std::move(config)),
      wiki_farm_(netsim::ServerFarm::for_wiki()),
      github_farm_(netsim::ServerFarm::for_github()) {}

const netsim::Website& WikiScenario::wiki_site(int n_pages, bool tls13) {
  const std::string key = "wiki:" + std::to_string(n_pages) + (tls13 ? ":13" : ":12");
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  netsim::WikiSiteConfig site_config;
  site_config.n_pages = n_pages;
  site_config.seed = config_.site_seed;  // same seed: the 1.3 twin shares content
  site_config.tls = tls13 ? netsim::TlsVersion::kTls13 : netsim::TlsVersion::kTls12;
  return cache_.emplace(key, netsim::make_wiki_site(site_config)).first->second;
}

const netsim::Website& WikiScenario::fresh_site(int n_pages, std::uint64_t salt, bool tls13) {
  const std::string key =
      "fresh:" + std::to_string(n_pages) + ":" + std::to_string(salt) + (tls13 ? ":13" : ":12");
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  netsim::WikiSiteConfig site_config;
  site_config.n_pages = n_pages;
  site_config.seed = config_.site_seed ^ (0xabcdef12345678ull * (salt + 1));
  site_config.tls = tls13 ? netsim::TlsVersion::kTls13 : netsim::TlsVersion::kTls12;
  return cache_.emplace(key, netsim::make_wiki_site(site_config)).first->second;
}

const netsim::Website& WikiScenario::github_site(int n_pages) {
  const std::string key = "github:" + std::to_string(n_pages);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  netsim::GithubSiteConfig site_config;
  site_config.n_pages = n_pages;
  site_config.seed = config_.site_seed + 77;
  return cache_.emplace(key, netsim::make_github_site(site_config)).first->second;
}

data::Dataset label_range(const data::Dataset& dataset, int lo, int hi) {
  return dataset.filter([lo, hi](int label) { return label >= lo && label < hi; });
}

std::string results_dir() {
  const std::string dir = util::Env::results_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

AttackerFactory default_attacker_factory() { return attacker_factory("adaptive"); }

// Config-aware construction; the canonical name list itself lives in
// baselines::attacker_type_names() (shared with io::load_attacker).
AttackerFactory attacker_factory(const std::string& name) {
  if (name == "adaptive") {
    return [](const core::EmbeddingConfig& embedding, const ScenarioConfig& cfg) {
      return std::make_unique<core::AdaptiveFingerprinter>(embedding, cfg.knn_k,
                                                           cfg.knn_shards);
    };
  }
  if (name == "forest") {
    return [](const core::EmbeddingConfig&, const ScenarioConfig&) {
      return std::make_unique<baselines::ForestAttacker>();
    };
  }
  if (name == "kfp-knn") {
    return [](const core::EmbeddingConfig&, const ScenarioConfig& cfg) {
      return std::make_unique<baselines::FeatureKnnAttacker>(cfg.knn_k, cfg.knn_shards);
    };
  }
  // Reuse the canonical table's error (and keep the two registries in
  // lockstep: a name listed there but not handled above is a bug here).
  baselines::make_attacker_by_name(name);
  throw std::invalid_argument("attacker \"" + name +
                              "\" has no experiment factory registered");
}

std::vector<std::string> attacker_names() { return baselines::attacker_type_names(); }

}  // namespace wf::eval
