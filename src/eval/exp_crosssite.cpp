#include "eval/exp_crosssite.hpp"

namespace wf::eval {

util::Table run_exp3_crosssite(WikiScenario& scenario, const AttackerFactory& make_attacker) {
  const ScenarioConfig& cfg = scenario.config();
  const AttackerFactory make = make_attacker ? make_attacker : default_attacker_factory();
  util::Table table({"Target", "Top-1", "Top-3", "Top-10"});
  const int classes = cfg.crosssite_classes;

  // The 2-sequence model: per-IP routing does not transfer across sites
  // with different server layouts, so Exp. 3 uses the directional encoding.
  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = cfg.samples_per_class;
  crawl.sequence = cfg.seq2;
  crawl.browser = cfg.browser;
  crawl.seed = cfg.crawl_seed;

  util::log_info() << "exp3: provisioning 2-seq model on wiki (TLS 1.2)";
  const data::Dataset home_dataset =
      data::build_dataset(scenario.wiki_site(classes), scenario.wiki_farm(), {}, crawl);
  const data::SampleSplit home_split =
      data::split_samples(home_dataset, cfg.train_samples_per_class, cfg.split_seed);
  const std::unique_ptr<core::Attacker> attacker = make(cfg.embedding2, cfg);
  attacker->train(home_split.first);

  const auto evaluate_target = [&](const char* name, const netsim::Website& site,
                                   const netsim::ServerFarm& farm, std::uint64_t seed) {
    data::DatasetBuildOptions options = crawl;
    options.seed = seed;
    const data::Dataset dataset = data::build_dataset(site, farm, {}, options);
    const data::SampleSplit split =
        data::split_samples(dataset, cfg.train_samples_per_class, cfg.split_seed);
    attacker->set_references(split.first);
    const core::EvaluationResult r = attacker->evaluate(split.second, 10);
    table.add_row({name, util::Table::pct(r.curve.top(1)), util::Table::pct(r.curve.top(3)),
                   util::Table::pct(r.curve.top(10))});
  };

  evaluate_target("wiki TLS 1.2 (home)", scenario.wiki_site(classes), scenario.wiki_farm(),
                  cfg.crawl_seed);
  evaluate_target("wiki TLS 1.3 (version shift)", scenario.wiki_site(classes, /*tls13=*/true),
                  scenario.wiki_farm(), cfg.crawl_seed + 101);
  evaluate_target("github TLS 1.3 (site + version shift)", scenario.github_site(classes),
                  scenario.github_farm(), cfg.crawl_seed + 202);

  table.write_csv(results_dir() + "/exp3_crosssite.csv");
  return table;
}

}  // namespace wf::eval
