#include "eval/exp_transport.hpp"

namespace wf::eval {

namespace {

double mean_capture_size(const data::CaptureCorpus& corpus) {
  if (corpus.captures.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& c : corpus.captures) total += c.records.size();
  return static_cast<double>(total) / static_cast<double>(corpus.captures.size());
}

}  // namespace

util::Table run_exp5_transport(WikiScenario& scenario, const AttackerFactory& make_attacker) {
  const ScenarioConfig& cfg = scenario.config();
  const AttackerFactory make = make_attacker ? make_attacker : default_attacker_factory();
  const int classes = cfg.transport_classes;
  util::Table table({"TLS", "HTTP", "Loss", "Top-1", "Top-3", "Top-5", "Pkts/trace"});

  const auto add_row = [&](const char* tls, const std::string& http, const std::string& loss,
                           const core::EvaluationResult& r, double pkts) {
    table.add_row({tls, http, loss, util::Table::pct(r.curve.top(1)),
                   util::Table::pct(r.curve.top(3)), util::Table::pct(r.curve.top(5)),
                   util::Table::num(pkts, 1)});
  };

  for (const bool tls13 : {false, true}) {
    const char* tls_name = tls13 ? "1.3" : "1.2";
    const netsim::Website& site = scenario.wiki_site(classes, tls13);

    data::DatasetBuildOptions crawl;
    crawl.samples_per_class = cfg.samples_per_class;
    crawl.sequence = cfg.seq3;
    crawl.browser = cfg.browser;
    crawl.seed = cfg.crawl_seed + (tls13 ? 130'000 : 120'000);

    // Record-level anchor: the pre-transport simulator's view.
    {
      util::log_info() << "exp5: TLS " << tls_name << " record-level baseline";
      const data::CaptureCorpus corpus =
          data::collect_captures(site, scenario.wiki_farm(), {}, crawl);
      const data::Dataset dataset = data::encode_corpus(corpus, cfg.seq3);
      const data::SampleSplit split =
          data::split_samples(dataset, cfg.train_samples_per_class, cfg.split_seed);
      const std::unique_ptr<core::Attacker> attacker = make(cfg.embedding3, cfg);
      attacker->train(split.first);
      add_row(tls_name, "records", "-", attacker->evaluate(split.second, 10),
              mean_capture_size(corpus));
    }

    for (const netsim::HttpVersion http :
         {netsim::HttpVersion::kHttp1, netsim::HttpVersion::kHttp2}) {
      const std::string http_name = http == netsim::HttpVersion::kHttp2 ? "2" : "1.1";
      data::DatasetBuildOptions packet_crawl = crawl;
      packet_crawl.browser.transport = cfg.transport;
      packet_crawl.browser.transport.enabled = true;
      packet_crawl.browser.transport.http = http;
      packet_crawl.browser.transport.loss_probability = 0.0;
      packet_crawl.seed =
          crawl.seed + 1'000 + (http == netsim::HttpVersion::kHttp2 ? 500 : 0);

      util::log_info() << "exp5: TLS " << tls_name << " HTTP/" << http_name
                       << " packet-level, provisioning on loss-free traffic";
      const data::CaptureCorpus clean =
          data::collect_captures(site, scenario.wiki_farm(), {}, packet_crawl);

      // Two observers of the same wire: one counts raw packets, one
      // reassembles TCP streams first (SequenceOptions.coalesce_packets).
      trace::SequenceOptions seq_reasm = cfg.seq3;
      seq_reasm.coalesce_packets = true;
      const std::unique_ptr<core::Attacker> attacker = make(cfg.embedding3, cfg);
      const std::unique_ptr<core::Attacker> reasm_attacker = make(cfg.embedding3, cfg);
      {
        const data::Dataset clean_dataset = data::encode_corpus(clean, cfg.seq3);
        const data::SampleSplit split =
            data::split_samples(clean_dataset, cfg.train_samples_per_class, cfg.split_seed);
        attacker->train(split.first);
        add_row(tls_name, http_name, "0%", attacker->evaluate(split.second, 10),
                mean_capture_size(clean));
        const data::Dataset reasm_dataset = data::encode_corpus(clean, seq_reasm);
        const data::SampleSplit reasm_split =
            data::split_samples(reasm_dataset, cfg.train_samples_per_class, cfg.split_seed);
        reasm_attacker->train(reasm_split.first);
        add_row(tls_name, http_name + "+reasm", "0%",
                reasm_attacker->evaluate(reasm_split.second, 10), mean_capture_size(clean));
      }

      // Degradation: fresh captures of the same pages at growing loss,
      // evaluated on the same held-out protocol as the 0% rows.
      for (std::size_t li = 0; li < cfg.transport_loss_rates.size(); ++li) {
        const double loss = cfg.transport_loss_rates[li];
        data::DatasetBuildOptions lossy_crawl = packet_crawl;
        lossy_crawl.browser.transport.loss_probability = loss;
        lossy_crawl.seed = packet_crawl.seed + 7 * (li + 1);
        const data::CaptureCorpus lossy =
            data::collect_captures(site, scenario.wiki_farm(), {}, lossy_crawl);
        const data::SampleSplit lossy_split = data::split_samples(
            data::encode_corpus(lossy, cfg.seq3), cfg.train_samples_per_class, cfg.split_seed);
        add_row(tls_name, http_name, util::Table::pct(loss, 0),
                attacker->evaluate(lossy_split.second, 10), mean_capture_size(lossy));
        const data::SampleSplit lossy_reasm_split = data::split_samples(
            data::encode_corpus(lossy, seq_reasm), cfg.train_samples_per_class, cfg.split_seed);
        add_row(tls_name, http_name + "+reasm", util::Table::pct(loss, 0),
                reasm_attacker->evaluate(lossy_reasm_split.second, 10),
                mean_capture_size(lossy));
      }
    }
  }

  table.write_csv(results_dir() + "/exp5_transport.csv");
  return table;
}

}  // namespace wf::eval
