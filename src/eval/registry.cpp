// The experiment registry: every former bench_* main body lives here as a
// run function, so `wf run <name>`, `wf run --all` and the legacy shim
// binaries all drive exactly the same code.
#include "eval/registry.hpp"

#include <iostream>

#include "core/embedding_config.hpp"
#include "eval/exp_ablation.hpp"
#include "eval/exp_costs.hpp"
#include "eval/exp_crosssite.hpp"
#include "eval/exp_distinguish.hpp"
#include "eval/exp_million.hpp"
#include "eval/exp_padding.hpp"
#include "eval/exp_robust.hpp"
#include "eval/exp_serve.hpp"
#include "eval/exp_static.hpp"
#include "eval/exp_transfer.hpp"
#include "eval/exp_transport.hpp"
#include "util/bench_report.hpp"
#include "util/env.hpp"

namespace wf::eval {

namespace {

void report_rows(util::BenchReport& report, double rows) {
  report.metric("rows", rows);
  report.metric("rows_per_s", rows / report.seconds());
  report.write(results_dir());
}

// Reproduces Fig. 6 (Experiment 1): top-n accuracy of the adaptive
// fingerprinting adversary on known classes, for growing class counts,
// over TLS 1.2 — plus the TLS 1.3 version-shift series.
//
// Paper shape to check against (at 10x our default class counts):
//   500 classes:  top-1 ~58%, top-3 >90%, top-10 ~100%
//   1000 classes: top-1 ~50%, top-10 >90%
//   3000/6000:    top-1 ~35%, top-10/top-20 >90%
//   TLS 1.3 (500, version shift): top-3 drops ~95% -> ~70%
int run_exp1(const AttackerFactory& make_attacker) {
  util::BenchReport report("exp1_static");
  WikiScenario scenario;
  std::cout << "== Table I: embedding network hyperparameters ==\n";
  core::hyperparameter_table(scenario.config().embedding3).print();

  std::cout << "\n== Fig. 6: static webpage classification (Experiment 1) ==\n"
            << "(class counts are paper/10 by default; see EXPERIMENTS.md)\n";
  const util::Table table = run_exp1_static(scenario, make_attacker);
  table.print();
  std::cout << "CSV written to " << results_dir() << "/exp1_static.csv\n";
  report_rows(report, static_cast<double>(table.n_rows()));
  return 0;
}

// Reproduces Fig. 7 and Table II (Experiment 2): the Exp. 1 model
// classifies webpages it never saw during training (extreme
// distributional shift), and the number of guesses n needed for ~90%
// accuracy grows sublinearly with the number of classes.
//
// Paper shape: accuracy on unseen classes is almost identical to Exp. 1
// at equal class counts (top-1 ~58% @500, ~50% @1000, top-10 90/80/70%
// @3000/6000/13000), and n/#classes falls from 0.6% to 0.23%.
int run_exp2(const AttackerFactory& make_attacker) {
  util::BenchReport report("exp2_transfer");
  WikiScenario scenario;
  std::cout << "== Fig. 7: classification of classes never seen in training ==\n";
  const Exp2Result result = run_exp2_transfer(scenario, make_attacker);
  result.accuracy.print();
  std::cout << "\n== Table II: guesses needed for ~90% accuracy (sublinear in classes) ==\n";
  result.table2.print();
  std::cout << "CSVs written to " << results_dir() << "/exp2_transfer.csv, "
            << results_dir() << "/exp2_table2.csv\n";
  report_rows(report, static_cast<double>(result.accuracy.n_rows()));
  return 0;
}

// Reproduces Fig. 8 (Experiment 3): a two-sequence model trained on the
// Wikipedia-like site (TLS 1.2) fingerprints the Github-like site
// (TLS 1.3, different theme, variable server count).
//
// Paper shape: the model performs considerably better on its home
// site/protocol but retains a fair fraction of its accuracy on Github —
// some leakage characteristics persist across site, encoding and
// protocol version; theme change hurts the most.
int run_exp3(const AttackerFactory& make_attacker) {
  util::BenchReport report("exp3_crosssite");
  WikiScenario scenario;
  std::cout << "== Fig. 8: cross-site / cross-version transfer (2-sequence model) ==\n";
  const util::Table table = run_exp3_crosssite(scenario, make_attacker);
  table.print();
  std::cout << "CSV written to " << results_dir() << "/exp3_crosssite.csv\n";
  report_rows(report, static_cast<double>(table.n_rows()));
  return 0;
}

// Reproduces Figs. 9/10/11 (Experiment 4): per-class distinguishability.
// Cumulative distribution of the mean number of guesses needed per
// class — known classes, unknown classes, and FL-padded traces.
//
// Paper shape: known vs unknown distributions look alike; a large
// fraction of classes needs <2 guesses while a small tail (~3%) stays
// hard; FL padding pushes the whole distribution right (the <=10-guess
// fraction under padding is below the <=1-guess fraction without).
int run_exp4(const AttackerFactory& make_attacker) {
  util::BenchReport report("exp4_distinguish");
  WikiScenario scenario;
  const Exp4Result result = run_exp4_distinguish(scenario, make_attacker);
  std::cout << "== Fig. 9: mean guesses per class, known classes (CDF) ==\n";
  result.known.print();
  std::cout << "\n== Fig. 10: mean guesses per class, unknown classes (CDF) ==\n";
  result.unknown.print();
  std::cout << "\n== Fig. 11: mean guesses per class under FL padding (CDF) ==\n";
  result.padded.print();
  std::cout << "CSVs written to " << results_dir() << "/exp4_*.csv\n";
  report_rows(report, static_cast<double>(result.known.n_rows() + result.unknown.n_rows() +
                                          result.padded.n_rows()));
  return 0;
}

// Experiment 5 (beyond the paper): packet-level transport fidelity. An
// attacker provisioned on clean packet-level traffic is evaluated against
// captures at growing loss rates, for every TLS version x HTTP version,
// with a record-level baseline row per TLS block.
//
// Expected shape: the packet-level view (more, smaller, noisier wire
// units) costs the attacker some accuracy vs the idealized record stream;
// HTTP/2 multiplexing interleaves responses and costs more than HTTP/1.1;
// accuracy degrades further as loss shuffles retransmitted segments.
int run_exp5(const AttackerFactory& make_attacker) {
  util::BenchReport report("exp5_transport");
  WikiScenario scenario;
  report.param("classes", static_cast<double>(scenario.config().transport_classes));
  std::cout << "== Exp. 5: accuracy under the packet-level transport "
               "(loss x HTTP version x TLS version) ==\n";
  const util::Table table = run_exp5_transport(scenario, make_attacker);
  table.print();
  std::cout << "CSV written to " << results_dir() << "/exp5_transport.csv\n";
  report_rows(report, static_cast<double>(table.n_rows()));
  return 0;
}

// Reproduces Table III (§VIII): operational costs of fingerprinting
// systems. Prints the published literature table, then measured
// train/update/test wall-clock for every attacker of the registry.
//
// Paper shape: embedding-based systems update without retraining (cheap
// adaptation), CNN classifiers must retrain on every target-set change,
// forest/feature systems sit in between.
int run_costs(const AttackerFactory&) {
  util::BenchReport report("costs");
  WikiScenario scenario;
  const CostResult result = run_cost_experiment(scenario);
  std::cout << "== Table III (as published) ==\n";
  result.literature.print();
  std::cout << "\n== Table III (measured on this reproduction) ==\n";
  result.measured.print();
  std::cout << "CSVs written to " << results_dir() << "/table3_*.csv\n";
  report_rows(report, static_cast<double>(result.measured.n_rows()));
  return 0;
}

// Reproduces Figs. 12/13 (§VII): fixed-length padding against the
// adaptive adversary, on classes seen (Fig. 12) and not seen (Fig. 13)
// during training.
//
// Paper shape: FL padding significantly decreases accuracy in both
// settings but does not erase it completely; the residual comes from
// interleaving/order features the total-length padding cannot hide.
int run_padding(const AttackerFactory& make_attacker) {
  util::BenchReport report("padding");
  WikiScenario scenario;
  std::cout << "== Figs. 12/13: fixed-length padding vs the adaptive adversary ==\n";
  const util::Table table = run_padding_experiment(scenario, make_attacker);
  table.print();
  std::cout << "CSV written to " << results_dir() << "/padding_fl.csv\n";
  report_rows(report, static_cast<double>(table.n_rows()));
  return 0;
}

// §VII discussion ablation (beyond the paper's figures): TLS 1.3 record
// padding policies and trace-level defenses — attacker accuracy vs
// bandwidth overhead — plus the cost/protection frontier sweep over
// anonymity-set sizes and padding parameters.
//
// Expected shape per the paper's discussion: random padding is cheap but
// weak (Pironti et al.), full FL padding is strong but expensive, and
// per-website anonymity sets buy protection proportional to set size at
// much lower cost than site-wide FL.
int run_defense(const AttackerFactory& make_attacker) {
  util::BenchReport report("defense_ablation");
  WikiScenario scenario;
  std::cout << "== Defense ablation: record policies and trace-level padding ==\n";
  const util::Table table = run_defense_ablation(scenario, make_attacker);
  table.print();
  std::cout << "CSV written to " << results_dir() << "/defense_ablation.csv\n";

  std::cout << "\n== Cost/protection frontier: set sizes x padding parameters ==\n";
  const util::Table frontier = run_defense_frontier(scenario, make_attacker);
  frontier.print();
  std::cout << "CSV written to " << results_dir() << "/defense_frontier.csv\n";

  report.metric("rows", static_cast<double>(table.n_rows()));
  report.metric("frontier_rows", static_cast<double>(frontier.n_rows()));
  report.metric("rows_per_s",
                static_cast<double>(table.n_rows() + frontier.n_rows()) / report.seconds());
  report.write(results_dir());
  return 0;
}

// Serving-path benchmark (beyond the paper): the `wf serve` daemon
// measured end to end over loopback — q/s and p50/p99 request latency for
// every shard count x request batch size, coordinator path included.
//
// Expected shape: larger request batches amortize framing and dispatch
// (q/s up, per-request latency up); the scatter/gather tiers add a fan-out
// hop that costs latency at small batches and pays off only once per-shard
// scan time dominates.
int run_perf_serve(const AttackerFactory&) {
  util::BenchReport report("perf_serve");
  WikiScenario scenario;
  std::cout << "== perf_serve: daemon q/s and latency (shards x batch) ==\n";
  const util::Table table = run_perf_serve(scenario);
  table.print();
  std::cout << "CSV written to " << results_dir() << "/perf_serve.csv\n";
  report_rows(report, static_cast<double>(table.n_rows()));
  return 0;
}

// Chaos benchmark (beyond the paper): the serving path driven through a
// fault-injecting proxy, per fault kind x fault rate — availability within
// a bounded retry budget, the classified error mix, p50/p99 latency, and a
// hard integrity check (answered requests must match the in-process
// rankings bit-identically; the Mismatches column must read 0).
//
// Expected shape: `none` and `delay` stay at 100% availability (delay only
// moves the percentiles); drop/truncate/corrupt/blackhole cost availability
// roughly with rate, blackhole surfacing as timeouts and corrupt mostly as
// protocol errors — and no fault kind ever corrupts an answered ranking.
int run_robust(const AttackerFactory&) {
  util::BenchReport report("robust_serve");
  WikiScenario scenario;
  std::cout << "== robust_serve: availability/error classes under injected faults ==\n";
  const util::Table table = run_robust_serve(scenario);
  table.print();
  std::cout << "CSV written to " << results_dir() << "/robust_serve.csv\n";
  report_rows(report, static_cast<double>(table.n_rows()));
  return 0;
}

// Design-choice ablations over the adaptive attacker's internals plus the
// §VI-C open world (see exp_ablation.cpp).
int run_ablation(const AttackerFactory&) {
  util::BenchReport report("ablation");
  const AblationResult result = run_ablation_experiment();
  std::cout << "== Ablations over design choices ==\n";
  result.design.print();
  std::cout << "\n== Open-world detection (monitored-set membership, §VI-C) ==\n";
  result.openworld.print();
  std::cout << "\n== Open-world precision/recall sweep ==\n";
  result.pr_sweep.print();
  std::cout << "CSV written to " << results_dir() << "/ablation.csv\n";
  report.metric("openworld_pr_points", static_cast<double>(result.pr_sweep.n_rows()));
  report_rows(report, static_cast<double>(result.design.n_rows()));
  return 0;
}

// The million-reference regime (wf::index, beyond the paper's corpus sizes):
// IVF-pruned scan vs the exact sharded scan on a synthetic clustered
// corpus — QPS, speedup and recall@10 per cluster count x probe count x
// SIMD mode. The Clusters=0/Probes=0 rows are the exact baselines.
int run_million(const AttackerFactory&) {
  util::BenchReport report("perf_million");
  std::cout << "== perf_million: IVF-pruned scan vs exact, clusters x probes x SIMD ==\n";
  const util::Table table = run_million_experiment();
  table.print();
  std::cout << "CSV written to " << results_dir() << "/perf_million.csv\n";
  report_rows(report, static_cast<double>(table.n_rows()));
  return 0;
}

}  // namespace

const std::vector<Experiment>& experiments() {
  static const std::vector<Experiment> registry = {
      {"exp1", "bench_exp1_static",
       "Fig. 6 - closed-world top-n vs class count, + TLS 1.3 version shift", true, run_exp1},
      {"exp2", "bench_exp2_transfer",
       "Fig. 7 / Table II - classification of classes never seen in training", true, run_exp2},
      {"exp3", "bench_exp3_crosssite",
       "Fig. 8 - wiki->github cross-site/cross-version transfer (2-seq model)", true, run_exp3},
      {"exp4", "bench_exp4_distinguish",
       "Figs. 9-11 - per-class mean-guesses CDFs (known/unknown/FL-padded)", true, run_exp4},
      {"exp5", "bench_exp5_transport",
       "packet-level transport: loss rate x HTTP version x TLS version", true, run_exp5},
      {"costs", "bench_costs",
       "Table III - operational costs, literature + every registered attacker", false,
       run_costs},
      {"padding", "bench_padding",
       "Figs. 12/13 - FL padding vs the adaptive adversary, seen/unseen classes", true,
       run_padding},
      {"defense", "bench_defense_ablation",
       "record policies + trace defenses vs overhead, + cost/protection frontier", true,
       run_defense},
      {"ablation", "bench_ablation",
       "design-choice ablations + open-world detection incl. PR sweep", false, run_ablation},
      {"perf_serve", "bench_perf_serve",
       "wf serve daemon q/s + p50/p99 latency vs batch size x shard count", false,
       run_perf_serve},
      {"robust_serve", "bench_robust_serve",
       "serving availability + error classes + p99 under injected faults", false, run_robust},
      {"perf_million", "bench_perf_million",
       "IVF index recall/speedup sweep: clusters x probes x SIMD vs exact scan", false,
       run_million},
  };
  return registry;
}

const Experiment* find_experiment(std::string_view name_or_legacy) {
  for (const Experiment& experiment : experiments())
    if (name_or_legacy == experiment.name || name_or_legacy == experiment.legacy_binary)
      return &experiment;
  return nullptr;
}

int run_legacy(const char* legacy_binary) {
  const Experiment* experiment = find_experiment(legacy_binary);
  if (experiment == nullptr) {
    std::cerr << "unknown experiment: " << legacy_binary << "\n";
    return 1;
  }
  util::Env::log_effective();
  try {
    return experiment->run({});
  } catch (const std::exception& e) {
    // E.g. a result table that failed to write: exit non-zero instead of
    // letting the exception escape main.
    std::cerr << legacy_binary << ": " << e.what() << "\n";
    return 1;
  }
}

}  // namespace wf::eval
