#include "eval/exp_robust.hpp"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "data/build.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/fault.hpp"
#include "serve/server.hpp"
#include "util/env.hpp"

namespace wf::eval {

namespace {

bool same_rankings(const std::vector<core::RankedLabel>& a,
                   const std::vector<core::RankedLabel>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].label != b[i].label || a[i].votes != b[i].votes ||
        a[i].distance != b[i].distance)
      return false;
  return true;
}

}  // namespace

util::Table run_robust_serve(WikiScenario& scenario) {
  const ScenarioConfig& cfg = scenario.config();
  const bool smoke = util::Env::smoke();
  const int classes = cfg.exp1_class_counts.front();

  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = cfg.samples_per_class;
  crawl.sequence = cfg.seq3;
  crawl.browser = cfg.browser;
  crawl.seed = cfg.crawl_seed + static_cast<std::uint64_t>(classes);
  const data::Dataset dataset =
      data::build_dataset(scenario.wiki_site(classes), scenario.wiki_farm(), {}, crawl);
  const data::SampleSplit split =
      data::split_samples(dataset, cfg.train_samples_per_class, cfg.split_seed);

  util::log_info() << "robust_serve: training the adaptive attacker on " << classes
                   << " classes (" << split.first.size() << " samples)";
  const std::unique_ptr<core::Attacker> attacker =
      attacker_factory("adaptive")(cfg.embedding3, cfg);
  attacker->train(split.first);

  // Ground truth for the integrity check: a fault may cost a request, but
  // every answered request must match the in-process rankings exactly.
  const data::Dataset& test = split.second;
  const std::vector<std::vector<core::RankedLabel>> truth = attacker->fingerprint_batch(test);

  // One daemon for the whole sweep; each configuration gets a fresh proxy in
  // front of it. Deadlines are short so faulted requests fail in
  // milliseconds, not the default 30 s.
  const int timeout_ms = smoke ? 1500 : 4000;
  serve::ServerConfig server_config;
  server_config.request_timeout_ms = timeout_ms;
  serve::Server server(std::make_shared<serve::LocalHandler>(attacker->clone()), server_config);
  server.start();

  const std::size_t batch = 8;
  const std::size_t min_requests = smoke ? 24 : 96;
  const std::vector<serve::FaultKind> kinds = {
      serve::FaultKind::none,     serve::FaultKind::drop,    serve::FaultKind::delay,
      serve::FaultKind::truncate, serve::FaultKind::corrupt, serve::FaultKind::blackhole};
  const std::vector<double> rates = smoke ? std::vector<double>{0.05}
                                          : std::vector<double>{0.02, 0.10};

  util::Table table({"Kind", "Rate", "Requests", "OK", "Timeout", "Backpressure", "Protocol",
                     "Other", "Availability", "p50 (ms)", "p99 (ms)", "Mismatches"});
  std::uint64_t proxy_seed = 1;
  for (const serve::FaultKind kind : kinds) {
    for (const double rate : kind == serve::FaultKind::none ? std::vector<double>{0.0} : rates) {
      serve::FaultPlan plan;
      plan.kind = kind;
      plan.rate = rate;
      plan.delay_ms = 50;
      plan.seed = proxy_seed++;
      serve::FaultProxy proxy(server_config.host, 0, {server_config.host, server.port()}, plan);

      serve::ClientConfig client_config;
      client_config.timeout_ms = timeout_ms;
      client_config.retry.max_attempts = 4;
      serve::Client client(server_config.host, proxy.port(), client_config);

      std::size_t requests = 0, ok = 0, timeouts = 0, backpressure = 0, protocol = 0,
                  other = 0, mismatches = 0;
      // Same exact-percentile contract as perf_serve: the port to
      // obs::Histogram leaves every CSV value bit-identical.
      obs::Histogram latency;
      while (requests < min_requests) {
        for (std::size_t begin = 0; begin < test.size(); begin += batch) {
          const std::size_t end = std::min(test.size(), begin + batch);
          nn::Matrix frame(end - begin, test.feature_dim());
          for (std::size_t i = begin; i < end; ++i)
            frame.set_row(i - begin, test[i].features);
          ++requests;
          util::Stopwatch request;
          try {
            serve::ReplyMeta meta;
            const serve::Rankings part = client.query_until_accepted(frame, &meta);
            latency.record(request.millis());
            ++ok;
            if (!meta.degraded) {
              // The integrity invariant: answered means bit-identical.
              if (part.size() != end - begin) {
                ++mismatches;
              } else {
                for (std::size_t i = begin; i < end; ++i)
                  if (!same_rankings(part[i - begin], truth[i])) {
                    ++mismatches;
                    break;
                  }
              }
            }
          } catch (const serve::ServeError& e) {
            switch (e.klass()) {
              case serve::ErrorClass::timeout: ++timeouts; break;
              case serve::ErrorClass::backpressure: ++backpressure; break;
              case serve::ErrorClass::protocol: ++protocol; break;
              default: ++other; break;
            }
          } catch (const serve::TimeoutError&) {
            ++timeouts;
          } catch (const io::IoError&) {
            ++other;  // transport cut (truncate/drop mid-frame)
          }
        }
      }
      proxy.stop();

      table.add_row({serve::fault_kind_name(kind), util::Table::num(rate, 2),
                     std::to_string(requests), std::to_string(ok), std::to_string(timeouts),
                     std::to_string(backpressure), std::to_string(protocol),
                     std::to_string(other),
                     util::Table::pct(static_cast<double>(ok) / static_cast<double>(requests)),
                     util::Table::num(latency.quantile(0.50), 3),
                     util::Table::num(latency.quantile(0.99), 3),
                     std::to_string(mismatches)});
    }
  }
  server.stop();

  table.write_csv(results_dir() + "/robust_serve.csv");
  return table;
}

}  // namespace wf::eval
