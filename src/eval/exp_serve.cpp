#include "eval/exp_serve.hpp"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "data/build.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/coordinator.hpp"
#include "serve/server.hpp"
#include "util/env.hpp"

namespace wf::eval {

util::Table run_perf_serve(WikiScenario& scenario) {
  const ScenarioConfig& cfg = scenario.config();
  const bool smoke = util::Env::smoke();
  const int classes = cfg.exp1_class_counts.front();

  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = cfg.samples_per_class;
  crawl.sequence = cfg.seq3;
  crawl.browser = cfg.browser;
  crawl.seed = cfg.crawl_seed + static_cast<std::uint64_t>(classes);
  const data::Dataset dataset =
      data::build_dataset(scenario.wiki_site(classes), scenario.wiki_farm(), {}, crawl);
  const data::SampleSplit split =
      data::split_samples(dataset, cfg.train_samples_per_class, cfg.split_seed);

  util::log_info() << "perf_serve: training the adaptive attacker on " << classes
                   << " classes (" << split.first.size() << " samples)";
  const std::unique_ptr<core::Attacker> attacker =
      attacker_factory("adaptive")(cfg.embedding3, cfg);
  attacker->train(split.first);

  const data::Dataset& test = split.second;
  // Enough request frames per configuration for a stable p99: loop the
  // held-out split until at least this many queries went over the wire.
  const std::size_t min_queries = smoke ? 64 : 1024;
  const std::vector<std::size_t> shard_counts = smoke ? std::vector<std::size_t>{1, 2}
                                                      : std::vector<std::size_t>{1, 2, 4};
  const std::vector<std::size_t> batch_sizes = smoke ? std::vector<std::size_t>{1, 8, 32}
                                                     : std::vector<std::size_t>{1, 8, 32, 128};

  util::Table table(
      {"Shards", "Batch", "Requests", "Queries", "q/s", "p50 (ms)", "p99 (ms)"});
  for (const std::size_t n_shards : shard_counts) {
    // Backends first (slice i of n over the same trained model), then the
    // front daemon: the model itself at 1 shard, a coordinator above them
    // otherwise — all over real loopback sockets, like a deployment.
    std::vector<std::unique_ptr<serve::Server>> servers;
    std::vector<serve::BackendAddress> backends;
    serve::ServerConfig config;  // ephemeral port, default queue/batch caps
    if (n_shards == 1) {
      servers.push_back(std::make_unique<serve::Server>(
          std::make_shared<serve::LocalHandler>(attacker->clone()), config));
      servers.back()->start();
    } else {
      for (std::size_t slice = 0; slice < n_shards; ++slice) {
        servers.push_back(std::make_unique<serve::Server>(
            std::make_shared<serve::LocalHandler>(attacker->clone(), slice, n_shards),
            config));
        servers.back()->start();
        backends.push_back({config.host, servers.back()->port()});
      }
      servers.push_back(std::make_unique<serve::Server>(
          std::make_shared<serve::CoordinatorHandler>(backends, 1000), config));
      servers.back()->start();
    }
    const std::uint16_t front_port = servers.back()->port();

    for (const std::size_t batch : batch_sizes) {
      serve::Client client(config.host, front_port, 1000);
      // obs::Histogram reproduces the old ad-hoc sorted-vector percentile
      // math exactly (same index formula), so the CSV values are unchanged.
      obs::Histogram latency;
      util::Stopwatch total;
      std::size_t queries = 0;
      while (queries < min_queries) {
        for (std::size_t begin = 0; begin < test.size(); begin += batch) {
          const std::size_t end = std::min(test.size(), begin + batch);
          nn::Matrix frame(end - begin, test.feature_dim());
          for (std::size_t i = begin; i < end; ++i)
            frame.set_row(i - begin, test[i].features);
          util::Stopwatch request;
          client.query_until_accepted(frame);
          latency.record(request.millis());
          queries += end - begin;
        }
      }
      const double seconds = total.seconds();
      table.add_row({std::to_string(n_shards), std::to_string(batch),
                     std::to_string(latency.count()), std::to_string(queries),
                     util::Table::num(static_cast<double>(queries) / seconds, 1),
                     util::Table::num(latency.quantile(0.50), 3),
                     util::Table::num(latency.quantile(0.99), 3)});
    }
    for (const std::unique_ptr<serve::Server>& server : servers) server->stop();
  }

  table.write_csv(results_dir() + "/perf_serve.csv");
  return table;
}

}  // namespace wf::eval
