#include "eval/exp_padding.hpp"

#include "trace/defense.hpp"

namespace wf::eval {

util::Table run_padding_experiment(WikiScenario& scenario,
                                   const AttackerFactory& make_attacker) {
  const ScenarioConfig& cfg = scenario.config();
  const AttackerFactory make = make_attacker ? make_attacker : default_attacker_factory();
  const int classes = cfg.padding_classes;
  util::Table table({"Setting", "Top-1", "Top-3", "Top-10"});

  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = cfg.samples_per_class;
  crawl.sequence = cfg.seq3;
  crawl.browser = cfg.browser;
  crawl.seed = cfg.crawl_seed;

  util::log_info() << "padding: provisioning on unpadded traffic";
  const data::CaptureCorpus corpus = data::collect_captures(
      scenario.wiki_site(classes), scenario.wiki_farm(), {}, crawl);
  const data::Dataset dataset = data::encode_corpus(corpus, cfg.seq3);
  const data::SampleSplit split =
      data::split_samples(dataset, cfg.train_samples_per_class, cfg.split_seed);
  const std::unique_ptr<core::Attacker> attacker = make(cfg.embedding3, cfg);
  attacker->train(split.first);

  const auto add_row = [&](const char* name, const core::EvaluationResult& r) {
    table.add_row({name, util::Table::pct(r.curve.top(1)), util::Table::pct(r.curve.top(3)),
                   util::Table::pct(r.curve.top(10))});
  };

  // Fig. 12: classes seen in training, unpadded vs FL-padded.
  add_row("seen, unpadded", attacker->evaluate(split.second, 10));
  const trace::FixedLengthDefense defense = trace::FixedLengthDefense::fit(corpus.captures);
  const data::Dataset padded = data::encode_corpus(corpus, cfg.seq3, &defense, 9);
  const data::SampleSplit padded_split =
      data::split_samples(padded, cfg.train_samples_per_class, cfg.split_seed);
  const std::unique_ptr<core::Attacker> fl_attacker = attacker->clone();
  fl_attacker->set_references(padded_split.first);
  add_row("seen, FL padding", fl_attacker->evaluate(padded_split.second, 10));

  // Fig. 13: classes never seen in training.
  util::log_info() << "padding: unseen classes";
  data::DatasetBuildOptions unseen_crawl = crawl;
  unseen_crawl.seed = cfg.crawl_seed + 700'000;
  const data::CaptureCorpus unseen_corpus = data::collect_captures(
      scenario.fresh_site(classes, 7), scenario.wiki_farm(), {}, unseen_crawl);
  const data::Dataset unseen_dataset = data::encode_corpus(unseen_corpus, cfg.seq3);
  const data::SampleSplit unseen_split =
      data::split_samples(unseen_dataset, cfg.train_samples_per_class, cfg.split_seed);
  const std::unique_ptr<core::Attacker> transfer = attacker->clone();
  transfer->set_references(unseen_split.first);
  add_row("unseen, unpadded", transfer->evaluate(unseen_split.second, 10));

  const trace::FixedLengthDefense unseen_defense =
      trace::FixedLengthDefense::fit(unseen_corpus.captures);
  const data::Dataset unseen_padded =
      data::encode_corpus(unseen_corpus, cfg.seq3, &unseen_defense, 11);
  const data::SampleSplit unseen_padded_split =
      data::split_samples(unseen_padded, cfg.train_samples_per_class, cfg.split_seed);
  transfer->set_references(unseen_padded_split.first);
  add_row("unseen, FL padding", transfer->evaluate(unseen_padded_split.second, 10));

  table.write_csv(results_dir() + "/padding_fl.csv");
  return table;
}

util::Table run_defense_ablation(WikiScenario& scenario,
                                 const AttackerFactory& make_attacker) {
  const ScenarioConfig& cfg = scenario.config();
  const AttackerFactory make = make_attacker ? make_attacker : default_attacker_factory();
  const int classes = cfg.padding_classes;
  util::Table table({"Countermeasure", "Top-1", "Top-3", "BW overhead"});

  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = cfg.samples_per_class;
  crawl.sequence = cfg.seq3;
  crawl.browser = cfg.browser;
  crawl.seed = cfg.crawl_seed;

  // Record padding needs TLS 1.3.
  const netsim::Website& site = scenario.wiki_site(classes, /*tls13=*/true);
  util::log_info() << "defense ablation: provisioning on unpadded TLS 1.3 traffic";
  const data::CaptureCorpus plain = data::collect_captures(site, scenario.wiki_farm(), {}, crawl);
  const data::Dataset plain_dataset = data::encode_corpus(plain, cfg.seq3);
  const data::SampleSplit split =
      data::split_samples(plain_dataset, cfg.train_samples_per_class, cfg.split_seed);
  const std::unique_ptr<core::Attacker> attacker = make(cfg.embedding3, cfg);
  attacker->train(split.first);

  std::uint64_t baseline_bytes = 0;
  for (const auto& c : plain.captures) baseline_bytes += c.total_bytes();

  const auto add_dataset_row = [&](const std::string& name, const data::Dataset& dataset,
                                   double overhead) {
    const data::SampleSplit s =
        data::split_samples(dataset, cfg.train_samples_per_class, cfg.split_seed);
    const core::EvaluationResult r = attacker->evaluate(s.second, 5);
    table.add_row({name, util::Table::pct(r.curve.top(1)), util::Table::pct(r.curve.top(3)),
                   util::Table::pct(overhead, 0)});
  };

  add_dataset_row("none", plain_dataset, 0.0);

  // TLS 1.3 record-padding policies.
  struct Policy {
    const char* name;
    netsim::RecordPaddingPolicy policy;
  };
  for (const Policy& p :
       {Policy{"record: random 0-255 B", {netsim::RecordPaddingPolicy::Kind::kRandom, 256}},
        Policy{"record: pad-to-4096 B",
               {netsim::RecordPaddingPolicy::Kind::kPadToMultiple, 4096}},
        Policy{"record: fixed 16 KiB",
               {netsim::RecordPaddingPolicy::Kind::kFixedRecord, 16384}}}) {
    data::DatasetBuildOptions padded_crawl = crawl;
    padded_crawl.browser.record_padding = p.policy;
    const data::CaptureCorpus corpus =
        data::collect_captures(site, scenario.wiki_farm(), {}, padded_crawl);
    std::uint64_t bytes = 0;
    for (const auto& c : corpus.captures) bytes += c.total_bytes();
    add_dataset_row(p.name, data::encode_corpus(corpus, cfg.seq3),
                    static_cast<double>(bytes) / static_cast<double>(baseline_bytes) - 1.0);
  }

  // Trace-level fixed-length padding.
  const trace::FixedLengthDefense fl = trace::FixedLengthDefense::fit(plain.captures);
  add_dataset_row("trace: fixed-length (site max)", data::encode_corpus(plain, cfg.seq3, &fl, 9),
                  fl.bandwidth_overhead(plain.captures));

  // Per-website anonymity sets of 6.
  const trace::AnonymitySetDefense anon =
      trace::AnonymitySetDefense::fit(plain.captures, plain.labels, 6);
  util::Rng rng(13);
  data::Dataset anon_dataset(cfg.seq3.feature_dim());
  for (std::size_t i = 0; i < plain.captures.size(); ++i) {
    const netsim::PacketCapture padded = anon.apply(plain.captures[i], plain.labels[i], rng);
    anon_dataset.add({trace::encode_capture(padded, cfg.seq3), plain.labels[i]});
  }
  add_dataset_row("trace: anonymity sets of 6", anon_dataset,
                  anon.bandwidth_overhead(plain.captures, plain.labels));

  table.write_csv(results_dir() + "/defense_ablation.csv");
  return table;
}

util::Table run_defense_frontier(WikiScenario& scenario,
                                 const AttackerFactory& make_attacker) {
  const ScenarioConfig& cfg = scenario.config();
  const AttackerFactory make = make_attacker ? make_attacker : default_attacker_factory();
  const int classes = cfg.padding_classes;
  util::Table table({"Family", "Param", "Top-1", "Top-3", "BW overhead"});

  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = cfg.samples_per_class;
  crawl.sequence = cfg.seq3;
  crawl.browser = cfg.browser;
  crawl.seed = cfg.crawl_seed + 40'000;

  const netsim::Website& site = scenario.wiki_site(classes, /*tls13=*/true);
  util::log_info() << "defense frontier: provisioning on unpadded TLS 1.3 traffic";
  const data::CaptureCorpus plain = data::collect_captures(site, scenario.wiki_farm(), {}, crawl);
  const data::Dataset plain_dataset = data::encode_corpus(plain, cfg.seq3);
  const data::SampleSplit split =
      data::split_samples(plain_dataset, cfg.train_samples_per_class, cfg.split_seed);
  const std::unique_ptr<core::Attacker> attacker = make(cfg.embedding3, cfg);
  attacker->train(split.first);

  std::uint64_t baseline_bytes = 0;
  for (const auto& c : plain.captures) baseline_bytes += c.total_bytes();

  const auto add_dataset_row = [&](const std::string& family, const std::string& param,
                                   const data::Dataset& dataset, double overhead) {
    const data::SampleSplit s =
        data::split_samples(dataset, cfg.train_samples_per_class, cfg.split_seed);
    const core::EvaluationResult r = attacker->evaluate(s.second, 5);
    table.add_row({family, param, util::Table::pct(r.curve.top(1)),
                   util::Table::pct(r.curve.top(3)), util::Table::pct(overhead, 0)});
  };

  add_dataset_row("none", "-", plain_dataset, 0.0);

  // Record policies: one recrawl per parameter point.
  const auto add_policy_row = [&](const std::string& family, const std::string& param,
                                  const netsim::RecordPaddingPolicy& policy) {
    data::DatasetBuildOptions padded_crawl = crawl;
    padded_crawl.browser.record_padding = policy;
    const data::CaptureCorpus corpus =
        data::collect_captures(site, scenario.wiki_farm(), {}, padded_crawl);
    std::uint64_t bytes = 0;
    for (const auto& c : corpus.captures) bytes += c.total_bytes();
    add_dataset_row(family, param, data::encode_corpus(corpus, cfg.seq3),
                    static_cast<double>(bytes) / static_cast<double>(baseline_bytes) - 1.0);
  };
  for (const std::uint32_t range : cfg.frontier_random_ranges)
    add_policy_row("record: random", std::to_string(range) + " B",
                   {netsim::RecordPaddingPolicy::Kind::kRandom, range});
  for (const std::uint32_t multiple : cfg.frontier_pad_multiples)
    add_policy_row("record: pad-to-multiple", std::to_string(multiple) + " B",
                   {netsim::RecordPaddingPolicy::Kind::kPadToMultiple, multiple});

  // Anonymity sets: growing set size climbs towards site-wide FL padding.
  util::Rng rng(29);
  for (const int set_size : cfg.frontier_set_sizes) {
    if (set_size > classes) continue;
    const trace::AnonymitySetDefense anon =
        trace::AnonymitySetDefense::fit(plain.captures, plain.labels, set_size);
    data::Dataset anon_dataset(cfg.seq3.feature_dim());
    for (std::size_t i = 0; i < plain.captures.size(); ++i) {
      const netsim::PacketCapture padded = anon.apply(plain.captures[i], plain.labels[i], rng);
      anon_dataset.add({trace::encode_capture(padded, cfg.seq3), plain.labels[i]});
    }
    add_dataset_row("trace: anonymity sets", "size " + std::to_string(set_size), anon_dataset,
                    anon.bandwidth_overhead(plain.captures, plain.labels));
  }

  // Site-wide FL padding: the expensive end of the frontier.
  const trace::FixedLengthDefense fl = trace::FixedLengthDefense::fit(plain.captures);
  add_dataset_row("trace: fixed-length", "site max",
                  data::encode_corpus(plain, cfg.seq3, &fl, 9), fl.bandwidth_overhead(plain.captures));

  table.write_csv(results_dir() + "/defense_frontier.csv");
  return table;
}

}  // namespace wf::eval
