#include "eval/exp_million.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "core/knn.hpp"
#include "core/sharded_reference_set.hpp"
#include "eval/scenario.hpp"
#include "index/ivf.hpp"
#include "nn/matrix.hpp"
#include "nn/simd.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace wf::eval {
namespace {

// Synthetic corpus geometry: embeddings live near per-class gaussian
// centres, like the trained model's output but at any scale. kSpread keeps
// classes separable enough that recall@10 is a meaningful knob (too much
// overlap and even the exact scan's top-10 is arbitrary among near-ties).
constexpr std::size_t kDim = 64;
constexpr std::size_t kRefsPerClass = 50;
constexpr double kSpread = 0.35;
constexpr int kTopN = 10;
constexpr std::uint64_t kCorpusSeed = 70921;

struct Corpus {
  core::ShardedReferenceSet refs;
  nn::Matrix queries;
};

Corpus make_corpus(std::size_t n_refs, std::size_t n_queries) {
  const std::size_t n_classes = std::max<std::size_t>(kTopN + 1, n_refs / kRefsPerClass);
  util::Rng rng(kCorpusSeed + n_refs);
  std::vector<float> centres(n_classes * kDim);
  for (float& v : centres) v = static_cast<float>(rng.normal());

  Corpus corpus{core::ShardedReferenceSet(kDim, 4), nn::Matrix(n_queries, kDim)};
  std::vector<float> row(kDim);
  for (std::size_t i = 0; i < n_refs; ++i) {
    const std::size_t c = i % n_classes;
    for (std::size_t d = 0; d < kDim; ++d)
      row[d] = centres[c * kDim + d] + static_cast<float>(rng.normal(0.0, kSpread));
    corpus.refs.add(row, static_cast<int>(c));
  }
  for (std::size_t q = 0; q < n_queries; ++q) {
    const std::size_t c = q % n_classes;
    for (std::size_t d = 0; d < kDim; ++d)
      row[d] = centres[c * kDim + d] + static_cast<float>(rng.normal(0.0, kSpread));
    corpus.queries.set_row(q, row);
  }
  return corpus;
}

// Each query's 10 nearest reference rows (global insertion ids), extracted
// from the scan's candidate lists: a single-slice scan_slice holds every
// shard's k-best, so the global top-10 is a sort away. Row ids are the
// store's insertion ids, which the IVF index preserves — the exact and the
// pruned scan speak the same id space.
std::vector<std::vector<std::uint64_t>> top_rows(const core::KnnClassifier& knn,
                                                 const core::ReferenceStore& store,
                                                 const nn::Matrix& queries) {
  const core::SliceScan scan = knn.scan_slice(store, queries, 0, 1);
  std::vector<std::vector<std::uint64_t>> top(scan.candidates.size());
  for (std::size_t q = 0; q < scan.candidates.size(); ++q) {
    std::vector<core::Candidate> candidates = scan.candidates[q];
    std::sort(candidates.begin(), candidates.end());
    const std::size_t n = std::min<std::size_t>(kTopN, candidates.size());
    top[q].reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      top[q].push_back(candidates[i].second >> core::kCandidateClassBits);
  }
  return top;
}

// Standard ANN recall@10: the mean fraction of each query's true 10 nearest
// rows that the pruned scan retains.
double recall_at_10(const std::vector<std::vector<std::uint64_t>>& exact,
                    const std::vector<std::vector<std::uint64_t>>& pruned) {
  if (exact.empty()) return 1.0;
  double sum = 0.0;
  for (std::size_t q = 0; q < exact.size(); ++q) {
    std::vector<std::uint64_t> want = exact[q];
    std::vector<std::uint64_t> got = pruned[q];
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    std::vector<std::uint64_t> common;
    std::set_intersection(want.begin(), want.end(), got.begin(), got.end(),
                          std::back_inserter(common));
    sum += want.empty() ? 1.0
                        : static_cast<double>(common.size()) / static_cast<double>(want.size());
  }
  return sum / static_cast<double>(exact.size());
}

// Queries per second of rank_batch over `store`, scanning repeatedly until
// the run is long enough for a stable rate. A perf number, not part of the
// bit-identity surface — the rankings themselves are mode-invariant.
double measure_qps(const core::KnnClassifier& knn, const core::ReferenceStore& store,
                   const nn::Matrix& queries, double min_seconds) {
  std::size_t ranked = 0;
  const util::Stopwatch watch;
  do {
    (void)knn.rank_batch(store, queries);
    ranked += queries.rows();
  } while (watch.seconds() < min_seconds);
  return static_cast<double>(ranked) / watch.seconds();
}

std::vector<std::size_t> probe_sweep(std::size_t clusters) {
  std::vector<std::size_t> probes{clusters, std::max<std::size_t>(1, clusters / 8),
                                  std::max<std::size_t>(1, clusters / 32)};
  std::sort(probes.begin(), probes.end(), std::greater<>());
  probes.erase(std::unique(probes.begin(), probes.end()), probes.end());
  return probes;
}

}  // namespace

util::Table run_million_experiment() {
  const bool smoke = util::Env::smoke();
  const std::vector<std::size_t> ref_counts =
      smoke ? std::vector<std::size_t>{10000} : std::vector<std::size_t>{100000, 1000000};
  const std::size_t n_queries = smoke ? 200 : 500;
  const std::vector<std::size_t> cluster_counts =
      smoke ? std::vector<std::size_t>{16, 64} : std::vector<std::size_t>{256, 1024};
  const double min_seconds = smoke ? 0.05 : 0.5;
  const core::KnnClassifier knn(16);
  const std::vector<nn::SimdMode> modes = nn::supported_simd_modes();
  const nn::SimdMode previous_mode = nn::simd_mode();

  util::Table table({"Refs", "Clusters", "Probes", "Simd", "QPS", "Speedup", "Recall10"});
  for (const std::size_t n_refs : ref_counts) {
    util::log_info() << "perf_million: building a " << n_refs
                     << "-reference clustered-gaussian corpus (dim " << kDim << ")";
    const Corpus corpus = make_corpus(n_refs, n_queries);
    const std::vector<std::vector<std::uint64_t>> exact_top =
        top_rows(knn, corpus.refs, corpus.queries);

    // Exact-scan baseline, one row per SIMD mode (Clusters/Probes = 0).
    std::vector<double> exact_qps(modes.size(), 0.0);
    for (std::size_t m = 0; m < modes.size(); ++m) {
      nn::set_simd_mode(modes[m]);
      exact_qps[m] = measure_qps(knn, corpus.refs, corpus.queries, min_seconds);
      table.add_row({std::to_string(n_refs), "0", "0", nn::simd_mode_name(modes[m]),
                     util::Table::num(exact_qps[m], 1), util::Table::num(1.0, 2),
                     util::Table::num(1.0, 4)});
    }

    for (const std::size_t clusters : cluster_counts) {
      index::IvfConfig config;
      config.clusters = clusters;
      util::log_info() << "perf_million: k-means into " << clusters << " clusters";
      index::IvfReferenceStore ivf(corpus.refs, config);
      for (const std::size_t probes : probe_sweep(clusters)) {
        ivf.set_probes(probes);
        const double recall = recall_at_10(exact_top, top_rows(knn, ivf, corpus.queries));
        for (std::size_t m = 0; m < modes.size(); ++m) {
          nn::set_simd_mode(modes[m]);
          const double qps = measure_qps(knn, ivf, corpus.queries, min_seconds);
          table.add_row({std::to_string(n_refs), std::to_string(clusters),
                         std::to_string(probes), nn::simd_mode_name(modes[m]),
                         util::Table::num(qps, 1), util::Table::num(qps / exact_qps[m], 2),
                         util::Table::num(recall, 4)});
        }
      }
    }
  }
  nn::set_simd_mode(previous_mode);

  table.write_csv(results_dir() + "/perf_million.csv");
  return table;
}

}  // namespace wf::eval
