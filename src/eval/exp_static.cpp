#include "eval/exp_static.hpp"

namespace wf::eval {

util::Table run_exp1_static(WikiScenario& scenario, const AttackerFactory& make_attacker) {
  const ScenarioConfig& cfg = scenario.config();
  const AttackerFactory make = make_attacker ? make_attacker : default_attacker_factory();
  util::Table table({"Classes", "TLS", "Top-1", "Top-3", "Top-5", "Top-10"});

  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = cfg.samples_per_class;
  crawl.sequence = cfg.seq3;
  crawl.browser = cfg.browser;

  // Crawl `site`, train the attacker on the train half unless it is
  // already trained, and evaluate on the held-out half.
  const auto evaluate_site = [&](const netsim::Website& site, std::uint64_t crawl_seed,
                                 core::Attacker& attacker,
                                 bool train) -> core::EvaluationResult {
    data::DatasetBuildOptions options = crawl;
    options.seed = crawl_seed;
    const data::Dataset dataset = data::build_dataset(site, scenario.wiki_farm(), {}, options);
    const data::SampleSplit split =
        data::split_samples(dataset, cfg.train_samples_per_class, cfg.split_seed);
    if (train) {
      attacker.train(split.first);
    } else {
      attacker.set_references(split.first);
    }
    return attacker.evaluate(split.second, 10);
  };

  const auto add_row = [&](int classes, const char* tls, const core::EvaluationResult& r) {
    table.add_row({std::to_string(classes), tls, util::Table::pct(r.curve.top(1)),
                   util::Table::pct(r.curve.top(3)), util::Table::pct(r.curve.top(5)),
                   util::Table::pct(r.curve.top(10))});
  };

  for (const int classes : cfg.exp1_class_counts) {
    util::log_info() << "exp1: " << classes << " classes (TLS 1.2)";
    const std::unique_ptr<core::Attacker> attacker = make(cfg.embedding3, cfg);
    add_row(classes, "1.2",
            evaluate_site(scenario.wiki_site(classes),
                          cfg.crawl_seed + static_cast<std::uint64_t>(classes), *attacker,
                          /*train=*/true));
  }

  // Version shift: the Exp.-1 model meets the same site served over 1.3.
  {
    const int classes = cfg.exp1_shift_classes;
    util::log_info() << "exp1: TLS 1.3 version shift at " << classes << " classes";
    const std::unique_ptr<core::Attacker> attacker = make(cfg.embedding3, cfg);
    evaluate_site(scenario.wiki_site(classes),
                  cfg.crawl_seed + static_cast<std::uint64_t>(classes), *attacker,
                  /*train=*/true);
    add_row(classes, "1.3 (version shift)",
            evaluate_site(scenario.wiki_site(classes, /*tls13=*/true),
                          cfg.crawl_seed + 13'000 + static_cast<std::uint64_t>(classes),
                          *attacker,
                          /*train=*/false));
  }

  table.write_csv(results_dir() + "/exp1_static.csv");
  return table;
}

}  // namespace wf::eval
