#include "eval/exp_transfer.hpp"

namespace wf::eval {

Exp2Result run_exp2_transfer(WikiScenario& scenario, const AttackerFactory& make_attacker) {
  const ScenarioConfig& cfg = scenario.config();
  const AttackerFactory make = make_attacker ? make_attacker : default_attacker_factory();
  Exp2Result result{
      util::Table({"New classes", "Top-1", "Top-3", "Top-5", "Top-10"}),
      util::Table({"New classes", "n for 90%", "n / classes"}),
  };

  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = cfg.samples_per_class;
  crawl.sequence = cfg.seq3;
  crawl.browser = cfg.browser;

  // Provision once, on the training site only.
  util::log_info() << "exp2: provisioning on " << cfg.transfer_train_classes << " classes";
  crawl.seed = cfg.crawl_seed;
  const data::Dataset train_dataset = data::build_dataset(
      scenario.wiki_site(cfg.transfer_train_classes), scenario.wiki_farm(), {}, crawl);
  const data::SampleSplit train_split =
      data::split_samples(train_dataset, cfg.train_samples_per_class, cfg.split_seed);
  const std::unique_ptr<core::Attacker> attacker = make(cfg.embedding3, cfg);
  attacker->train(train_split.first);

  for (const int classes : cfg.transfer_new_class_counts) {
    util::log_info() << "exp2: " << classes << " unseen classes";
    // A disjoint site: pages the model never saw during training.
    data::DatasetBuildOptions options = crawl;
    options.seed = cfg.crawl_seed + 500'000 + static_cast<std::uint64_t>(classes);
    const data::Dataset dataset =
        data::build_dataset(scenario.fresh_site(classes, static_cast<std::uint64_t>(classes)),
                            scenario.wiki_farm(), {}, options);
    const data::SampleSplit split =
        data::split_samples(dataset, cfg.train_samples_per_class, cfg.split_seed);
    attacker->set_references(split.first);

    const std::size_t max_n = std::min<std::size_t>(static_cast<std::size_t>(classes), 50);
    const core::EvaluationResult eval = attacker->evaluate(split.second, max_n);
    result.accuracy.add_row({std::to_string(classes), util::Table::pct(eval.curve.top(1)),
                             util::Table::pct(eval.curve.top(3)),
                             util::Table::pct(eval.curve.top(5)),
                             util::Table::pct(eval.curve.top(10))});

    // Table II: smallest n reaching 90% accuracy.
    std::size_t n90 = 0;
    for (std::size_t n = 1; n <= max_n; ++n) {
      if (eval.curve.top(n) >= 0.9) {
        n90 = n;
        break;
      }
    }
    result.table2.add_row(
        {std::to_string(classes), n90 > 0 ? std::to_string(n90) : "> " + std::to_string(max_n),
         n90 > 0
             ? util::Table::pct(static_cast<double>(n90) / static_cast<double>(classes))
             : "-"});
  }

  result.accuracy.write_csv(results_dir() + "/exp2_transfer.csv");
  result.table2.write_csv(results_dir() + "/exp2_table2.csv");
  return result;
}

}  // namespace wf::eval
