#include "eval/exp_costs.hpp"

#include "baselines/features.hpp"

namespace wf::eval {

namespace {

// One attacker's measured row: train (provision + target set), adapt one
// class, and per-trace test cost — all through the Attacker interface, so
// every system is timed on exactly the same operations.
void add_measured_row(util::Table& table, const std::string& label, core::Attacker& attacker,
                      const data::SampleSplit& split) {
  util::Stopwatch watch;
  attacker.train(split.first);
  const double provision_s = watch.seconds();

  const int probe_class = 0;
  const data::Dataset fresh =
      split.second.filter([probe_class](int l) { return l == probe_class; });
  watch.reset();
  attacker.adapt(probe_class, fresh);
  const double adapt_ms = watch.millis();

  // Per-trace latency path: one scalar ranking at a time.
  watch.reset();
  std::size_t tested = 0;
  for (std::size_t i = 0; i < split.second.size(); ++i, ++tested)
    attacker.fingerprint(split.second[i].features);
  const double test_ms = tested > 0 ? watch.millis() / static_cast<double>(tested) : 0.0;
  table.add_row({label, util::Table::num(provision_s, 2), util::Table::num(adapt_ms, 2),
                 util::Table::num(test_ms, 3)});
}

}  // namespace

CostResult run_cost_experiment(WikiScenario& scenario) {
  const ScenarioConfig& cfg = scenario.config();
  CostResult result{
      util::Table({"System", "Provisioning", "Target-set update", "Per-trace test"}),
      util::Table({"System", "Provisioning (s)", "Update one class (ms)", "Per-trace test (ms)"}),
  };

  // Table III as published: qualitative cost structure of the literature
  // systems (GPU-hours for CNNs, minutes for forests, one-off embedding
  // training plus free adaptation for this work).
  result.literature.add_row(
      {"DF / Var-CNN (CNN)", "hours (GPU)", "full retrain (hours)", "milliseconds"});
  result.literature.add_row(
      {"k-FP (forest)", "minutes", "full refit (minutes)", "milliseconds"});
  result.literature.add_row(
      {"Triplet FP (embedding)", "hours, once", "embed new refs (seconds)", "milliseconds"});
  result.literature.add_row(
      {"This work (adaptive embedding)", "hours, once", "reference swap (seconds)",
       "milliseconds"});

  // Measured on the simulated workload: every attacker of the registry,
  // timed on the same train/adapt/test operations through the shared
  // Attacker interface.
  const int classes = cfg.cost_classes;
  util::log_info() << "costs: measuring on " << classes << " classes";
  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = cfg.samples_per_class;
  crawl.sequence = cfg.seq3;
  crawl.browser = cfg.browser;
  crawl.seed = cfg.crawl_seed;
  const data::CaptureCorpus corpus = data::collect_captures(
      scenario.wiki_site(classes), scenario.wiki_farm(), {}, crawl);
  const data::Dataset dataset = data::encode_corpus(corpus, cfg.seq3);
  const data::SampleSplit split =
      data::split_samples(dataset, cfg.train_samples_per_class, cfg.split_seed);

  // This work: provision once, adapt by swap, test per trace — plus the
  // batched pipeline a bulk-monitoring deployment runs.
  {
    const std::unique_ptr<core::Attacker> attacker =
        attacker_factory("adaptive")(cfg.embedding3, cfg);
    add_measured_row(result.measured, "This work (adaptive embedding)", *attacker, split);
    util::Stopwatch watch;
    const std::size_t batched = attacker->fingerprint_batch(split.second).size();
    const double batched_ms =
        batched > 0 ? watch.millis() / static_cast<double>(batched) : 0.0;
    result.measured.add_row({"This work (batched pipeline)", "-", "-",
                             util::Table::num(batched_ms, 3)});
  }

  // Feature baselines over the k-FP summary statistics: the forest refits
  // on every target-set change; the feature k-NN swaps references but has
  // no learned metric.
  data::Dataset kfp_dataset(baselines::kfp_feature_dim());
  for (std::size_t i = 0; i < corpus.captures.size(); ++i)
    kfp_dataset.add({baselines::extract_kfp_features(corpus.captures[i]), corpus.labels[i]});
  const data::SampleSplit kfp_split =
      data::split_samples(kfp_dataset, cfg.train_samples_per_class, cfg.split_seed);
  {
    const std::unique_ptr<core::Attacker> forest =
        attacker_factory("forest")(cfg.embedding3, cfg);
    add_measured_row(result.measured, "k-FP (forest, full refit)", *forest, kfp_split);
  }
  {
    const std::unique_ptr<core::Attacker> kfp_knn =
        attacker_factory("kfp-knn")(cfg.embedding3, cfg);
    add_measured_row(result.measured, "k-FP features (k-NN, reference swap)", *kfp_knn,
                     kfp_split);
  }

  result.literature.write_csv(results_dir() + "/table3_literature.csv");
  result.measured.write_csv(results_dir() + "/table3_measured.csv");
  return result;
}

}  // namespace wf::eval
