#include "eval/exp_costs.hpp"

#include "baselines/features.hpp"
#include "baselines/random_forest.hpp"

namespace wf::eval {

CostResult run_cost_experiment(WikiScenario& scenario) {
  const ScenarioConfig& cfg = scenario.config();
  CostResult result{
      util::Table({"System", "Provisioning", "Target-set update", "Per-trace test"}),
      util::Table({"System", "Provisioning (s)", "Update one class (ms)", "Per-trace test (ms)"}),
  };

  // Table III as published: qualitative cost structure of the literature
  // systems (GPU-hours for CNNs, minutes for forests, one-off embedding
  // training plus free adaptation for this work).
  result.literature.add_row(
      {"DF / Var-CNN (CNN)", "hours (GPU)", "full retrain (hours)", "milliseconds"});
  result.literature.add_row(
      {"k-FP (forest)", "minutes", "full refit (minutes)", "milliseconds"});
  result.literature.add_row(
      {"Triplet FP (embedding)", "hours, once", "embed new refs (seconds)", "milliseconds"});
  result.literature.add_row(
      {"This work (adaptive embedding)", "hours, once", "reference swap (seconds)",
       "milliseconds"});

  // Measured on the simulated workload.
  const int classes = cfg.cost_classes;
  util::log_info() << "costs: measuring on " << classes << " classes";
  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = cfg.samples_per_class;
  crawl.sequence = cfg.seq3;
  crawl.browser = cfg.browser;
  crawl.seed = cfg.crawl_seed;
  const data::CaptureCorpus corpus = data::collect_captures(
      scenario.wiki_site(classes), scenario.wiki_farm(), {}, crawl);
  const data::Dataset dataset = data::encode_corpus(corpus, cfg.seq3);
  const data::SampleSplit split =
      data::split_samples(dataset, cfg.train_samples_per_class, cfg.split_seed);

  // This work: provision once, adapt by swap, test per trace.
  core::AdaptiveFingerprinter attacker(cfg.embedding3, cfg.knn_k, cfg.knn_shards);
  util::Stopwatch watch;
  attacker.provision(split.first);
  attacker.initialize(split.first);
  const double provision_s = watch.seconds();

  const int probe_class = 0;
  const data::Dataset fresh =
      split.second.filter([probe_class](int l) { return l == probe_class; });
  watch.reset();
  attacker.adapt_class(probe_class, fresh);
  const double adapt_ms = watch.millis();

  watch.reset();
  std::size_t tested = 0;
  for (std::size_t i = 0; i < split.second.size(); ++i, ++tested)
    attacker.fingerprint(split.second[i].features);
  const double test_ms = tested > 0 ? watch.millis() / static_cast<double>(tested) : 0.0;
  result.measured.add_row({"This work (adaptive embedding)", util::Table::num(provision_s, 2),
                           util::Table::num(adapt_ms, 2), util::Table::num(test_ms, 3)});

  // Same pipeline, amortized over the batched embed + rank path (the shape
  // a bulk-monitoring deployment runs).
  watch.reset();
  const std::size_t batched = attacker.fingerprint_batch(split.second).size();
  const double batched_ms =
      batched > 0 ? watch.millis() / static_cast<double>(batched) : 0.0;
  result.measured.add_row({"This work (batched pipeline)", util::Table::num(provision_s, 2),
                           util::Table::num(adapt_ms, 2), util::Table::num(batched_ms, 3)});

  // k-FP forest: refit on every target-set change.
  data::Dataset kfp_dataset(baselines::kfp_feature_dim());
  for (std::size_t i = 0; i < corpus.captures.size(); ++i)
    kfp_dataset.add({baselines::extract_kfp_features(corpus.captures[i]), corpus.labels[i]});
  const data::SampleSplit kfp_split =
      data::split_samples(kfp_dataset, cfg.train_samples_per_class, cfg.split_seed);
  baselines::RandomForest forest{baselines::ForestConfig{}};
  watch.reset();
  forest.fit(kfp_split.first);
  const double fit_s = watch.seconds();
  watch.reset();
  forest.fit(kfp_split.first);  // a target-set change forces a full refit
  const double refit_ms = watch.millis();
  watch.reset();
  tested = 0;
  for (std::size_t i = 0; i < kfp_split.second.size(); ++i, ++tested)
    forest.rank(kfp_split.second[i].features);
  const double forest_test_ms =
      tested > 0 ? watch.millis() / static_cast<double>(tested) : 0.0;
  result.measured.add_row({"k-FP (forest, full refit)", util::Table::num(fit_s, 2),
                           util::Table::num(refit_ms, 2), util::Table::num(forest_test_ms, 3)});

  result.literature.write_csv(results_dir() + "/table3_literature.csv");
  result.measured.write_csv(results_dir() + "/table3_measured.csv");
  return result;
}

}  // namespace wf::eval
