#include "eval/exp_distinguish.hpp"

#include <map>

#include "trace/defense.hpp"

namespace wf::eval {

namespace {

// Mean rank of the true label per class, over a test set. Embedding and
// ranking run through the batched pipeline; aggregation is sample-ordered.
std::map<int, double> mean_guesses_per_class(const core::Attacker& attacker,
                                             const data::Dataset& test,
                                             std::size_t fallback_rank) {
  std::map<int, std::pair<double, std::size_t>> acc;  // label -> (sum, count)
  const std::vector<std::vector<core::RankedLabel>> rankings = attacker.fingerprint_batch(test);
  for (std::size_t i = 0; i < test.size(); ++i) {
    const std::vector<core::RankedLabel>& ranking = rankings[i];
    std::size_t rank = fallback_rank;
    for (std::size_t r = 0; r < ranking.size(); ++r) {
      if (ranking[r].label == test[i].label) {
        rank = r + 1;
        break;
      }
    }
    auto& [sum, count] = acc[test[i].label];
    sum += static_cast<double>(rank);
    ++count;
  }
  std::map<int, double> means;
  for (const auto& [label, sc] : acc)
    means[label] = sc.first / static_cast<double>(sc.second);
  return means;
}

util::Table guess_cdf(const std::map<int, double>& means) {
  util::Table table({"Mean guesses <=", "Fraction of classes"});
  for (const double threshold : {1.0, 2.0, 3.0, 5.0, 10.0, 20.0}) {
    std::size_t below = 0;
    for (const auto& [label, mean] : means)
      if (mean <= threshold) ++below;
    table.add_row({util::Table::num(threshold, 0),
                   util::Table::pct(means.empty() ? 0.0
                                                  : static_cast<double>(below) /
                                                        static_cast<double>(means.size()))});
  }
  return table;
}

}  // namespace

Exp4Result run_exp4_distinguish(WikiScenario& scenario, const AttackerFactory& make_attacker) {
  const ScenarioConfig& cfg = scenario.config();
  const AttackerFactory make = make_attacker ? make_attacker : default_attacker_factory();
  const int classes = cfg.distinguish_classes;
  const std::size_t fallback = static_cast<std::size_t>(classes);

  data::DatasetBuildOptions crawl;
  crawl.samples_per_class = cfg.samples_per_class;
  crawl.sequence = cfg.seq3;
  crawl.browser = cfg.browser;
  crawl.seed = cfg.crawl_seed;

  util::log_info() << "exp4: provisioning on " << classes << " known classes";
  const data::CaptureCorpus corpus = data::collect_captures(
      scenario.wiki_site(classes), scenario.wiki_farm(), {}, crawl);
  const data::Dataset dataset = data::encode_corpus(corpus, cfg.seq3);
  const data::SampleSplit split =
      data::split_samples(dataset, cfg.train_samples_per_class, cfg.split_seed);
  const std::unique_ptr<core::Attacker> attacker = make(cfg.embedding3, cfg);
  attacker->train(split.first);

  // Fig. 9: known classes.
  const std::map<int, double> known = mean_guesses_per_class(*attacker, split.second, fallback);

  // Fig. 10: unseen classes from a disjoint site.
  util::log_info() << "exp4: unseen classes";
  data::DatasetBuildOptions unseen_crawl = crawl;
  unseen_crawl.seed = cfg.crawl_seed + 900'000;
  const data::Dataset unseen_dataset = data::build_dataset(
      scenario.fresh_site(classes, 4), scenario.wiki_farm(), {}, unseen_crawl);
  const data::SampleSplit unseen_split =
      data::split_samples(unseen_dataset, cfg.train_samples_per_class, cfg.split_seed);
  const std::unique_ptr<core::Attacker> transfer = attacker->clone();
  transfer->set_references(unseen_split.first);
  const std::map<int, double> unknown =
      mean_guesses_per_class(*transfer, unseen_split.second, fallback);

  // Fig. 11: known classes under fixed-length padding (defense applied to
  // both the reference crawl and the victim traffic).
  util::log_info() << "exp4: FL-padded classes";
  const trace::FixedLengthDefense defense = trace::FixedLengthDefense::fit(corpus.captures);
  const data::Dataset padded_dataset = data::encode_corpus(corpus, cfg.seq3, &defense, 9);
  const data::SampleSplit padded_split =
      data::split_samples(padded_dataset, cfg.train_samples_per_class, cfg.split_seed);
  const std::unique_ptr<core::Attacker> padded_attacker = attacker->clone();
  padded_attacker->set_references(padded_split.first);
  const std::map<int, double> padded =
      mean_guesses_per_class(*padded_attacker, padded_split.second, fallback);

  Exp4Result result{guess_cdf(known), guess_cdf(unknown), guess_cdf(padded)};
  result.known.write_csv(results_dir() + "/exp4_known.csv");
  result.unknown.write_csv(results_dir() + "/exp4_unknown.csv");
  result.padded.write_csv(results_dir() + "/exp4_padded.csv");
  return result;
}

}  // namespace wf::eval
