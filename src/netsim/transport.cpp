#include "netsim/transport.hpp"

#include <algorithm>
#include <vector>

#include "netsim/browser.hpp"
#include "netsim/connection.hpp"
#include "netsim/http2.hpp"
#include "util/rng.hpp"

namespace wf::netsim {

namespace {

// Frame one application payload as a TLS record (padding policy + record
// overhead) and push it through the connection's segmenter.
void send_tls_record(TcpConnection& conn, Direction dir, std::uint32_t app_payload,
                     TlsVersion tls, const RecordPaddingPolicy& padding, util::Rng& rng,
                     std::vector<Record>& out) {
  const std::uint32_t padded = pad_record_payload(app_payload, tls, padding, rng);
  conn.send_record(dir, padded + tls_record_overhead(tls), rng, out);
}

// TLS handshake over the segmented transport; record sizes mirror the
// record-level simulator (ClientHello, ServerHello + certificate chain,
// client Finished).
void tls_handshake(TcpConnection& conn, TlsVersion tls, const BrowserConfig& config,
                   util::Rng& rng, std::vector<Record>& out) {
  send_tls_record(conn, Direction::kOutgoing, 240 + static_cast<std::uint32_t>(rng.index(120)),
                  tls, config.record_padding, rng, out);
  conn.server_turnaround(rng);
  std::uint32_t hello = tls == TlsVersion::kTls12
                            ? 3'400 + static_cast<std::uint32_t>(rng.index(900))
                            : 2'300 + static_cast<std::uint32_t>(rng.index(600));
  while (hello > 0) {
    const std::uint32_t chunk = std::min(hello, config.max_record_payload);
    send_tls_record(conn, Direction::kIncoming, chunk, tls, config.record_padding, rng, out);
    hello -= chunk;
  }
  send_tls_record(conn, Direction::kOutgoing, 64 + static_cast<std::uint32_t>(rng.index(48)),
                  tls, config.record_padding, rng, out);
}

}  // namespace

PacketCapture load_page_packets(const Website& site, const ServerFarm& farm, int page_id,
                                const BrowserConfig& config, util::Rng& rng) {
  const TransportConfig& tc = config.transport;
  const HttpVersion http = tc.http == HttpVersion::kAuto ? site.http : tc.http;

  PacketCapture capture;
  capture.tls = site.tls;
  std::vector<Record>& out = capture.records;

  // Same fetch resolution (and Rng draw order) as the record-level loader.
  const std::vector<ResourceFetch> fetches = resolve_fetches(site, farm, page_id, config, rng);

  // Group response sizes per server, preserving page order.
  const std::size_t n_servers = farm.size();
  std::vector<std::vector<std::uint32_t>> per_server(n_servers);
  for (const ResourceFetch& f : fetches)
    per_server[static_cast<std::size_t>(f.server) % n_servers].push_back(f.bytes);

  for (std::size_t s = 0; s < n_servers; ++s) {
    const std::vector<std::uint32_t>& responses = per_server[s];
    if (responses.empty()) continue;
    const int server_idx = static_cast<int>(s);
    const Server& server = farm.server(server_idx);

    // HTTP/2 multiplexes every stream over one connection; HTTP/1.1 fans
    // out over up to `parallel_connections` connections.
    const int n_conns =
        http == HttpVersion::kHttp2
            ? 1
            : std::max(1, std::min(config.parallel_connections,
                                   static_cast<int>(responses.size())));

    std::vector<TcpConnection> conns;
    conns.reserve(static_cast<std::size_t>(n_conns));
    for (int c = 0; c < n_conns; ++c) {
      conns.emplace_back(tc, server, server_idx);
      conns.back().wait_until(rng.uniform(0.0, 1.5));  // connection stagger
      conns.back().handshake(rng, out);
      tls_handshake(conns.back(), site.tls, config, rng, out);
    }

    if (http == HttpVersion::kHttp2) {
      TcpConnection& conn = conns.front();
      // Request HEADERS frames go out back-to-back (HPACK keeps them
      // small), then the server answers each stream's HEADERS before the
      // round-robin DATA schedule.
      for (std::size_t r = 0; r < responses.size(); ++r)
        send_tls_record(conn, Direction::kOutgoing,
                        tc.h2_frame_header + 160 + static_cast<std::uint32_t>(rng.index(90)),
                        site.tls, config.record_padding, rng, out);
      conn.server_turnaround(rng);
      for (std::size_t r = 0; r < responses.size(); ++r)
        send_tls_record(conn, Direction::kIncoming,
                        tc.h2_frame_header + 120 + static_cast<std::uint32_t>(rng.index(80)),
                        site.tls, config.record_padding, rng, out);
      for (const RecordPlan& p : plan_http2(responses, tc.h2_frame_payload, tc.h2_frame_header))
        send_tls_record(conn, Direction::kIncoming, p.payload, site.tls,
                        config.record_padding, rng, out);
    } else {
      // HTTP/1.1: each response occupies its connection; the next request
      // goes to whichever connection frees up first.
      for (const std::uint32_t response : responses) {
        TcpConnection& conn = *std::min_element(
            conns.begin(), conns.end(),
            [](const TcpConnection& a, const TcpConnection& b) { return a.now() < b.now(); });
        send_tls_record(conn, Direction::kOutgoing,
                        320 + static_cast<std::uint32_t>(rng.index(180)), site.tls,
                        config.record_padding, rng, out);
        conn.server_turnaround(rng);
        // Response status line + headers, then the body records.
        send_tls_record(conn, Direction::kIncoming,
                        180 + static_cast<std::uint32_t>(rng.index(140)), site.tls,
                        config.record_padding, rng, out);
        for (const RecordPlan& p : plan_http1({response}, config.max_record_payload))
          send_tls_record(conn, Direction::kIncoming, p.payload, site.tls,
                          config.record_padding, rng, out);
      }
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const Record& a, const Record& b) { return a.time_ms < b.time_ms; });
  return capture;
}

}  // namespace wf::netsim
