#include "netsim/website.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace wf::netsim {

namespace {

// Log-normal-ish resource size in [lo, hi], biased towards the low end the
// way real web objects are.
std::uint32_t draw_size(util::Rng& rng, std::uint32_t lo, std::uint32_t hi) {
  const double u = rng.uniform();
  const double skewed = u * u;  // bias small
  return lo + static_cast<std::uint32_t>(skewed * static_cast<double>(hi - lo));
}

std::vector<std::vector<int>> make_links(int n_pages, int links_per_page, util::Rng& rng) {
  std::vector<std::vector<int>> links(static_cast<std::size_t>(n_pages));
  for (int p = 0; p < n_pages; ++p) {
    auto& out = links[static_cast<std::size_t>(p)];
    // A ring edge keeps the graph connected; the rest are random.
    out.push_back((p + 1) % n_pages);
    while (static_cast<int>(out.size()) < std::min(links_per_page, n_pages - 1)) {
      const int target = static_cast<int>(rng.index(static_cast<std::size_t>(n_pages)));
      if (target == p) continue;
      if (std::find(out.begin(), out.end(), target) != out.end()) continue;
      out.push_back(target);
    }
    std::sort(out.begin(), out.end());
  }
  return links;
}

std::vector<Resource> make_theme(int count, int n_servers, util::Rng& rng) {
  std::vector<Resource> theme;
  theme.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Resource r;
    r.server = (i == 0) ? 0 : static_cast<int>(rng.index(static_cast<std::size_t>(n_servers)));
    r.bytes = draw_size(rng, 2'000, 80'000);  // CSS/JS bundles, fonts, logo
    r.dynamic = false;
    theme.push_back(r);
  }
  return theme;
}

void fill_page_content(Page& page, util::Rng& rng, int n_servers, int min_resources,
                       int max_resources, std::uint32_t min_bytes, std::uint32_t max_bytes) {
  const int n = static_cast<int>(rng.range(min_resources, max_resources));
  for (int i = 0; i < n; ++i) {
    Resource r;
    // Content skews to the main host; media to the other servers.
    r.server = rng.bernoulli(0.55)
                   ? 0
                   : static_cast<int>(rng.index(static_cast<std::size_t>(n_servers)));
    r.bytes = draw_size(rng, min_bytes, max_bytes);
    r.dynamic = rng.bernoulli(0.25);
    page.resources.push_back(r);
  }
}

}  // namespace

Website make_wiki_site(const WikiSiteConfig& config) {
  util::Rng rng(config.seed * 0x5851f42d4c957f2dull + 11);
  Website site;
  site.name = "wiki";
  site.tls = config.tls;
  site.http = config.http;
  site.n_servers = config.n_servers;
  site.theme_resources = config.theme_resources;

  const std::vector<Resource> theme = make_theme(config.theme_resources, config.n_servers, rng);

  site.pages.resize(static_cast<std::size_t>(config.n_pages));
  for (int p = 0; p < config.n_pages; ++p) {
    Page& page = site.pages[static_cast<std::size_t>(p)];
    page.id = p;
    // The HTML document itself: per-page size, always from the main host.
    Resource html;
    html.server = 0;
    html.bytes = draw_size(rng, 8'000, 120'000);
    html.dynamic = true;
    page.resources.push_back(html);
    page.resources.insert(page.resources.end(), theme.begin(), theme.end());
    fill_page_content(page, rng, config.n_servers, config.min_content_resources,
                      config.max_content_resources, 1'000, 400'000);
  }
  site.links = make_links(config.n_pages, config.links_per_page, rng);
  return site;
}

Website make_github_site(const GithubSiteConfig& config) {
  util::Rng rng(config.seed * 0x2545f4914f6cdd1dull + 29);
  Website site;
  site.name = "github";
  site.tls = config.tls;
  site.http = config.http;
  site.n_servers = config.max_servers;
  site.theme_resources = config.theme_resources;

  const std::vector<Resource> theme = make_theme(config.theme_resources, 2, rng);

  site.pages.resize(static_cast<std::size_t>(config.n_pages));
  for (int p = 0; p < config.n_pages; ++p) {
    Page& page = site.pages[static_cast<std::size_t>(p)];
    page.id = p;
    Resource html;
    html.server = 0;
    html.bytes = draw_size(rng, 20'000, 200'000);
    html.dynamic = true;
    page.resources.push_back(html);
    page.resources.insert(page.resources.end(), theme.begin(), theme.end());
    // Variable per-page server count: some pages touch avatars/raw/api
    // hosts, others only the main pair.
    const int page_servers = static_cast<int>(rng.range(config.min_servers, config.max_servers));
    fill_page_content(page, rng, page_servers, config.min_content_resources,
                      config.max_content_resources, 500, 250'000);
  }
  site.links = make_links(config.n_pages, config.links_per_page, rng);
  return site;
}

void apply_content_drift(Website& site, double fraction, std::uint64_t seed) {
  util::Rng rng(seed * 0x9e3779b97f4a7c15ull + 3);
  const std::size_t content_start = 1 + static_cast<std::size_t>(site.theme_resources);
  for (Page& page : site.pages) {
    // Article text edited: the HTML document's size shifts.
    if (!page.resources.empty() && rng.bernoulli(fraction)) {
      Resource& html = page.resources.front();
      html.bytes = static_cast<std::uint32_t>(
          std::max(2'000.0, static_cast<double>(html.bytes) * rng.uniform(0.6, 1.5)));
    }
    // Content resources (past HTML + theme) are replaced wholesale.
    for (std::size_t i = content_start; i < page.resources.size(); ++i) {
      if (!rng.bernoulli(fraction)) continue;
      Resource& r = page.resources[i];
      const double u = rng.uniform();
      r.bytes = 1'000 + static_cast<std::uint32_t>(u * u * 399'000.0);
      r.dynamic = rng.bernoulli(0.25);
    }
    // Occasionally a content resource is added or removed entirely.
    if (rng.bernoulli(fraction * 0.5) && page.resources.size() > content_start + 1)
      page.resources.pop_back();
    if (rng.bernoulli(fraction * 0.5)) {
      Resource r;
      r.server = static_cast<int>(rng.index(static_cast<std::size_t>(site.n_servers)));
      const double u = rng.uniform();
      r.bytes = 1'000 + static_cast<std::uint32_t>(u * u * 399'000.0);
      r.dynamic = rng.bernoulli(0.25);
      page.resources.push_back(r);
    }
  }
}

}  // namespace wf::netsim
