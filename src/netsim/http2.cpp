#include "netsim/http2.hpp"

#include <algorithm>

namespace wf::netsim {

std::vector<RecordPlan> plan_http1(const std::vector<std::uint32_t>& response_bytes,
                                   std::uint32_t max_record) {
  const std::uint32_t chunk_max = std::max<std::uint32_t>(1, max_record);
  std::vector<RecordPlan> plan;
  for (std::size_t stream = 0; stream < response_bytes.size(); ++stream) {
    std::uint32_t remaining = response_bytes[stream];
    while (remaining > 0) {
      const std::uint32_t chunk = std::min(remaining, chunk_max);
      remaining -= chunk;
      plan.push_back({static_cast<int>(stream), chunk, remaining == 0});
    }
  }
  return plan;
}

std::vector<RecordPlan> plan_http2(const std::vector<std::uint32_t>& response_bytes,
                                   std::uint32_t frame_payload, std::uint32_t frame_header) {
  const std::uint32_t chunk_max = std::max<std::uint32_t>(1, frame_payload);
  std::vector<std::uint32_t> remaining = response_bytes;
  std::vector<RecordPlan> plan;
  bool active = true;
  while (active) {
    active = false;
    for (std::size_t stream = 0; stream < remaining.size(); ++stream) {
      if (remaining[stream] == 0) continue;
      const std::uint32_t chunk = std::min(remaining[stream], chunk_max);
      remaining[stream] -= chunk;
      plan.push_back(
          {static_cast<int>(stream), chunk + frame_header, remaining[stream] == 0});
      active = active || remaining[stream] > 0;
    }
  }
  return plan;
}

}  // namespace wf::netsim
