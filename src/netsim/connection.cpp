#include "netsim/connection.hpp"

#include <algorithm>

namespace wf::netsim {

namespace {

Direction opposite(Direction dir) {
  return dir == Direction::kIncoming ? Direction::kOutgoing : Direction::kIncoming;
}

Record packet(double time_ms, Direction dir, std::uint32_t wire_bytes, int server) {
  Record r;
  r.time_ms = time_ms;
  r.direction = dir;
  r.wire_bytes = wire_bytes;
  r.server = server;
  return r;
}

}  // namespace

TcpConnection::TcpConnection(const TransportConfig& config, const Server& server,
                             int server_index)
    : config_(config),
      server_(server),
      server_index_(server_index),
      ms_per_byte_(8.0 / (server.mbps * 1e6) * 1e3),
      cwnd_(std::max<std::uint32_t>(1, config.initial_cwnd)) {}

void TcpConnection::handshake(util::Rng& rng, std::vector<Record>& out) {
  // SYN and SYN-ACK carry TCP options (MSS, window scale, SACK).
  const std::uint32_t syn_bytes = config_.packet_overhead + 12;
  out.push_back(packet(clock_ms_, Direction::kOutgoing, syn_bytes, server_index_));
  const double syn_ack =
      clock_ms_ + server_.latency_ms + rng.uniform(0.0, server_.jitter_ms);
  out.push_back(packet(syn_ack, Direction::kIncoming, syn_bytes, server_index_));
  out.push_back(
      packet(syn_ack + 0.05, Direction::kOutgoing, config_.packet_overhead, server_index_));
  clock_ms_ = syn_ack + 0.05;
}

void TcpConnection::emit_segment(Direction dir, std::uint32_t payload, util::Rng& rng,
                                 std::vector<Record>& out) {
  if (segments_in_round_ >= cwnd_) {
    // Window exhausted: stall until the round's ACKs return, then grow.
    clock_ms_ = std::max(clock_ms_, round_ack_ms_);
    cwnd_ = std::min(cwnd_ * 2, std::max(config_.initial_cwnd, config_.max_cwnd));
    segments_in_round_ = 0;
  }
  clock_ms_ += static_cast<double>(payload) * ms_per_byte_;
  double observed = dir == Direction::kIncoming
                        ? clock_ms_ + server_.latency_ms +
                              rng.uniform(0.0, server_.jitter_ms) * 0.25
                        : clock_ms_;
  // iid loss upstream of the observation point: the original copy never
  // reaches the observer; the retransmission shows up one RTO later (and
  // may itself be lost again). The guard keeps loss-free runs off the Rng.
  if (config_.loss_probability > 0.0)
    while (rng.bernoulli(config_.loss_probability)) observed += config_.rto_ms;
  out.push_back(packet(observed, dir, payload + config_.packet_overhead, server_index_));
  ++data_packets_;
  ++segments_in_round_;
  round_ack_ms_ = observed + server_.latency_ms;
  if (config_.ack_every > 0 && ++since_ack_ >= config_.ack_every) {
    since_ack_ = 0;
    out.push_back(
        packet(observed + 0.02, opposite(dir), config_.packet_overhead, server_index_));
  }
}

void TcpConnection::send_record(Direction dir, std::uint32_t record_bytes, util::Rng& rng,
                                std::vector<Record>& out) {
  const std::uint32_t mss = std::max<std::uint32_t>(1, config_.mss);
  std::uint32_t remaining = record_bytes;
  while (remaining > 0) {
    const std::uint32_t payload = std::min(remaining, mss);
    emit_segment(dir, payload, rng, out);
    remaining -= payload;
  }
}

}  // namespace wf::netsim
