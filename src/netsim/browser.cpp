#include "netsim/browser.hpp"

#include <algorithm>
#include <stdexcept>

namespace wf::netsim {

std::uint64_t PacketCapture::total_bytes() const {
  std::uint64_t total = 0;
  for (const Record& r : records) total += r.wire_bytes;
  return total;
}

std::uint64_t PacketCapture::bytes(Direction direction) const {
  std::uint64_t total = 0;
  for (const Record& r : records)
    if (r.direction == direction) total += r.wire_bytes;
  return total;
}

ServerFarm ServerFarm::for_wiki() {
  ServerFarm farm;
  farm.servers = {
      {18.0, 3.0, 90.0},   // main article host
      {24.0, 5.0, 120.0},  // upload/media host
      {9.0, 2.0, 200.0},   // CDN edge
  };
  return farm;
}

ServerFarm ServerFarm::for_github() {
  ServerFarm farm;
  farm.servers = {
      {28.0, 6.0, 110.0},  // main host
      {12.0, 3.0, 220.0},  // assets CDN
      {30.0, 8.0, 90.0},   // avatars
      {32.0, 8.0, 140.0},  // raw content
      {26.0, 5.0, 100.0},  // api
  };
  return farm;
}

std::uint32_t tls_record_overhead(TlsVersion tls) {
  return tls == TlsVersion::kTls12 ? 29 : 22;
}

std::uint32_t pad_record_payload(std::uint32_t payload, TlsVersion tls,
                                 const RecordPaddingPolicy& policy, util::Rng& rng) {
  if (tls != TlsVersion::kTls13) return payload;  // RFC 8446 §5.4 is 1.3-only
  switch (policy.kind) {
    case RecordPaddingPolicy::Kind::kNone:
      return payload;
    case RecordPaddingPolicy::Kind::kRandom:
      return payload + static_cast<std::uint32_t>(rng.index(std::max<std::uint32_t>(1, policy.param)));
    case RecordPaddingPolicy::Kind::kPadToMultiple: {
      const std::uint32_t m = std::max<std::uint32_t>(1, policy.param);
      return ((payload + m - 1) / m) * m;
    }
    case RecordPaddingPolicy::Kind::kFixedRecord:
      return std::max(payload, policy.param);
  }
  return payload;
}

namespace {

struct Emitter {
  PacketCapture* capture;
  TlsVersion tls;
  const RecordPaddingPolicy* padding;
  util::Rng* rng;

  void emit(double time_ms, Direction direction, std::uint32_t payload, int server) {
    const std::uint32_t padded = pad_record_payload(payload, tls, *padding, *rng);
    Record record;
    record.time_ms = time_ms;
    record.direction = direction;
    record.wire_bytes = padded + tls_record_overhead(tls);
    record.server = server;
    capture->records.push_back(record);
  }
};

}  // namespace

std::vector<ResourceFetch> resolve_fetches(const Website& site, const ServerFarm& farm,
                                           int page_id, const BrowserConfig& config,
                                           util::Rng& rng) {
  if (page_id < 0 || static_cast<std::size_t>(page_id) >= site.pages.size())
    throw std::out_of_range("load_page: bad page id");
  const Page& page = site.pages[static_cast<std::size_t>(page_id)];

  std::vector<ResourceFetch> fetches;
  fetches.reserve(page.resources.size() + 1);
  const std::size_t theme_end = 1 + static_cast<std::size_t>(site.theme_resources);
  for (std::size_t i = 0; i < page.resources.size(); ++i) {
    const Resource& r = page.resources[i];
    // Shared theme resources are sometimes served from the browser cache
    // and never hit the wire (the HTML document itself always does).
    if (i >= 1 && i < theme_end && rng.bernoulli(config.cache_hit_prob)) continue;
    double bytes = static_cast<double>(r.bytes);
    const double jitter = r.dynamic ? config.size_jitter * 4.0 : config.size_jitter;
    bytes *= 1.0 + rng.normal(0.0, jitter);
    fetches.push_back({r.server, static_cast<std::uint32_t>(std::max(64.0, bytes))});
  }
  if (rng.bernoulli(config.extra_resource_prob)) {
    // Transient third-party fetch: analytics beacon, ad, API poll.
    fetches.push_back({static_cast<int>(rng.index(farm.size())),
                       static_cast<std::uint32_t>(800 + rng.index(8'000))});
  }
  return fetches;
}

PacketCapture load_page(const Website& site, const ServerFarm& farm, int page_id,
                        const BrowserConfig& config, util::Rng& rng) {
  if (config.transport.enabled) return load_page_packets(site, farm, page_id, config, rng);

  PacketCapture capture;
  capture.tls = site.tls;
  Emitter emitter{&capture, site.tls, &config.record_padding, &rng};

  const std::vector<ResourceFetch> fetches = resolve_fetches(site, farm, page_id, config, rng);

  // Per-server connection state: the time its pipeline is next free.
  const std::size_t n_servers = farm.size();
  std::vector<double> free_at(n_servers, 0.0);
  std::vector<bool> connected(n_servers, false);

  const auto ensure_connection = [&](int server_idx) {
    const std::size_t s = static_cast<std::size_t>(server_idx) % n_servers;
    if (connected[s]) return;
    connected[s] = true;
    const Server& server = farm.server(server_idx);
    double t = free_at[s] + rng.uniform(0.0, 1.5);  // connection stagger
    // ClientHello.
    emitter.emit(t, Direction::kOutgoing, 240 + static_cast<std::uint32_t>(rng.index(120)),
                 server_idx);
    t += server.latency_ms + rng.uniform(0.0, server.jitter_ms);
    // ServerHello + certificate chain (larger over 1.2: no cert compression).
    std::uint32_t hello = site.tls == TlsVersion::kTls12
                              ? 3'400 + static_cast<std::uint32_t>(rng.index(900))
                              : 2'300 + static_cast<std::uint32_t>(rng.index(600));
    while (hello > 0) {
      const std::uint32_t chunk = std::min(hello, config.max_record_payload);
      emitter.emit(t, Direction::kIncoming, chunk, server_idx);
      t += 0.05;
      hello -= chunk;
    }
    // Client Finished (+ session ticket ack).
    emitter.emit(t + 0.2, Direction::kOutgoing, 64 + static_cast<std::uint32_t>(rng.index(48)),
                 server_idx);
    free_at[s] = t + 0.4;
  };

  const double parallel =
      static_cast<double>(std::max(1, config.parallel_connections));
  for (const ResourceFetch& fetch : fetches) {
    const std::size_t s = static_cast<std::size_t>(fetch.server) % n_servers;
    ensure_connection(fetch.server);
    const Server& server = farm.server(fetch.server);

    // HTTP request record.
    double t = free_at[s];
    emitter.emit(t, Direction::kOutgoing, 320 + static_cast<std::uint32_t>(rng.index(180)),
                 fetch.server);
    // First response byte after one RTT-ish latency.
    t += server.latency_ms + rng.uniform(0.0, server.jitter_ms);

    // Response split into TLS records, paced by server throughput.
    const double ms_per_byte = 8.0 / (server.mbps * 1e6) * 1e3;
    std::uint32_t remaining = fetch.bytes;
    while (remaining > 0) {
      const std::uint32_t chunk = std::min(remaining, config.max_record_payload);
      t += static_cast<double>(chunk) * ms_per_byte;
      emitter.emit(t, Direction::kIncoming, chunk, fetch.server);
      remaining -= chunk;
    }
    // Pipelined connections overlap fetches: the next request on this
    // server starts before this response fully drains.
    free_at[s] += (t - free_at[s]) / parallel;
  }

  std::stable_sort(capture.records.begin(), capture.records.end(),
                   [](const Record& a, const Record& b) { return a.time_ms < b.time_ms; });
  return capture;
}

}  // namespace wf::netsim
