#include "data/pairs.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace wf::data {

namespace {
constexpr std::size_t kHardPool = 5;  // candidate classes per hard negative
}

PairGenerator::PairGenerator(const Dataset& dataset, PairStrategy strategy, std::uint64_t seed)
    : dataset_(&dataset), strategy_(strategy), rng_(seed * 0x6c62272e07bb0142ull + 5) {
  if (dataset.empty()) throw std::invalid_argument("PairGenerator: empty dataset");
  std::map<int, std::size_t> position;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const int label = dataset[i].label;
    auto [it, inserted] = position.emplace(label, classes_.size());
    if (inserted) {
      classes_.push_back(label);
      by_class_.emplace_back();
    }
    by_class_[it->second].push_back(i);
  }
  if (classes_.size() < 2)
    throw std::invalid_argument("PairGenerator: need at least two classes");

  if (strategy_ == PairStrategy::kHardNegative) {
    // Class centroids in input space; each class's hard negatives are the
    // classes with the closest centroids.
    const std::size_t dim = dataset.feature_dim();
    nn::Matrix centroids(classes_.size(), dim);
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      for (const std::size_t i : by_class_[c]) {
        const auto& f = dataset[i].features;
        for (std::size_t d = 0; d < dim; ++d) centroids(c, d) += f[d];
      }
      const float inv = 1.0f / static_cast<float>(by_class_[c].size());
      for (std::size_t d = 0; d < dim; ++d) centroids(c, d) *= inv;
    }
    hard_neighbours_.resize(classes_.size());
    std::vector<std::pair<double, std::size_t>> dist;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      dist.clear();
      for (std::size_t o = 0; o < classes_.size(); ++o) {
        if (o == c) continue;
        dist.emplace_back(nn::squared_distance(centroids.row_span(c), centroids.row_span(o)), o);
      }
      const std::size_t keep = std::min(kHardPool, dist.size());
      std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(keep),
                        dist.end());
      for (std::size_t i = 0; i < keep; ++i) hard_neighbours_[c].push_back(dist[i].second);
    }
  }
}

std::size_t PairGenerator::sample_of_class(std::size_t class_pos) {
  const auto& pool = by_class_[class_pos];
  return pool[rng_.index(pool.size())];
}

std::size_t PairGenerator::negative_class_for(std::size_t class_pos) {
  if (strategy_ == PairStrategy::kHardNegative && !hard_neighbours_[class_pos].empty()) {
    const auto& pool = hard_neighbours_[class_pos];
    return pool[rng_.index(pool.size())];
  }
  std::size_t other = rng_.index(classes_.size() - 1);
  if (other >= class_pos) ++other;
  return other;
}

SamplePair PairGenerator::next() {
  SamplePair pair;
  pair.positive = next_positive_;
  next_positive_ = !next_positive_;
  const std::size_t anchor_class = rng_.index(classes_.size());
  pair.a = sample_of_class(anchor_class);
  if (pair.positive) {
    // Same class, preferring a distinct sample.
    pair.b = sample_of_class(anchor_class);
    if (pair.b == pair.a && by_class_[anchor_class].size() > 1) {
      while (pair.b == pair.a) pair.b = sample_of_class(anchor_class);
    }
  } else {
    pair.b = sample_of_class(negative_class_for(anchor_class));
  }
  return pair;
}

std::vector<SamplePair> PairGenerator::batch(std::size_t n) {
  std::vector<SamplePair> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

SampleTriplet PairGenerator::next_triplet() {
  SampleTriplet t;
  const std::size_t anchor_class = rng_.index(classes_.size());
  t.anchor = sample_of_class(anchor_class);
  t.positive = sample_of_class(anchor_class);
  if (t.positive == t.anchor && by_class_[anchor_class].size() > 1) {
    while (t.positive == t.anchor) t.positive = sample_of_class(anchor_class);
  }
  t.negative = sample_of_class(negative_class_for(anchor_class));
  return t;
}

}  // namespace wf::data
