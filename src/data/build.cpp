#include "data/build.hpp"

#include <numeric>

namespace wf::data {

CaptureCorpus collect_captures(const netsim::Website& site, const netsim::ServerFarm& farm,
                               const std::vector<int>& pages,
                               const DatasetBuildOptions& options) {
  std::vector<int> targets = pages;
  if (targets.empty()) {
    targets.resize(site.pages.size());
    std::iota(targets.begin(), targets.end(), 0);
  }
  CaptureCorpus corpus;
  corpus.captures.reserve(targets.size() * static_cast<std::size_t>(options.samples_per_class));
  corpus.labels.reserve(corpus.captures.capacity());
  util::Rng crawl_rng(options.seed);
  for (const int page : targets) {
    // Every page gets its own deterministic stream so crawling a subset of
    // pages yields byte-identical traces to crawling the full site.
    util::Rng page_rng = crawl_rng.fork(static_cast<std::uint64_t>(page));
    for (int s = 0; s < options.samples_per_class; ++s) {
      corpus.captures.push_back(netsim::load_page(site, farm, page, options.browser, page_rng));
      corpus.labels.push_back(page);
    }
  }
  return corpus;
}

Dataset encode_corpus(const CaptureCorpus& corpus, const trace::SequenceOptions& sequence,
                      const trace::FixedLengthDefense* defense, std::uint64_t defense_seed) {
  Dataset dataset(sequence.feature_dim());
  util::Rng defense_rng(defense_seed * 0x9e3779b97f4a7c15ull + 17);
  for (std::size_t i = 0; i < corpus.captures.size(); ++i) {
    if (defense != nullptr) {
      const netsim::PacketCapture padded = defense->apply(corpus.captures[i], defense_rng);
      dataset.add({trace::encode_capture(padded, sequence), corpus.labels[i]});
    } else {
      dataset.add({trace::encode_capture(corpus.captures[i], sequence), corpus.labels[i]});
    }
  }
  return dataset;
}

Dataset build_dataset(const netsim::Website& site, const netsim::ServerFarm& farm,
                      const std::vector<int>& pages, const DatasetBuildOptions& options) {
  return encode_corpus(collect_captures(site, farm, pages, options), options.sequence);
}

}  // namespace wf::data
