#include "data/build.hpp"

#include <numeric>

#include "util/thread_pool.hpp"

namespace wf::data {

CaptureCorpus collect_captures(const netsim::Website& site, const netsim::ServerFarm& farm,
                               const std::vector<int>& pages,
                               const DatasetBuildOptions& options, util::ThreadPool& pool) {
  std::vector<int> targets = pages;
  if (targets.empty()) {
    targets.resize(site.pages.size());
    std::iota(targets.begin(), targets.end(), 0);
  }
  const std::size_t per_page = static_cast<std::size_t>(options.samples_per_class);
  CaptureCorpus corpus;
  corpus.captures.resize(targets.size() * per_page);
  corpus.labels.resize(corpus.captures.size());
  const util::Rng crawl_rng(options.seed);
  // One task per page. Every page gets its own deterministic stream forked
  // off the crawl seed, and writes a fixed slot range, so the corpus is
  // byte-identical for any thread count — and to crawling a page subset.
  pool.parallel_for(0, targets.size(), [&](std::size_t pi) {
    const int page = targets[pi];
    util::Rng page_rng = crawl_rng.fork(static_cast<std::uint64_t>(page));
    for (std::size_t s = 0; s < per_page; ++s) {
      const std::size_t slot = pi * per_page + s;
      corpus.captures[slot] = netsim::load_page(site, farm, page, options.browser, page_rng);
      corpus.labels[slot] = page;
    }
  });
  return corpus;
}

CaptureCorpus collect_captures(const netsim::Website& site, const netsim::ServerFarm& farm,
                               const std::vector<int>& pages,
                               const DatasetBuildOptions& options) {
  return collect_captures(site, farm, pages, options, util::global_pool());
}

Dataset encode_corpus(const CaptureCorpus& corpus, const trace::SequenceOptions& sequence,
                      const trace::FixedLengthDefense* defense, std::uint64_t defense_seed) {
  Dataset dataset(sequence.feature_dim());
  if (defense == nullptr) {
    // Encoding is pure per capture: encode in parallel, append in order.
    std::vector<std::vector<float>> features(corpus.captures.size());
    util::global_pool().parallel_for(0, corpus.captures.size(), [&](std::size_t i) {
      features[i] = trace::encode_capture(corpus.captures[i], sequence);
    });
    for (std::size_t i = 0; i < corpus.captures.size(); ++i)
      dataset.add({std::move(features[i]), corpus.labels[i]});
    return dataset;
  }
  // The defense draws from one sequential stream; keep this path serial so
  // padded corpora stay identical to previous releases.
  util::Rng defense_rng(defense_seed * 0x9e3779b97f4a7c15ull + 17);
  for (std::size_t i = 0; i < corpus.captures.size(); ++i) {
    const netsim::PacketCapture padded = defense->apply(corpus.captures[i], defense_rng);
    dataset.add({trace::encode_capture(padded, sequence), corpus.labels[i]});
  }
  return dataset;
}

Dataset build_dataset(const netsim::Website& site, const netsim::ServerFarm& farm,
                      const std::vector<int>& pages, const DatasetBuildOptions& options) {
  return encode_corpus(collect_captures(site, farm, pages, options), options.sequence);
}

}  // namespace wf::data
