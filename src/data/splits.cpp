#include "data/splits.hpp"

#include <map>
#include <vector>

#include "util/rng.hpp"

namespace wf::data {

SampleSplit split_samples(const Dataset& dataset, int n_first_per_class, std::uint64_t seed) {
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < dataset.size(); ++i) by_class[dataset[i].label].push_back(i);

  SampleSplit split{Dataset(dataset.feature_dim()), Dataset(dataset.feature_dim())};
  util::Rng rng(seed);
  for (auto& [label, indices] : by_class) {
    // Fisher-Yates with the shared deterministic stream.
    for (std::size_t i = indices.size(); i > 1; --i)
      std::swap(indices[i - 1], indices[rng.index(i)]);
    for (std::size_t rank = 0; rank < indices.size(); ++rank) {
      const Sample& sample = dataset[indices[rank]];
      if (rank < static_cast<std::size_t>(n_first_per_class)) split.first.add(sample);
      else split.second.add(sample);
    }
  }
  return split;
}

}  // namespace wf::data
