#include "util/log.hpp"

#include <iostream>

namespace wf::util {

LogLine::~LogLine() {
  if (moved_from_) return;
  std::cerr << "[wf " << level_ << "] " << stream_.str() << "\n";
}

LogLine log_info() { return LogLine("info"); }
LogLine log_warn() { return LogLine("warn"); }

}  // namespace wf::util
