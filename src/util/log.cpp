#include "util/log.hpp"

#include <iostream>
#include <mutex>

#include "util/env.hpp"

namespace wf::util {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug:
      return "debug";
    case LogLevel::info:
      return "info";
    case LogLevel::warn:
      return "warn";
  }
  return "info";
}

std::mutex& log_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

LogLevel log_threshold() {
  const std::string level = Env::log_level();
  if (level == "debug") return LogLevel::debug;
  if (level == "warn") return LogLevel::warn;
  return LogLevel::info;
}

LogLine::~LogLine() {
  if (moved_from_) return;
  if (static_cast<int>(level_) < static_cast<int>(log_threshold())) return;
  // Build the full line first, then emit under the mutex: concurrent log
  // lines serialize whole, never character-interleaved.
  const std::string line = stream_.str();
  const std::lock_guard<std::mutex> lock(log_mutex());
  std::cerr << "[wf " << level_name(level_) << "] " << line << "\n";
}

LogLine log_debug() { return LogLine(LogLevel::debug); }
LogLine log_info() { return LogLine(LogLevel::info); }
LogLine log_warn() { return LogLine(LogLevel::warn); }

}  // namespace wf::util
