#include "util/bench_report.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/env.hpp"
#include "util/log.hpp"

namespace wf::util {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) break;  // drop other control chars
        out += c;
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream os;
  os.precision(12);
  os << value;
  return os.str();
}

}  // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  param("smoke", Env::smoke() ? 1.0 : 0.0);
}

void BenchReport::param(const std::string& key, const std::string& value) {
  std::string rendered(1, '"');
  rendered += json_escape(value);
  rendered += '"';
  params_.emplace_back(key, std::move(rendered));
}

void BenchReport::param(const std::string& key, double value) {
  params_.emplace_back(key, json_number(value));
}

void BenchReport::metric(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}

void BenchReport::write(const std::string& dir) const {
  const std::string path = dir + "/bench_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    log_warn() << "BenchReport: cannot write " << path;
    return;
  }
  out << "{\n  \"name\": \"" << json_escape(name_) << "\",\n  \"params\": {";
  for (std::size_t i = 0; i < params_.size(); ++i)
    out << (i ? ", " : "") << "\"" << json_escape(params_[i].first)
        << "\": " << params_[i].second;
  out << "},\n  \"metrics\": {";
  for (const auto& [key, value] : metrics_)
    out << "\"" << json_escape(key) << "\": " << json_number(value) << ", ";
  out << "\"wall_seconds\": " << json_number(watch_.seconds()) << "}\n}\n";
}

}  // namespace wf::util
