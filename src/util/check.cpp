#include "util/check.hpp"

namespace wf::util {

void check_failed(const char* expr, const char* file, int line, const std::string& message) {
  std::string what = "WF_CHECK failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  if (!message.empty()) {
    what += " (";
    what += message;
    what += ")";
  }
  throw CheckError(what);
}

}  // namespace wf::util
