#include "util/thread_pool.hpp"

#include "util/check.hpp"
#include "util/env.hpp"

namespace wf::util {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) n_threads = default_thread_count();
  workers_.reserve(n_threads - 1);
  for (std::size_t i = 0; i + 1 < n_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::default_thread_count() {
  if (const std::size_t configured = Env::threads(); configured > 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool& ThreadPool::in_worker() {
  thread_local bool flag = false;
  return flag;
}

void ThreadPool::worker_loop() {
  in_worker() = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue before shutting down so pending shards complete.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::run_chunks(ShardState& state) {
  while (!state.failed.load(std::memory_order_relaxed)) {
    const std::size_t lo = state.next.fetch_add(state.chunk, std::memory_order_relaxed);
    if (lo >= state.end) break;
    const std::size_t hi = std::min(state.end, lo + state.chunk);
    try {
      (*state.body)(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state.mutex);
      if (!state.error) state.error = std::current_exception();
      state.failed.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::dispatch(std::size_t begin, std::size_t end, std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& fn) {
  const std::size_t n = end - begin;
  WF_DCHECK(n > 0, "dispatch: empty range should have been handled inline");
  ShardState state;
  state.next.store(begin);
  state.end = end;
  // Several chunks per executor so uneven work still balances.
  state.chunk = std::max(grain, (n + 4 * size() - 1) / (4 * size()));
  WF_DCHECK(state.chunk > 0, "dispatch: zero chunk would spin forever");
  state.body = &fn;

  const std::size_t n_chunks = (n + state.chunk - 1) / state.chunk;
  const std::size_t runners = std::min(workers_.size(), n_chunks > 0 ? n_chunks - 1 : 0);
  state.pending = static_cast<int>(runners);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (std::size_t r = 0; r < runners; ++r) {
      queue_.push_back([&state] {
        run_chunks(state);
        std::lock_guard<std::mutex> state_lock(state.mutex);
        if (--state.pending == 0) state.done.notify_all();
      });
    }
  }
  queue_cv_.notify_all();

  run_chunks(state);  // the caller works too
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done.wait(lock, [&state] { return state.pending == 0; });
  }
  if (state.error) std::rethrow_exception(state.error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace wf::util
