#include "util/env.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <mutex>
#include <optional>

#include "util/log.hpp"

namespace wf::util {

namespace {

struct Overrides {
  std::optional<bool> smoke;
  std::optional<std::size_t> threads;
  std::optional<std::size_t> shards;
  std::optional<std::string> results_dir;
  std::optional<std::size_t> serve_timeout_ms;
  std::optional<bool> obs;
  std::optional<std::string> log_level;
  std::optional<std::string> simd;
  std::mutex mutex;
};

Overrides& overrides() {
  static Overrides state;
  return state;
}

// Positive integer from `name`, clamped to [1, max]; 0 when unset/invalid.
// A value with a non-numeric suffix ("4x") is rejected as a whole — and
// warned about, since silently reading it as 4 would misconfigure a
// long-running process — instead of strtol's stop-at-garbage parse.
std::size_t parse_count(const char* name, long max) {
  const char* env = std::getenv(name);
  if (env == nullptr) return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') {
    log_warn() << name << "=\"" << env << "\" is not an integer; falling back to auto";
    return 0;
  }
  if (v < 1) return 0;
  return static_cast<std::size_t>(std::min(v, max));
}

// "0", "false", "off" and "no" (any case) read as disabled; any other
// non-empty value enables the flag, so WF_SMOKE=1 keeps working.
bool parse_flag(const char* env) {
  if (env == nullptr || env[0] == '\0') return env != nullptr;
  std::string value(env);
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return value != "0" && value != "false" && value != "off" && value != "no";
}

}  // namespace

bool Env::smoke() {
  {
    std::lock_guard<std::mutex> lock(overrides().mutex);
    if (overrides().smoke) return *overrides().smoke;
  }
  return parse_flag(std::getenv("WF_SMOKE"));
}

std::size_t Env::threads() {
  {
    std::lock_guard<std::mutex> lock(overrides().mutex);
    if (overrides().threads) return *overrides().threads;
  }
  return parse_count("WF_THREADS", 512);
}

std::size_t Env::shards() {
  {
    std::lock_guard<std::mutex> lock(overrides().mutex);
    if (overrides().shards) return *overrides().shards;
  }
  return parse_count("WF_SHARDS", 4096);
}

std::string Env::results_dir() {
  {
    std::lock_guard<std::mutex> lock(overrides().mutex);
    if (overrides().results_dir) return *overrides().results_dir;
  }
  const char* env = std::getenv("WF_RESULTS_DIR");
  return (env != nullptr && env[0] != '\0') ? env : "results";
}

std::size_t Env::serve_timeout_ms() {
  {
    std::lock_guard<std::mutex> lock(overrides().mutex);
    if (overrides().serve_timeout_ms) return *overrides().serve_timeout_ms;
  }
  return parse_count("WF_SERVE_TIMEOUT_MS", 3600000);
}

bool Env::obs() {
  {
    std::lock_guard<std::mutex> lock(overrides().mutex);
    if (overrides().obs) return *overrides().obs;
  }
  return parse_flag(std::getenv("WF_OBS"));
}

std::string Env::log_level() {
  std::string value;
  {
    std::lock_guard<std::mutex> lock(overrides().mutex);
    if (overrides().log_level) value = *overrides().log_level;
  }
  if (value.empty()) {
    const char* env = std::getenv("WF_LOG_LEVEL");
    if (env != nullptr) value = env;
  }
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  // Unknown spellings read as the default rather than warning: this is
  // called from the log flush path itself, where emitting would recurse.
  if (value != "debug" && value != "warn") return "info";
  return value;
}

std::string Env::simd() {
  std::string value;
  {
    std::lock_guard<std::mutex> lock(overrides().mutex);
    if (overrides().simd) value = *overrides().simd;
  }
  if (value.empty()) {
    const char* env = std::getenv("WF_SIMD");
    if (env != nullptr) value = env;
  }
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (value.empty()) return "auto";
  return value;
}

void Env::override_simd(std::string mode) {
  std::lock_guard<std::mutex> lock(overrides().mutex);
  overrides().simd = std::move(mode);
}

void Env::override_obs(bool obs) {
  std::lock_guard<std::mutex> lock(overrides().mutex);
  overrides().obs = obs;
}

void Env::override_log_level(std::string level) {
  std::lock_guard<std::mutex> lock(overrides().mutex);
  overrides().log_level = std::move(level);
}

void Env::override_serve_timeout_ms(std::size_t ms) {
  std::lock_guard<std::mutex> lock(overrides().mutex);
  overrides().serve_timeout_ms = ms;
}

void Env::override_smoke(bool smoke) {
  std::lock_guard<std::mutex> lock(overrides().mutex);
  overrides().smoke = smoke;
}

void Env::override_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(overrides().mutex);
  overrides().threads = threads;
}

void Env::override_shards(std::size_t shards) {
  std::lock_guard<std::mutex> lock(overrides().mutex);
  overrides().shards = shards;
}

void Env::override_results_dir(std::string dir) {
  std::lock_guard<std::mutex> lock(overrides().mutex);
  overrides().results_dir = std::move(dir);
}

void Env::log_effective() {
  static std::atomic<bool> logged{false};
  if (logged.exchange(true)) return;
  const std::size_t threads = Env::threads();
  const std::size_t shards = Env::shards();
  log_info() << "settings: smoke=" << (smoke() ? "on" : "off") << " threads="
             << (threads == 0 ? "auto" : std::to_string(threads)) << " shards="
             << (shards == 0 ? "auto" : std::to_string(shards)) << " results_dir="
             << results_dir() << " obs=" << (obs() ? "on" : "off") << " log_level="
             << log_level() << " simd=" << simd();
}

}  // namespace wf::util
