#include "util/table.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace wf::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != columns_.size())
    throw std::invalid_argument("Table::add_row: expected " + std::to_string(columns_.size()) +
                                " cells, got " + std::to_string(row.size()));
  rows_.push_back(std::move(row));
}

namespace {

std::string escape_csv(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

void Table::print(const std::string& title) const {
  if (!title.empty()) std::cout << title << "\n";
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    std::cout << "  ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::cout << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) std::cout << "  ";
    }
    std::cout << "\n";
  };

  print_row(columns_);
  std::size_t total = columns_.empty() ? 0 : 2 * (columns_.size() - 1);
  for (const std::size_t w : widths) total += w;
  std::cout << "  " << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("could not open " + path + " for writing");
  for (std::size_t c = 0; c < columns_.size(); ++c)
    out << escape_csv(columns_[c]) << (c + 1 < columns_.size() ? "," : "\n");
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      out << escape_csv(row[c]) << (c + 1 < row.size() ? "," : "\n");
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::string Table::pct(double fraction, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << fraction * 100.0 << "%";
  return out.str();
}

std::string Table::num(double value, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << value;
  return out.str();
}

}  // namespace wf::util
