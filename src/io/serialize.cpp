#include "io/serialize.hpp"

#include <fstream>
#include <sstream>

#include "baselines/attackers.hpp"
#include "core/adaptive.hpp"
#include "core/attacker.hpp"

namespace wf::io {

namespace {

constexpr char kMagic[4] = {'W', 'F', 'I', 'O'};

// Sanity bounds on deserialized shapes: anything beyond these is a corrupt
// or hostile file, rejected before any allocation can overflow.
constexpr std::uint64_t kMaxLayerWidth = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxFeatureDim = std::uint64_t{1} << 24;

void write_tag(Writer& out, const std::string& tag) {
  if (tag.size() != 4) throw IoError("internal: tag must be 4 chars");
  out.stream().write(tag.data(), 4);
  if (!out.stream()) throw IoError("write failed");
}

std::string read_tag(Reader& in) {
  char tag[4];
  in.stream().read(tag, 4);
  if (in.stream().gcount() != 4) throw IoError("unexpected end of stream");
  return std::string(tag, 4);
}

}  // namespace

namespace detail {

void write_tagged_payload(Writer& out, const std::string& tag, const std::string& payload) {
  write_tag(out, tag);
  out.u64(payload.size());
  out.stream().write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out.stream()) throw IoError("write failed");
}

std::string buffer_payload(const std::function<void(Writer&)>& body) {
  std::ostringstream buffer;
  Writer payload(buffer);
  body(payload);
  return std::move(buffer).str();
}

std::unique_ptr<std::istringstream> payload_stream(std::string payload) {
  return std::make_unique<std::istringstream>(std::move(payload));
}

void require_consumed(std::istream& payload, const std::string& tag) {
  if (payload.peek() != std::istream::traits_type::eof())
    throw IoError("trailing bytes in section " + tag);
}

}  // namespace detail

void write_header(Writer& out, const std::string& kind) {
  out.stream().write(kMagic, 4);
  if (!out.stream()) throw IoError("write failed");
  out.u32(kFormatVersion);
  write_tag(out, kind);
}

std::string read_header(Reader& in) {
  char magic[4];
  in.stream().read(magic, 4);
  if (in.stream().gcount() != 4 || std::string(magic, 4) != std::string(kMagic, 4))
    throw IoError("not a wf::io file (bad magic)");
  const std::uint32_t version = in.u32();
  if (version != kFormatVersion)
    throw IoError("unsupported format version " + std::to_string(version) + " (supported: " +
                  std::to_string(kFormatVersion) + ")");
  return read_tag(in);
}

void expect_header(Reader& in, const std::string& kind) {
  const std::string actual = read_header(in);
  if (actual != kind)
    throw IoError("expected a " + kind + " file, found " + actual);
}

std::string read_section(Reader& in, const std::string& tag) {
  const std::string actual = read_tag(in);
  if (actual != tag) throw IoError("expected section " + tag + ", found " + actual);
  const std::uint64_t size = in.u64();
  constexpr std::uint64_t kMaxSection = std::uint64_t{1} << 34;  // 16 GiB
  if (size > kMaxSection) throw IoError("corrupt section length");
  std::string payload(size, '\0');
  in.stream().read(payload.data(), static_cast<std::streamsize>(size));
  if (in.stream().gcount() != static_cast<std::streamsize>(size))
    throw IoError("unexpected end of stream in section " + tag);
  return payload;
}

void save_matrix(Writer& out, const nn::Matrix& m) {
  out.u64(m.rows());
  out.u64(m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) out.f32(m(r, c));
}

nn::Matrix load_matrix(Reader& in) {
  const std::uint64_t rows = in.u64();
  const std::uint64_t cols = in.u64();
  if (rows > 0 && cols > (std::uint64_t{1} << 32) / rows) throw IoError("corrupt matrix shape");
  nn::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = in.f32();
  return m;
}

nn::Matrix load_matrix(Reader& in, std::size_t rows, std::size_t cols) {
  const std::uint64_t stored_rows = in.u64();
  const std::uint64_t stored_cols = in.u64();
  if (stored_rows != rows || stored_cols != cols)
    throw IoError("matrix shape does not match its declared dimensions");
  nn::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = in.f32();
  return m;
}

void save_mlp(Writer& out, const nn::Mlp& mlp) {
  const std::vector<std::size_t> sizes = mlp.layer_sizes();
  out.u64(sizes.size());
  for (const std::size_t s : sizes) out.u64(s);
  for (std::size_t l = 0; l < mlp.n_layers(); ++l) {
    save_matrix(out, mlp.layer_weights(l));
    out.f32_vec(mlp.layer_bias(l));
  }
}

nn::Mlp load_mlp(Reader& in) {
  const std::uint64_t n_sizes = in.u64();
  if (n_sizes < 2 || n_sizes > 64) throw IoError("corrupt MLP layer count");
  std::vector<std::size_t> sizes(n_sizes);
  for (auto& s : sizes) {
    s = in.u64();
    // Bound every width before the Mlp constructor allocates from it: a
    // corrupt size must raise IoError, not overflow rows*cols.
    if (s < 1 || s > kMaxLayerWidth) throw IoError("corrupt MLP layer width");
  }
  nn::Mlp mlp(sizes, /*seed=*/0);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    nn::Matrix w = load_matrix(in, sizes[l + 1], sizes[l]);
    std::vector<float> b = in.f32_vec();
    if (b.size() != sizes[l + 1]) throw IoError("MLP bias width does not match layer sizes");
    mlp.layer_weights(l) = std::move(w);
    mlp.layer_bias(l) = std::move(b);
  }
  return mlp;
}

void save_embedding_config(Writer& out, const core::EmbeddingConfig& config) {
  out.i32(config.n_sequences);
  out.i32(config.timesteps);
  out.u64(config.embedding_dim);
  out.u64(config.hidden.size());
  for (const std::size_t h : config.hidden) out.u64(h);
  out.i32(config.train_iterations);
  out.i32(config.batch_pairs);
  out.f64(config.learning_rate);
  out.f64(config.margin);
  out.u8(config.objective == core::Objective::kTriplet ? 1 : 0);
  out.u64(config.seed);
}

core::EmbeddingConfig load_embedding_config(Reader& in) {
  core::EmbeddingConfig config;
  config.n_sequences = in.i32();
  config.timesteps = in.i32();
  if (config.n_sequences < 1 || config.timesteps < 1 ||
      static_cast<std::uint64_t>(config.n_sequences) * config.timesteps > kMaxLayerWidth)
    throw IoError("corrupt embedding config (input shape)");
  config.embedding_dim = in.u64();
  if (config.embedding_dim < 1 || config.embedding_dim > kMaxLayerWidth)
    throw IoError("corrupt embedding config (embedding dim)");
  const std::uint64_t n_hidden = in.u64();
  if (n_hidden > 64) throw IoError("corrupt embedding config (hidden layers)");
  config.hidden.resize(n_hidden);
  for (auto& h : config.hidden) {
    h = in.u64();
    if (h < 1 || h > kMaxLayerWidth) throw IoError("corrupt embedding config (hidden width)");
  }
  config.train_iterations = in.i32();
  config.batch_pairs = in.i32();
  config.learning_rate = in.f64();
  config.margin = in.f64();
  config.objective = in.u8() == 1 ? core::Objective::kTriplet : core::Objective::kContrastive;
  config.seed = in.u64();
  return config;
}

void save_reference_set(Writer& out, const core::ShardedReferenceSet& refs) {
  out.u64(refs.dim());
  out.u64(refs.shard_count());
  out.u64(refs.next_row_id());
  out.i32_vec(refs.id_to_label());
  for (std::size_t s = 0; s < refs.shard_count(); ++s) {
    const core::ShardedReferenceSet::ShardTables tables = refs.shard_tables(s);
    out.f32_vec(tables.data);
    out.i32_vec(tables.labels);
    out.f64_vec(tables.sq_norms);
    out.i32_vec(tables.class_ids);
    out.u64_vec(tables.row_ids);
  }
}

core::ShardedReferenceSet load_reference_set(Reader& in) {
  const std::uint64_t dim = in.u64();
  if (dim > kMaxFeatureDim) throw IoError("corrupt reference-set width");
  const std::uint64_t n_shards = in.u64();
  if (n_shards == 0 || n_shards > 4096) throw IoError("corrupt reference-set shard count");
  const std::uint64_t next_row_id = in.u64();
  std::vector<int> id_to_label = in.i32_vec();
  std::vector<core::ShardedReferenceSet::ShardTables> shards(n_shards);
  for (auto& shard : shards) {
    const std::vector<float> data = in.f32_vec();
    shard.data.assign(data.begin(), data.end());
    shard.labels = in.i32_vec();
    shard.sq_norms = in.f64_vec();
    shard.class_ids = in.i32_vec();
    shard.row_ids = in.u64_vec();
  }
  try {
    return core::ShardedReferenceSet::restore(dim, next_row_id, std::move(id_to_label),
                                              std::move(shards));
  } catch (const std::invalid_argument& e) {
    throw IoError(e.what());
  }
}

void save_dataset_body(Writer& out, const data::Dataset& dataset) {
  out.u64(dataset.feature_dim());
  out.u64(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) out.i32(dataset[i].label);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const data::Sample& sample = dataset[i];
    for (const float f : sample.features) out.f32(f);
  }
}

data::Dataset load_dataset_body(Reader& in) {
  const std::uint64_t dim = in.u64();
  const std::uint64_t n = in.u64();
  if (dim > (std::uint64_t{1} << 24) || n > (std::uint64_t{1} << 32))
    throw IoError("corrupt dataset shape");
  std::vector<int> labels(n);
  for (auto& l : labels) l = in.i32();
  data::Dataset dataset(dim);
  for (std::uint64_t i = 0; i < n; ++i) {
    data::Sample sample;
    sample.label = labels[i];
    sample.features.resize(dim);
    for (auto& f : sample.features) f = in.f32();
    dataset.add(std::move(sample));
  }
  return dataset;
}

void save_dataset(const std::string& path, const data::Dataset& dataset) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw IoError("cannot open " + path + " for writing");
  Writer out(file);
  write_header(out, "DATA");
  write_section(out, "CORP", [&](Writer& w) { save_dataset_body(w, dataset); });
  file.flush();
  if (!file) throw IoError("write failed: " + path);
}

data::Dataset load_dataset(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw IoError("cannot open " + path);
  Reader in(file);
  expect_header(in, "DATA");
  return parse_section(in, "CORP", [](Reader& r) { return load_dataset_body(r); });
}

void save_attacker(std::ostream& stream, const core::Attacker& attacker) {
  Writer out(stream);
  write_header(out, "ATKR");
  write_section(out, "NAME", [&](Writer& w) { w.str(attacker.name()); });
  attacker.save_body(out);
}

void save_attacker(const std::string& path, const core::Attacker& attacker) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw IoError("cannot open " + path + " for writing");
  save_attacker(file, attacker);
  file.flush();
  if (!file) throw IoError("write failed: " + path);
}

std::string read_attacker_name(Reader& in) {
  expect_header(in, "ATKR");
  return parse_section(in, "NAME", [](Reader& r) { return r.str(); });
}

std::unique_ptr<core::Attacker> load_attacker(std::istream& stream) {
  Reader in(stream);
  const std::string name = read_attacker_name(in);
  std::unique_ptr<core::Attacker> attacker;
  try {
    attacker = baselines::make_attacker_by_name(name);
  } catch (const std::invalid_argument& e) {
    throw IoError(e.what());
  }
  attacker->load_body(in);
  return attacker;
}

std::unique_ptr<core::Attacker> load_attacker(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw IoError("cannot open " + path);
  return load_attacker(file);
}

}  // namespace wf::io
