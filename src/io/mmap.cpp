#include "io/mmap.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "io/binary.hpp"

namespace wf::io {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw IoError(std::string(what) + " failed for \"" + path + "\": " + std::strerror(errno));
}

}  // namespace

MappedFile::MappedFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(path, "open");
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail(path, "fstat");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fail(path, "mmap");
    }
    addr_ = addr;
  }
  ::close(fd);  // the mapping keeps the file alive; the fd is not needed
  mapped_ = true;
}

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      path_(std::move(other.path_)) {
  other.path_.clear();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

void MappedFile::reset() noexcept {
  if (addr_ != nullptr) ::munmap(addr_, size_);
  addr_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

}  // namespace wf::io
